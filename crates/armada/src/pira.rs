//! PIRA — the PrunIng Routing Algorithm for single-attribute range queries
//! (§4.2).
//!
//! A query `[lo, hi]` maps to the Kautz region `⟨LowT, HighT⟩` via
//! `Single_hash`; if its endpoints share no prefix it splits into at most
//! three sub-regions that do (the paper's rule). Each sub-query descends the
//! origin's forward routing tree as a message
//! `(low, high, f, hops_left)`:
//!
//! * `f = |ComS|` where `ComS` is the longest string that is both a prefix
//!   of the sub-region's common prefix and a suffix of the origin's PeerID;
//! * a peer holding the message with `d = hops_left` covers — at the
//!   destination level — exactly the strings prefixed by
//!   `ComS ++ id[(f+d)..]`, so it forwards to an out-neighbor `C` iff the
//!   sub-region contains a string prefixed by `ComS ++ C.id[(f+d−1)..]`;
//! * any visited peer whose own region intersects the sub-region answers
//!   from local storage (at the destination level `d = 0` that is every
//!   reached peer; answering along the way additionally keeps the algorithm
//!   exact on covers that violate the neighborhood invariant).
//!
//! Delay is bounded by `hops_left ≤ len(origin.id)` regardless of the range
//! size: `< 2·log₂N` worst case, `< log₂N` on average — the paper's
//! headline result.

use crate::engine::descent_budget;
use crate::{ArmadaError, QueryMetrics, QueryOutcome, RecordId, SingleArmada};
use kautz::{KautzRegion, KautzStr};
use simnet::{Envelope, FaultPlan, NodeId, QueryScratch, Sim, SimScratch};
use std::collections::BTreeSet;

/// One in-flight PIRA sub-query message — `Copy`, so forwarding a message
/// down the routing tree moves twenty-four bytes instead of cloning two
/// Kautz strings per hop. The region bounds and `ComS` live once per
/// sub-query in [`PiraScratch::subs`], indexed by `sub`.
#[derive(Debug, Clone, Copy)]
struct PiraMsg {
    /// Index into the per-query sub-region table.
    sub: u8,
    /// `|ComS|` for this sub-query.
    f: usize,
    /// Remaining descent levels.
    hops_left: usize,
}

/// Per-sub-query routing state, computed once at send time.
struct SubQuery {
    /// The sub-region `⟨low, high⟩` (full ObjectID length).
    region: KautzRegion,
    /// `ComS = low.take_front(f)` — the prefix every subtree test extends.
    com_s: KautzStr,
}

/// PIRA's reusable per-thread state, slotted into a [`QueryScratch`]: the
/// simulator's collections plus the routing loop's working buffers. Every
/// field is reset at query start, so reuse is invisible to results,
/// metrics, and traces.
struct PiraScratch {
    sim: SimScratch<PiraMsg>,
    subs: Vec<SubQuery>,
    arrivals: Vec<(NodeId, u64)>,
    nbrs: Vec<NodeId>,
    shift: KautzStr,
}

impl Default for PiraScratch {
    fn default() -> Self {
        PiraScratch {
            sim: SimScratch::new(),
            subs: Vec::new(),
            arrivals: Vec::new(),
            nbrs: Vec::new(),
            shift: KautzStr::empty(2),
        }
    }
}

/// Executes a PIRA range query; see the module docs.
///
/// # Errors
///
/// Returns [`ArmadaError::BadOrigin`] for dead origins and naming errors for
/// empty ranges.
pub(crate) fn query(
    armada: &SingleArmada,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    faults: &FaultPlan,
    scratch: &mut QueryScratch,
) -> Result<QueryOutcome, ArmadaError> {
    let (out, _) = query_impl(armada, origin, lo, hi, seed, faults, false, scratch)?;
    Ok(out)
}

/// [`query`] with the simulator's trace sink attached: returns the outcome
/// *plus* the full virtual-time event stream (hops, fault verdicts,
/// deliveries, answers). The outcome is bitwise identical to the untraced
/// run — tracing reads the schedule, it never perturbs it.
///
/// # Errors
///
/// Same as [`query`].
pub(crate) fn query_traced(
    armada: &SingleArmada,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    faults: &FaultPlan,
    scratch: &mut QueryScratch,
) -> Result<(QueryOutcome, Vec<simnet::TraceRecord>), ArmadaError> {
    let (out, records) = query_impl(armada, origin, lo, hi, seed, faults, true, scratch)?;
    Ok((out, records.unwrap_or_default()))
}

#[allow(clippy::too_many_arguments)]
fn query_impl(
    armada: &SingleArmada,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    faults: &FaultPlan,
    trace: bool,
    scratch: &mut QueryScratch,
) -> Result<(QueryOutcome, Option<Vec<simnet::TraceRecord>>), ArmadaError> {
    let net = armada.net();
    if !net.is_live(origin) {
        return Err(ArmadaError::BadOrigin { origin });
    }
    let region = armada.naming().region(lo, hi)?;
    let truth = armada.ground_truth_peers(lo, hi)?;
    let origin_id = net.peer_id(origin)?;

    let PiraScratch { sim: sim_scratch, subs, arrivals, nbrs, shift } =
        scratch.slot::<PiraScratch>();
    let mut sim: Sim<PiraMsg> = Sim::from_scratch(seed, sim_scratch)
        .with_faults_ref(faults)
        .with_net(*armada.net_model());
    if trace {
        sim = sim.with_trace(simnet::TraceSink::new());
    }
    subs.clear();
    for sub in region.split_by_common_prefix() {
        let com_t = sub.common_prefix();
        let (f, hops_left) = descent_budget(origin_id, &com_t);
        let com_s = sub.low().take_front(f);
        sim.send(origin, origin, 0, PiraMsg { sub: subs.len() as u8, f, hops_left });
        subs.push(SubQuery { region: sub, com_s });
    }

    let mut answered: BTreeSet<NodeId> = BTreeSet::new();
    // Flat arrival log, one entry per qualifying delivery; the sorted
    // post-pass (`last_first_arrival`) reduces it to the min cost per peer
    // and the max over peers — independent of delivery order (scheduling
    // stays on unit ticks; the cost model rides along in the envelopes).
    arrivals.clear();
    let mut results: BTreeSet<RecordId> = BTreeSet::new();
    let mut delay: u32 = 0;
    sim.run(|sim, env: Envelope<PiraMsg>| {
        let node = env.to;
        let id = net.peer_id(node).expect("messages are delivered to live peers");
        let sub = &subs[env.payload.sub as usize];

        // Local answer: this peer's region intersects the sub-region.
        // Records are collected against the *full* query so one visit per
        // peer suffices even when it straddles several sub-regions.
        if sub.region.intersects_prefix(id) {
            arrivals.push((node, env.cost));
            sim.trace_answer(&env);
            if answered.insert(node) {
                delay = delay.max(env.hop);
                let peer = net.peer(node).expect("live");
                for (_oid, handles) in peer.objects_in_range(region.low(), region.high()) {
                    for &h in handles {
                        let record = RecordId(h);
                        let v = armada.value(record);
                        if v >= lo && v <= hi {
                            results.insert(record);
                        }
                    }
                }
            }
        }

        // Pruned descent.
        let d = env.payload.hops_left;
        if d > 0 {
            let f = env.payload.f;
            let strip = f + d - 1; // transit-prefix length at the children
            net.out_neighbors_into(node, shift, nbrs);
            for &c in nbrs.iter() {
                let cid = net.peer_id(c).expect("live");
                // Subtree prefix of C at the destination level, tested as
                // `ComS ++ cid[strip..]` without materializing it. Children
                // shorter than the transit prefix (possible only when the
                // neighborhood invariant is violated) degrade to the
                // never-prune test `ComS` — the parts test's junction
                // fallback does the same for repeated junction symbols.
                let tail = cid.symbols().get(strip..).unwrap_or(&[]);
                if sub.region.intersects_prefix_parts(&sub.com_s, tail) {
                    sim.forward(&env, c, PiraMsg { sub: env.payload.sub, f, hops_left: d - 1 });
                }
            }
        }
    });

    let reached = answered.len();
    let exact = answered == truth;
    // Critical path in virtual ms: the query completes when the last
    // destination first learns of it.
    let latency = simnet::last_first_arrival(arrivals);
    let records = sim.take_trace().map(simnet::TraceSink::into_records);
    let messages = sim.stats().messages_sent;
    sim.recycle(sim_scratch);
    Ok((
        QueryOutcome {
            results: results.into_iter().collect(),
            metrics: QueryMetrics {
                delay,
                latency,
                messages,
                dest_peers: truth.len(),
                reached_peers: reached,
                exact,
            },
        },
        records,
    ))
}

#[cfg(test)]
mod tests {
    use crate::SingleArmada;
    use fissione::FissioneConfig;
    use rand::Rng;

    fn small_cfg() -> FissioneConfig {
        FissioneConfig { object_id_len: 24, ..FissioneConfig::default() }
    }

    fn build(n: usize, seed: u64) -> SingleArmada {
        let mut rng = simnet::rng_from_seed(seed);
        let mut a = SingleArmada::build_with(small_cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
        for _ in 0..n {
            let v = rng.gen_range(0.0..=1000.0);
            a.publish(v);
        }
        a
    }

    #[test]
    fn pira_is_exact_on_random_queries() {
        let a = build(300, 61);
        let mut rng = simnet::rng_from_seed(610);
        for q in 0..100 {
            let lo: f64 = rng.gen_range(0.0..990.0);
            let size: f64 = rng.gen_range(0.5..200.0);
            let hi = (lo + size).min(1000.0);
            let origin = a.net().random_peer(&mut rng);
            let out = a.pira_query(origin, lo, hi, q).unwrap();
            assert!(out.metrics.exact, "query [{lo},{hi}] missed peers");
            assert_eq!(
                out.results,
                a.expected_results(lo, hi),
                "query [{lo},{hi}] returned wrong records"
            );
        }
    }

    #[test]
    fn pira_delay_is_bounded_by_origin_depth() {
        let a = build(500, 62);
        let mut rng = simnet::rng_from_seed(620);
        for q in 0..100 {
            let lo = rng.gen_range(0.0..700.0);
            let origin = a.net().random_peer(&mut rng);
            let out = a.pira_query(origin, lo, lo + 300.0, q).unwrap();
            let b = a.net().peer(origin).unwrap().depth() as u32;
            assert!(out.metrics.delay <= b, "delay {} > b {}", out.metrics.delay, b);
        }
    }

    #[test]
    fn pira_delay_independent_of_range_size() {
        // The paper's headline: delay stays < logN whether the range covers
        // 0.2% or 30% of the attribute space.
        let a = build(1000, 63);
        let mut rng = simnet::rng_from_seed(630);
        let log_n = (1000f64).log2();
        for &size in &[2.0, 50.0, 300.0] {
            let mut total = 0u64;
            let queries = 200;
            for q in 0..queries {
                let lo = rng.gen_range(0.0..(1000.0 - size));
                let origin = a.net().random_peer(&mut rng);
                let out = a.pira_query(origin, lo, lo + size, q).unwrap();
                total += u64::from(out.metrics.delay);
            }
            let avg = total as f64 / queries as f64;
            assert!(avg < log_n, "size {size}: avg delay {avg} ≥ logN {log_n}");
        }
    }

    #[test]
    fn pira_point_query_reaches_single_owner() {
        let a = build(200, 64);
        let mut rng = simnet::rng_from_seed(640);
        let origin = a.net().random_peer(&mut rng);
        let out = a.pira_query(origin, 421.7, 421.7, 1).unwrap();
        assert_eq!(out.metrics.dest_peers, 1);
        assert!(out.metrics.exact);
    }

    #[test]
    fn pira_whole_space_query_reaches_everyone() {
        let a = build(120, 65);
        let mut rng = simnet::rng_from_seed(650);
        let origin = a.net().random_peer(&mut rng);
        let out = a.pira_query(origin, 0.0, 1000.0, 1).unwrap();
        assert_eq!(out.metrics.dest_peers, a.net().len());
        assert!(out.metrics.exact);
        assert_eq!(out.results.len(), a.record_count());
    }

    #[test]
    fn pira_message_cost_tracks_paper_formula() {
        // Average messages ≈ logN + 2n − 2 (§4.3.2); assert the looser
        // MesgRatio/IncreRatio ≈ 2 shape the paper validates in Figure 6(b).
        let a = build(1000, 66);
        let mut rng = simnet::rng_from_seed(660);
        let mut mesg_ratios = Vec::new();
        let mut incre_ratios = Vec::new();
        for q in 0..300 {
            let lo = rng.gen_range(0.0..900.0);
            let origin = a.net().random_peer(&mut rng);
            let out = a.pira_query(origin, lo, lo + 100.0, q).unwrap();
            mesg_ratios.push(out.metrics.mesg_ratio());
            incre_ratios.push(out.metrics.incre_ratio(a.net().len()));
        }
        let avg_mesg = mesg_ratios.iter().sum::<f64>() / mesg_ratios.len() as f64;
        let avg_incre = incre_ratios.iter().sum::<f64>() / incre_ratios.len() as f64;
        assert!((1.0..3.0).contains(&avg_mesg), "MesgRatio {avg_mesg}");
        assert!((1.0..2.5).contains(&avg_incre), "IncreRatio {avg_incre}");
    }

    #[test]
    fn pira_from_every_origin_small_net() {
        let a = build(40, 67);
        for origin in a.net().live_peers() {
            let out = a.pira_query(origin, 250.0, 350.0, origin as u64).unwrap();
            assert!(out.metrics.exact, "origin {origin}");
            assert_eq!(out.results, a.expected_results(250.0, 350.0));
        }
    }

    #[test]
    fn pira_rejects_dead_origin_and_empty_range() {
        let a = build(30, 68);
        let err = a.pira_query(usize::MAX, 0.0, 1.0, 1).unwrap_err();
        assert!(matches!(err, crate::ArmadaError::BadOrigin { .. }));
        let origin = a.net().live_peers().next().unwrap();
        assert!(a.pira_query(origin, 5.0, 1.0, 1).is_err());
    }

    #[test]
    fn traced_query_matches_untraced_and_streams_answers() {
        let a = build(200, 70);
        let mut rng = simnet::rng_from_seed(700);
        for q in 0..20 {
            let lo: f64 = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.5..100.0);
            let origin = a.net().random_peer(&mut rng);
            let plain = a.pira_query(origin, lo, hi, q).unwrap();
            let (traced, records) = a.pira_query_traced(origin, lo, hi, q).unwrap();
            assert_eq!(plain, traced, "tracing perturbed query [{lo}, {hi}]");
            // One Answer event per reached peer, and the deepest answer
            // carries exactly the reported delay.
            let answers: Vec<_> = records
                .iter()
                .filter_map(|r| match r.event {
                    simnet::TraceEvent::Answer { node, hop, cost_ms } => Some((node, hop, cost_ms)),
                    _ => None,
                })
                .collect();
            let distinct: std::collections::BTreeSet<_> =
                answers.iter().map(|&(n, _, _)| n).collect();
            assert_eq!(distinct.len(), traced.metrics.reached_peers);
            let max_hop = answers.iter().map(|&(_, h, _)| h).max().unwrap();
            assert_eq!(max_hop, traced.metrics.delay);
        }
    }

    #[test]
    fn traced_query_under_faults_logs_verdicts() {
        let a = build(250, 71);
        let mut rng = simnet::rng_from_seed(710);
        let faults = simnet::FaultPlan::with_drop_prob(0.15);
        let mut saw_verdict = false;
        for q in 0..20 {
            let lo = rng.gen_range(0.0..800.0);
            let origin = a.net().random_peer(&mut rng);
            let plain = a.pira_query_with_faults(origin, lo, lo + 150.0, q, &faults).unwrap();
            let (traced, records) =
                a.pira_query_traced_with_faults(origin, lo, lo + 150.0, q, &faults).unwrap();
            assert_eq!(plain, traced);
            saw_verdict |=
                records.iter().any(|r| matches!(r.event, simnet::TraceEvent::FaultVerdict { .. }));
        }
        assert!(saw_verdict, "15% drops over 20 queries must log at least one verdict");
    }

    #[test]
    fn pira_under_message_loss_degrades_gracefully() {
        let a = build(300, 69);
        let mut rng = simnet::rng_from_seed(690);
        let faults = simnet::FaultPlan::with_drop_prob(0.10);
        let mut recalls = Vec::new();
        for q in 0..100 {
            let lo = rng.gen_range(0.0..800.0);
            let origin = a.net().random_peer(&mut rng);
            let out = a.pira_query_with_faults(origin, lo, lo + 150.0, q, &faults).unwrap();
            recalls.push(out.metrics.peer_recall());
            assert!(out.metrics.reached_peers <= out.metrics.dest_peers);
        }
        let avg = recalls.iter().sum::<f64>() / recalls.len() as f64;
        // 10% loss on a tree: some subtrees vanish, but most peers answer.
        assert!(avg > 0.5, "recall collapsed to {avg}");
        assert!(avg < 1.0, "drops must actually hurt somewhere");
    }
}
