//! Top-k queries over Armada — the paper's §6 future work ("we plan to
//! extend Armada to support other complex queries, such as top-k query"),
//! implemented here.
//!
//! The algorithm exploits the order-preserving naming: the `k` largest
//! attribute values live in the right-most leaves of the namespace, so a
//! top-k query is a sequence of delay-bounded PIRA probes over
//! geometrically expanding ranges anchored at the top of the value space
//! (`[H − δ, H]`, `δ` doubling until `k` records surface or the space is
//! exhausted). Each probe inherits PIRA's `< 2·log₂N` bound, and the probe
//! count is `O(log(H − L) / δ₀)`, so the total stays polylogarithmic
//! whenever the data is not pathologically sparse near the top.

use crate::{ArmadaError, QueryMetrics, RecordId, SingleArmada};
use simnet::{FaultPlan, NodeId};

/// Result of a top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKOutcome {
    /// Up to `k` records, sorted by attribute value descending (ties by
    /// record id ascending).
    pub results: Vec<RecordId>,
    /// Cumulative delay across the sequential probes (hops).
    pub delay: u32,
    /// Total messages across all probes.
    pub messages: u64,
    /// Number of PIRA probes issued.
    pub probes: usize,
}

impl SingleArmada {
    /// Returns the `k` records with the largest attribute values, querying
    /// from `origin`.
    ///
    /// # Errors
    ///
    /// Returns [`ArmadaError::BadOrigin`] for dead origins.
    pub fn top_k(&self, origin: NodeId, k: usize, seed: u64) -> Result<TopKOutcome, ArmadaError> {
        self.top_k_below(origin, self.naming().space().hi(), k, seed)
    }

    /// Returns the `k` records with the largest attribute values that are
    /// `≤ bound` (e.g. "the 10 best scores no better than 80").
    ///
    /// # Errors
    ///
    /// Returns [`ArmadaError::BadOrigin`] for dead origins.
    pub fn top_k_below(
        &self,
        origin: NodeId,
        bound: f64,
        k: usize,
        seed: u64,
    ) -> Result<TopKOutcome, ArmadaError> {
        if !self.net().is_live(origin) {
            return Err(ArmadaError::BadOrigin { origin });
        }
        let space = self.naming().space();
        let top = bound.clamp(space.lo(), space.hi());
        let full = top - space.lo();
        let mut outcome = TopKOutcome { results: Vec::new(), delay: 0, messages: 0, probes: 0 };
        if k == 0 || full < 0.0 {
            return Ok(outcome);
        }

        // Geometric expansion: start at 1/1024 of the space below `bound`.
        let mut delta = (full / 1024.0).max(f64::MIN_POSITIVE);
        // One scratch shared by all probes of this expansion.
        let mut scratch = simnet::QueryScratch::new();
        loop {
            let lo = (top - delta).max(space.lo());
            let probe = crate::pira::query(
                self,
                origin,
                lo,
                top,
                seed.wrapping_add(outcome.probes as u64),
                &FaultPlan::new(),
                &mut scratch,
            )?;
            outcome.probes += 1;
            outcome.delay += probe.metrics.delay;
            outcome.messages += probe.metrics.messages;
            if probe.results.len() >= k || lo <= space.lo() {
                let mut ranked: Vec<(f64, RecordId)> =
                    probe.results.into_iter().map(|r| (self.value(r), r)).collect();
                ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                outcome.results = ranked.into_iter().take(k).map(|(_, r)| r).collect();
                return Ok(outcome);
            }
            delta *= 2.0;
        }
    }

    /// Ground truth for [`SingleArmada::top_k_below`].
    pub fn expected_top_k(&self, bound: f64, k: usize) -> Vec<RecordId> {
        let mut ranked: Vec<(f64, RecordId)> = (0..self.record_count() as u64)
            .map(RecordId)
            .map(|r| (self.value(r), r))
            .filter(|&(v, _)| v <= bound)
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.into_iter().take(k).map(|(_, r)| r).collect()
    }
}

/// Convenience conversion: a top-k outcome viewed as ordinary query metrics
/// (dest/reached peers are not tracked across probes).
impl TopKOutcome {
    /// Collapses the outcome into the shared metrics shape.
    pub fn as_metrics(&self) -> QueryMetrics {
        QueryMetrics {
            delay: self.delay,
            // Top-k probes predate the cost-model layer and report hops
            // only; under the unit model latency equals hop depth.
            latency: u64::from(self.delay),
            messages: self.messages,
            dest_peers: 0,
            reached_peers: 0,
            exact: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::SingleArmada;
    use fissione::FissioneConfig;
    use rand::Rng;

    fn build(n: usize, records: usize, seed: u64) -> SingleArmada {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        let mut a = SingleArmada::build_with(cfg, n, 0.0, 1000.0, &mut rng).unwrap();
        for _ in 0..records {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            a.publish(v);
        }
        a
    }

    #[test]
    fn top_k_matches_ground_truth() {
        let a = build(200, 500, 111);
        let mut rng = simnet::rng_from_seed(1110);
        for k in [1usize, 5, 20, 100] {
            let origin = a.net().random_peer(&mut rng);
            let out = a.top_k(origin, k, k as u64).unwrap();
            assert_eq!(out.results, a.expected_top_k(1000.0, k), "k = {k}");
        }
    }

    #[test]
    fn top_k_below_bound() {
        let a = build(150, 400, 112);
        let mut rng = simnet::rng_from_seed(1120);
        let origin = a.net().random_peer(&mut rng);
        let out = a.top_k_below(origin, 500.0, 10, 3).unwrap();
        assert_eq!(out.results, a.expected_top_k(500.0, 10));
        for &r in &out.results {
            assert!(a.value(r) <= 500.0);
        }
    }

    #[test]
    fn top_k_larger_than_dataset_returns_everything() {
        let a = build(60, 25, 113);
        let mut rng = simnet::rng_from_seed(1130);
        let origin = a.net().random_peer(&mut rng);
        let out = a.top_k(origin, 100, 1).unwrap();
        assert_eq!(out.results.len(), 25);
        assert_eq!(out.results, a.expected_top_k(1000.0, 100));
    }

    #[test]
    fn top_k_zero_is_empty_and_free() {
        let a = build(40, 50, 114);
        let origin = a.net().live_peers().next().unwrap();
        let out = a.top_k(origin, 0, 1).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.probes, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn top_k_probe_count_is_logarithmic() {
        let a = build(300, 2000, 115);
        let mut rng = simnet::rng_from_seed(1150);
        let origin = a.net().random_peer(&mut rng);
        let out = a.top_k(origin, 10, 9).unwrap();
        // Doubling from 1/1024 of the space: at most 11 probes ever; with
        // 2000 uniform records, k = 10 needs δ ≈ 5 units ⇒ ~4 probes.
        assert!(out.probes <= 5, "{} probes", out.probes);
        // Delay stays within probes × 2logN.
        let bound = out.probes as f64 * 2.0 * (300f64).log2();
        assert!(f64::from(out.delay) <= bound);
    }

    #[test]
    fn top_k_on_empty_dataset() {
        let a = build(40, 0, 116);
        let origin = a.net().live_peers().next().unwrap();
        let out = a.top_k(origin, 5, 1).unwrap();
        assert!(out.results.is_empty());
        assert!(out.probes >= 1, "must probe to discover emptiness");
    }

    #[test]
    fn top_k_results_are_sorted_descending() {
        let a = build(100, 300, 117);
        let mut rng = simnet::rng_from_seed(1170);
        let origin = a.net().random_peer(&mut rng);
        let out = a.top_k(origin, 25, 2).unwrap();
        let values: Vec<f64> = out.results.iter().map(|&r| a.value(r)).collect();
        for w in values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
