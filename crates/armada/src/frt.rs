//! The forward routing tree (FRT, §4.2, Figure 4).
//!
//! For peer `P = u1…ub`, the FRT has `b+1` levels: level `i` holds every
//! peer whose PeerID has the prefix `u_{i+1}…u_b` (the length-`(b−i)` suffix
//! of `P`'s ID), and the last level holds every peer whose first symbol is
//! not `u_b`. Children of a node are its FISSIONE out-neighbors at the next
//! level, ordered by PeerID.
//!
//! Queries never materialise the FRT — PIRA/MIRA traverse it implicitly by
//! forwarding to out-neighbors — but the explicit construction here is the
//! reference the tests check the traversal against.

use fissione::FissioneNet;
use kautz::KautzStr;
use simnet::NodeId;
use std::collections::BTreeSet;

/// An explicitly constructed forward routing tree.
#[derive(Debug, Clone)]
pub struct ForwardRoutingTree {
    root: NodeId,
    levels: Vec<Vec<NodeId>>,
}

impl ForwardRoutingTree {
    /// Builds the FRT of `root` against the current network topology.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not live.
    pub fn build(net: &FissioneNet, root: NodeId) -> Self {
        let root_id = net.peer_id(root).expect("root must be live").clone();
        let b = root_id.len();
        let mut levels = Vec::with_capacity(b + 1);
        for i in 0..=b {
            let anchor = root_id.drop_front(i); // u_{i+1}…u_b
            let members: Vec<NodeId> = if i < b {
                net.peers_with_prefix(&anchor).collect()
            } else {
                // Last level: peers whose first symbol differs from u_b.
                let last = root_id.last().expect("ids are non-empty");
                net.live_peers()
                    .filter(|&n| net.peer_id(n).expect("live").first() != Some(last))
                    .collect()
            };
            levels.push(members);
        }
        ForwardRoutingTree { root, levels }
    }

    /// The tree's root peer.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of levels (`len(root_id) + 1`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Peers at a level, in PeerID order.
    ///
    /// # Panics
    ///
    /// Panics if `level ≥ level_count()`.
    pub fn level(&self, level: usize) -> &[NodeId] {
        &self.levels[level]
    }

    /// Children of `node` at `level`: its out-neighbors that belong to
    /// `level + 1`, in PeerID order.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 ≥ level_count()` or `node` is dead.
    pub fn children(&self, net: &FissioneNet, level: usize, node: NodeId) -> Vec<NodeId> {
        let next: BTreeSet<NodeId> = self.levels[level + 1].iter().copied().collect();
        let mut kids: Vec<(KautzStr, NodeId)> = net
            .out_neighbors(node)
            .into_iter()
            .filter(|n| next.contains(n))
            .map(|n| (net.peer_id(n).expect("live").clone(), n))
            .collect();
        kids.sort();
        kids.into_iter().map(|(_, n)| n).collect()
    }

    /// The destination level for a query whose endpoints share the common
    /// prefix `com_t`: `b − f` where `f = |ComS|` and `ComS` is the longest
    /// string that is both a prefix of `com_t` and a suffix of the root's
    /// PeerID (§4.2).
    pub fn destination_level(net: &FissioneNet, root: NodeId, com_t: &KautzStr) -> usize {
        let id = net.peer_id(root).expect("root must be live");
        let f = id.longest_suffix_prefix(com_t);
        id.len() - f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fissione::{FissioneConfig, FissioneNet};

    /// Builds the complete K(2,3) cover: all 12 length-3 strings as peers.
    fn k23_cover() -> (FissioneNet, Vec<NodeId>) {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut net = FissioneNet::new(cfg);
        // Split every peer twice: depth 1 → 2 → 3.
        for _ in 0..2 {
            let peers: Vec<NodeId> = net.live_peers().collect();
            for p in peers {
                net.split_leaf(p);
            }
        }
        net.check_invariants().unwrap();
        let peers: Vec<NodeId> = net.live_peers().collect();
        assert_eq!(peers.len(), 12);
        (net, peers)
    }

    fn find(net: &FissioneNet, id: &str) -> NodeId {
        let key: KautzStr = id.parse().unwrap();
        net.live_peers().find(|&n| net.peer_id(n).unwrap() == &key).expect("peer exists")
    }

    #[test]
    fn frt_of_212_matches_figure_4() {
        let (net, _) = k23_cover();
        let root = find(&net, "212");
        let frt = ForwardRoutingTree::build(&net, root);
        assert_eq!(frt.level_count(), 4);
        let ids = |lvl: usize| -> Vec<String> {
            frt.level(lvl).iter().map(|&n| net.peer_id(n).unwrap().to_string()).collect()
        };
        assert_eq!(ids(0), vec!["212"]);
        // Level 1: common prefix 12 (suffix of 212).
        assert_eq!(ids(1), vec!["120", "121"]);
        // Level 2: common prefix 2.
        assert_eq!(ids(2), vec!["201", "202", "210", "212"]);
        // Level 3: all peers not starting with u_b = 2.
        assert_eq!(ids(3), vec!["010", "012", "020", "021", "101", "102", "120", "121"]);
    }

    #[test]
    fn children_are_ordered_out_neighbors() {
        let (net, _) = k23_cover();
        let root = find(&net, "212");
        let frt = ForwardRoutingTree::build(&net, root);
        let kids = frt.children(&net, 0, root);
        let kid_ids: Vec<String> =
            kids.iter().map(|&n| net.peer_id(n).unwrap().to_string()).collect();
        assert_eq!(kid_ids, vec!["120", "121"]);
        // Every level-1 node's children live in level 2.
        for &n in frt.level(1) {
            for c in frt.children(&net, 1, n) {
                assert!(frt.level(2).contains(&c));
            }
        }
    }

    #[test]
    fn every_level_node_has_a_parent_path() {
        // Levels are exactly the union of children of the previous level.
        let (net, _) = k23_cover();
        let root = find(&net, "212");
        let frt = ForwardRoutingTree::build(&net, root);
        for lvl in 0..frt.level_count() - 1 {
            let mut reached: Vec<NodeId> =
                frt.level(lvl).iter().flat_map(|&n| frt.children(&net, lvl, n)).collect();
            reached.sort_unstable();
            reached.dedup();
            let mut expect: Vec<NodeId> = frt.level(lvl + 1).to_vec();
            expect.sort_unstable();
            assert_eq!(reached, expect, "level {} covers level {}", lvl, lvl + 1);
        }
    }

    #[test]
    fn destination_level_from_paper_example() {
        // Peer 212, query [0.1, 0.24] → ⟨0120, 0202⟩, ComT = "0": no suffix
        // of 212 prefixes "0", so f = 0 and destinations sit at level b = 3.
        let (net, _) = k23_cover();
        let root = find(&net, "212");
        let com_t: KautzStr = "0".parse().unwrap();
        assert_eq!(ForwardRoutingTree::destination_level(&net, root, &com_t), 3);
        // A query whose ComT starts with 12 (suffix of 212): f = 2, level 1.
        let com_t: KautzStr = "120".parse().unwrap();
        assert_eq!(ForwardRoutingTree::destination_level(&net, root, &com_t), 1);
    }

    #[test]
    fn frt_on_irregular_cover() {
        // FRT levels behave on an unbalanced network, too.
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(44);
        let net = FissioneNet::build(cfg, 37, &mut rng).unwrap();
        for root in net.live_peers() {
            let frt = ForwardRoutingTree::build(&net, root);
            let b = net.peer_id(root).unwrap().len();
            assert_eq!(frt.level_count(), b + 1);
            assert_eq!(frt.level(0), &[root]);
        }
    }
}
