//! Sequential-walk reference baseline: the `O(logN + n)` delay class of
//! Skip Graph / SkipNet / SCRAP (Table 1), modelled over the same data
//! placement as Armada.
//!
//! Those systems keep a sorted level-0 linked list of peers, route to the
//! range's first peer in `O(logN)` hops, then hand the query peer-to-peer
//! down the list — so delay grows linearly with the number of destination
//! peers `n`. FISSIONE itself maintains no successor pointers; this module
//! *simulates* such a scheme by exploiting the fact that region-intersecting
//! peers are contiguous in PeerID order, charging one hop per successor
//! step exactly as the linked-list scheme would pay. It exists to give
//! Table 1's `O(logN + n)` row a measured counterpart — it is **not** part
//! of Armada.

use crate::{ArmadaError, QueryMetrics, QueryOutcome, RecordId, SingleArmada};
use simnet::{HopKind, TraceEvent, TraceRecord, TraceSink};
use std::collections::BTreeSet;

/// Executes a sequential range walk: route to the first destination, then
/// traverse the destination run peer by peer.
///
/// # Errors
///
/// Returns [`ArmadaError::BadOrigin`] for dead origins and naming errors
/// for empty ranges.
pub fn query(
    armada: &SingleArmada,
    origin: simnet::NodeId,
    lo: f64,
    hi: f64,
) -> Result<QueryOutcome, ArmadaError> {
    let (out, _) = query_impl(armada, origin, lo, hi, false)?;
    Ok(out)
}

/// [`query`] with event synthesis: the walk is not simulator-driven, so the
/// trace is built from the *actual* routed path and successor edges — every
/// hop a real overlay edge priced by the cost model, answers at each
/// destination. The outcome is identical to [`query`]'s.
///
/// # Errors
///
/// Same as [`query`].
pub fn query_traced(
    armada: &SingleArmada,
    origin: simnet::NodeId,
    lo: f64,
    hi: f64,
) -> Result<(QueryOutcome, Vec<TraceRecord>), ArmadaError> {
    let (out, records) = query_impl(armada, origin, lo, hi, true)?;
    Ok((out, records.unwrap_or_default()))
}

fn query_impl(
    armada: &SingleArmada,
    origin: simnet::NodeId,
    lo: f64,
    hi: f64,
    trace: bool,
) -> Result<(QueryOutcome, Option<Vec<TraceRecord>>), ArmadaError> {
    let net = armada.net();
    if !net.is_live(origin) {
        return Err(ArmadaError::BadOrigin { origin });
    }
    let region = armada.naming().region(lo, hi)?;
    let destinations = net.peers_intersecting_range(region.low(), region.high())?;
    let truth: BTreeSet<simnet::NodeId> = destinations.iter().copied().collect();

    let mut sink = trace.then(TraceSink::new);
    if let Some(s) = &mut sink {
        // The seeding self-delivery every critical-path walk terminates on.
        s.emit(
            0,
            TraceEvent::Hop {
                src: origin,
                dst: origin,
                hop: 0,
                edge_cost_ms: 0,
                cost_ms: 0,
                kind: HopKind::Local,
            },
        );
    }

    // Phase 1: DHT-route to the first destination (the owner of LowT).
    let model = armada.net_model();
    let route = net.route(origin, region.low())?;
    debug_assert_eq!(Some(&route.dest()), destinations.first());
    let mut messages = route.hops() as u64;
    let mut delay = route.hops() as u32;
    // The routing phase's edges, priced by the cost model.
    let mut latency = model.path_cost(route.path());
    if let Some(s) = &mut sink {
        let mut cum = 0;
        for (i, w) in route.path().windows(2).enumerate() {
            let edge = model.edge_cost(w[0], w[1]);
            cum += edge;
            let hop = (i + 1) as u32;
            s.emit(
                u64::from(hop),
                TraceEvent::Hop {
                    src: w[0],
                    dst: w[1],
                    hop,
                    edge_cost_ms: edge,
                    cost_ms: cum,
                    kind: HopKind::Network,
                },
            );
        }
        debug_assert_eq!(cum, latency);
    }

    // Phase 2: walk the contiguous destination run, one hop per successor.
    // The walk is strictly sequential, so every successor edge joins the
    // critical path in both currencies.
    let mut results: BTreeSet<RecordId> = BTreeSet::new();
    for (i, &peer) in destinations.iter().enumerate() {
        if i > 0 {
            messages += 1;
            delay += 1;
            let edge = model.edge_cost(destinations[i - 1], peer);
            latency += edge;
            if let Some(s) = &mut sink {
                s.emit(
                    u64::from(delay),
                    TraceEvent::Hop {
                        src: destinations[i - 1],
                        dst: peer,
                        hop: delay,
                        edge_cost_ms: edge,
                        cost_ms: latency,
                        kind: HopKind::Network,
                    },
                );
            }
        }
        if let Some(s) = &mut sink {
            s.emit(
                u64::from(delay),
                TraceEvent::Answer { node: peer, hop: delay, cost_ms: latency },
            );
        }
        let p = net.peer(peer).expect("live");
        for (_oid, handles) in p.objects_in_range(region.low(), region.high()) {
            for &h in handles {
                let record = RecordId(h);
                let v = armada.value(record);
                if v >= lo && v <= hi {
                    results.insert(record);
                }
            }
        }
    }

    Ok((
        QueryOutcome {
            results: results.into_iter().collect(),
            metrics: QueryMetrics {
                delay,
                latency,
                messages,
                dest_peers: truth.len(),
                reached_peers: truth.len(),
                exact: true,
            },
        },
        sink.map(TraceSink::into_records),
    ))
}

#[cfg(test)]
mod tests {
    use crate::SingleArmada;
    use fissione::FissioneConfig;
    use rand::Rng;

    fn build(n: usize, records: usize, seed: u64) -> SingleArmada {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        let mut a = SingleArmada::build_with(cfg, n, 0.0, 1000.0, &mut rng).unwrap();
        for _ in 0..records {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            a.publish(v);
        }
        a
    }

    #[test]
    fn seqwalk_returns_the_same_results_as_pira() {
        let a = build(200, 500, 121);
        let mut rng = simnet::rng_from_seed(1210);
        for q in 0..30 {
            let lo: f64 = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.5..100.0);
            let origin = a.net().random_peer(&mut rng);
            let walk = super::query(&a, origin, lo, hi).unwrap();
            let pira = a.pira_query(origin, lo, hi, q).unwrap();
            assert_eq!(walk.results, pira.results, "query [{lo}, {hi}]");
            assert_eq!(walk.metrics.dest_peers, pira.metrics.dest_peers);
        }
    }

    #[test]
    fn seqwalk_delay_grows_linearly_with_destinations() {
        let a = build(500, 0, 122);
        let mut rng = simnet::rng_from_seed(1220);
        let origin = a.net().random_peer(&mut rng);
        let small = super::query(&a, origin, 500.0, 510.0).unwrap();
        let large = super::query(&a, origin, 100.0, 900.0).unwrap();
        // delay ≈ route + (n − 1): the large query pays for every peer.
        assert!(large.metrics.delay as usize >= large.metrics.dest_peers - 1);
        assert!(large.metrics.delay > 4 * small.metrics.delay);
    }

    #[test]
    fn seqwalk_delay_is_about_log_n_plus_destinations() {
        let a = build(400, 0, 123);
        let mut rng = simnet::rng_from_seed(1230);
        let log_n = (400f64).log2();
        for _ in 0..20 {
            let lo: f64 = rng.gen_range(0.0..800.0);
            let origin = a.net().random_peer(&mut rng);
            let out = super::query(&a, origin, lo, lo + 100.0).unwrap();
            let n = out.metrics.dest_peers as f64;
            let d = f64::from(out.metrics.delay);
            assert!(d >= n - 1.0);
            assert!(d <= 2.0 * log_n + n, "delay {d} for n {n}");
        }
    }
}
