//! Client-facing engines: a FISSIONE network plus order-preserving naming
//! plus a record table, with ground-truth checkers.

use crate::{ArmadaError, QueryOutcome};
use fissione::{FissioneConfig, FissioneNet};
use kautz::naming::{MultiHash, SingleHash};
use kautz::KautzStr;
use rand::rngs::SmallRng;
use simnet::{FaultPlan, NodeId};
use std::collections::BTreeSet;

/// Handle of a published record (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "record#{}", self.0)
    }
}

/// Single-attribute Armada: FISSIONE + `Single_hash` naming + records.
///
/// See the [crate docs](crate) for a quickstart.
#[derive(Debug, Clone)]
pub struct SingleArmada {
    net: FissioneNet,
    naming: SingleHash,
    values: Vec<f64>,
    net_model: simnet::NetModel,
}

impl SingleArmada {
    /// Builds a network of `n` peers over the attribute domain `[lo, hi]`
    /// with the paper's defaults (base 2, ObjectIDs of length 100).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid domains or `n` below the root count.
    pub fn build(n: usize, lo: f64, hi: f64, rng: &mut SmallRng) -> Result<Self, ArmadaError> {
        Self::build_with(FissioneConfig::default(), n, lo, hi, rng)
    }

    /// Builds with an explicit FISSIONE configuration (tests use shorter
    /// ObjectIDs for exhaustive checking).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid domains or `n` below the root count.
    pub fn build_with(
        cfg: FissioneConfig,
        n: usize,
        lo: f64,
        hi: f64,
        rng: &mut SmallRng,
    ) -> Result<Self, ArmadaError> {
        let naming = SingleHash::new(lo, hi, cfg.object_id_len)?;
        let net = FissioneNet::build(cfg, n, rng)?;
        Ok(SingleArmada { net, naming, values: Vec::new(), net_model: simnet::NetModel::unit() })
    }

    /// Replaces the network cost model queries price their edges with
    /// (`unit` by default — latency reproduces hop ticks). Hop metrics,
    /// message counts and result sets are model-invariant by construction;
    /// only [`QueryMetrics::latency`](crate::QueryMetrics) moves.
    pub fn set_net_model(&mut self, model: simnet::NetModel) {
        self.net_model = model;
    }

    /// The network cost model in force.
    pub fn net_model(&self) -> &simnet::NetModel {
        &self.net_model
    }

    /// The underlying DHT (read-only).
    pub fn net(&self) -> &FissioneNet {
        &self.net
    }

    /// The underlying DHT (mutable, e.g. for churn experiments).
    pub fn net_mut(&mut self) -> &mut FissioneNet {
        &mut self.net
    }

    /// The naming scheme.
    pub fn naming(&self) -> &SingleHash {
        &self.naming
    }

    /// Number of published records.
    pub fn record_count(&self) -> usize {
        self.values.len()
    }

    /// The attribute value of a record.
    ///
    /// # Panics
    ///
    /// Panics on unknown record ids.
    pub fn value(&self, record: RecordId) -> f64 {
        self.values[record.0 as usize]
    }

    /// Publishes a record with the given attribute value; its ObjectID is
    /// `Single_hash(value)` and it is stored at the owning peer.
    pub fn publish(&mut self, value: f64) -> RecordId {
        let id = RecordId(self.values.len() as u64);
        let object = self.naming.object_id(value);
        self.values.push(value);
        self.net.publish(object, id.0).expect("ObjectIDs always have an owner");
        id
    }

    /// Publishes many records.
    pub fn publish_all<I: IntoIterator<Item = f64>>(&mut self, values: I) -> Vec<RecordId> {
        values.into_iter().map(|v| self.publish(v)).collect()
    }

    /// Re-publishes every record that is no longer stored anywhere in the
    /// network — the data-repair half of stabilization after crashes
    /// (graceful leaves hand records over; crashes drop them). Returns the
    /// number of records restored.
    ///
    /// The record table is the ground truth the engine already keeps for
    /// exactness checking, so repair is a lookup-and-republish sweep: a
    /// record is missing iff its ObjectID's owner no longer holds its
    /// handle.
    pub fn repair_records(&mut self) -> usize {
        let missing: Vec<(KautzStr, u64)> = self
            .values
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| {
                let object = self.naming.object_id(v);
                let (_, handles) = self.net.lookup(&object).expect("cover is complete");
                (!handles.contains(&(i as u64))).then_some((object, i as u64))
            })
            .collect();
        let restored = missing.len();
        for (object, handle) in missing {
            self.net.publish(object, handle).expect("ObjectIDs always have an owner");
        }
        restored
    }

    /// Ground truth: the set of peers whose region intersects the query's
    /// Kautz region (the paper's "Destpeers"). `O(log N + answer)` via the
    /// contiguity of zones in leaf order.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty range.
    pub fn ground_truth_peers(&self, lo: f64, hi: f64) -> Result<BTreeSet<NodeId>, ArmadaError> {
        let region = self.naming.region(lo, hi)?;
        Ok(self.net.peers_intersecting_range(region.low(), region.high())?.into_iter().collect())
    }

    /// Ground truth by exhaustive scan (`O(N·k)`), kept as the reference the
    /// fast path is tested against.
    pub fn ground_truth_peers_scan(
        &self,
        lo: f64,
        hi: f64,
    ) -> Result<BTreeSet<NodeId>, ArmadaError> {
        let region = self.naming.region(lo, hi)?;
        Ok(self
            .net
            .live_peers()
            .filter(|&n| region.intersects_prefix(self.net.peer_id(n).expect("live")))
            .collect())
    }

    /// Ground truth: the records a correct query must return.
    pub fn expected_results(&self, lo: f64, hi: f64) -> Vec<RecordId> {
        self.values
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| RecordId(i as u64))
            .collect()
    }

    /// Runs a PIRA range query from `origin` (fault-free).
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins or empty ranges.
    pub fn pira_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<QueryOutcome, ArmadaError> {
        let mut scratch = simnet::QueryScratch::new();
        crate::pira::query(self, origin, lo, hi, seed, &FaultPlan::new(), &mut scratch)
    }

    /// [`pira_query`](Self::pira_query) with a caller-owned scratch: batch
    /// drivers pass one [`simnet::QueryScratch`] per worker thread so the
    /// simulator queues and routing buffers are allocated once, not per
    /// query. Outcomes are bit-identical to the scratch-free path.
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins or empty ranges.
    pub fn pira_query_scratch(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        scratch: &mut simnet::QueryScratch,
    ) -> Result<QueryOutcome, ArmadaError> {
        crate::pira::query(self, origin, lo, hi, seed, &FaultPlan::new(), scratch)
    }

    /// Runs a PIRA range query under a fault plan (drops/crashes).
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins or empty ranges.
    pub fn pira_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<QueryOutcome, ArmadaError> {
        let mut scratch = simnet::QueryScratch::new();
        crate::pira::query(self, origin, lo, hi, seed, faults, &mut scratch)
    }

    /// [`pira_query`](Self::pira_query) with the simulator's trace sink
    /// attached: the identical outcome plus the full virtual-time event
    /// stream (hops, deliveries, answers).
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins or empty ranges.
    pub fn pira_query_traced(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(QueryOutcome, Vec<simnet::TraceRecord>), ArmadaError> {
        let mut scratch = simnet::QueryScratch::new();
        crate::pira::query_traced(self, origin, lo, hi, seed, &FaultPlan::new(), &mut scratch)
    }

    /// [`pira_query_with_faults`](Self::pira_query_with_faults) with the
    /// trace sink attached — fault verdicts (drops, losses, crashed
    /// receivers) appear in the stream alongside the hops they pruned.
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins or empty ranges.
    pub fn pira_query_traced_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<(QueryOutcome, Vec<simnet::TraceRecord>), ArmadaError> {
        let mut scratch = simnet::QueryScratch::new();
        crate::pira::query_traced(self, origin, lo, hi, seed, faults, &mut scratch)
    }
}

/// Multi-attribute Armada: FISSIONE + `Multiple_hash` naming + records.
///
/// # Example
///
/// ```
/// use armada::MultiArmada;
///
/// let mut rng = simnet::rng_from_seed(2);
/// // Grid information service: (memory MB, disk GB).
/// let mut grid =
///     MultiArmada::build(80, &[(0.0, 4096.0), (0.0, 500.0)], &mut rng)?;
/// grid.publish(&[2048.0, 120.0])?;
/// grid.publish(&[512.0, 400.0])?;
/// let origin = grid.net().random_peer(&mut rng);
/// // 1GB ≤ memory ≤ 4GB and 50GB ≤ disk ≤ 200GB (the paper's example).
/// let out = grid.mira_query(origin, &[(1024.0, 4096.0), (50.0, 200.0)], 3)?;
/// assert_eq!(out.results.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiArmada {
    net: FissioneNet,
    naming: MultiHash,
    points: Vec<Vec<f64>>,
    net_model: simnet::NetModel,
}

impl MultiArmada {
    /// Builds a network of `n` peers over the given per-attribute domains.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid domains or `n` below the root count.
    pub fn build(
        n: usize,
        domains: &[(f64, f64)],
        rng: &mut SmallRng,
    ) -> Result<Self, ArmadaError> {
        Self::build_with(FissioneConfig::default(), n, domains, rng)
    }

    /// Builds with an explicit FISSIONE configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid domains or `n` below the root count.
    pub fn build_with(
        cfg: FissioneConfig,
        n: usize,
        domains: &[(f64, f64)],
        rng: &mut SmallRng,
    ) -> Result<Self, ArmadaError> {
        let naming = MultiHash::new(domains, cfg.object_id_len)?;
        let net = FissioneNet::build(cfg, n, rng)?;
        Ok(MultiArmada { net, naming, points: Vec::new(), net_model: simnet::NetModel::unit() })
    }

    /// Replaces the network cost model (see [`SingleArmada::set_net_model`]).
    pub fn set_net_model(&mut self, model: simnet::NetModel) {
        self.net_model = model;
    }

    /// The network cost model in force.
    pub fn net_model(&self) -> &simnet::NetModel {
        &self.net_model
    }

    /// The underlying DHT (read-only).
    pub fn net(&self) -> &FissioneNet {
        &self.net
    }

    /// The underlying DHT (mutable).
    pub fn net_mut(&mut self) -> &mut FissioneNet {
        &mut self.net
    }

    /// The naming scheme.
    pub fn naming(&self) -> &MultiHash {
        &self.naming
    }

    /// Number of published records.
    pub fn record_count(&self) -> usize {
        self.points.len()
    }

    /// The attribute vector of a record.
    ///
    /// # Panics
    ///
    /// Panics on unknown record ids.
    pub fn point(&self, record: RecordId) -> &[f64] {
        &self.points[record.0 as usize]
    }

    /// Publishes a record with the given attribute vector.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch.
    pub fn publish(&mut self, values: &[f64]) -> Result<RecordId, ArmadaError> {
        let object = self.naming.object_id(values)?;
        let id = RecordId(self.points.len() as u64);
        self.points.push(values.to_vec());
        self.net.publish(object, id.0).expect("ObjectIDs always have an owner");
        Ok(id)
    }

    /// Ground truth: peers whose hyper-rectangle intersects the query.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or empty ranges.
    pub fn ground_truth_peers(
        &self,
        query: &[(f64, f64)],
    ) -> Result<BTreeSet<NodeId>, ArmadaError> {
        let rect = self.naming.query_rect(query)?;
        let mut zone = Vec::new();
        Ok(self
            .net
            .live_peers()
            .filter(|&n| {
                self.naming
                    .prefix_rect_into(self.net.peer_id(n).expect("live"), &mut zone)
                    .expect("peer depths are within naming depth");
                rect.intersects(&zone)
            })
            .collect())
    }

    /// Ground truth: records a correct query must return.
    pub fn expected_results(&self, query: &[(f64, f64)]) -> Vec<RecordId> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().zip(query.iter()).all(|(&v, &(lo, hi))| v >= lo && v <= hi))
            .map(|(i, _)| RecordId(i as u64))
            .collect()
    }

    /// Runs a MIRA multi-attribute range query from `origin` (fault-free).
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins, arity mismatches or empty ranges.
    pub fn mira_query(
        &self,
        origin: NodeId,
        query: &[(f64, f64)],
        seed: u64,
    ) -> Result<QueryOutcome, ArmadaError> {
        let mut scratch = simnet::QueryScratch::new();
        crate::mira::query(self, origin, query, seed, &FaultPlan::new(), &mut scratch)
    }

    /// [`mira_query`](Self::mira_query) with a caller-owned scratch, for
    /// batch drivers that amortize per-query setup allocations across a
    /// worker thread. Outcomes are bit-identical to the scratch-free path.
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins, arity mismatches, or empty ranges.
    pub fn mira_query_scratch(
        &self,
        origin: NodeId,
        query: &[(f64, f64)],
        seed: u64,
        scratch: &mut simnet::QueryScratch,
    ) -> Result<QueryOutcome, ArmadaError> {
        crate::mira::query(self, origin, query, seed, &FaultPlan::new(), scratch)
    }

    /// Runs a MIRA query under a fault plan.
    ///
    /// # Errors
    ///
    /// Returns an error for dead origins, arity mismatches or empty ranges.
    pub fn mira_query_with_faults(
        &self,
        origin: NodeId,
        query: &[(f64, f64)],
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<QueryOutcome, ArmadaError> {
        let mut scratch = simnet::QueryScratch::new();
        crate::mira::query(self, origin, query, seed, faults, &mut scratch)
    }
}

/// Computes `ComS` and the descent budget for a query sub-region whose
/// endpoints share the common prefix `com_t`, from the origin's PeerID:
/// `f = |ComS|`, `hops_left = b − f` (§4.2).
pub(crate) fn descent_budget(origin_id: &KautzStr, com_t: &KautzStr) -> (usize, usize) {
    let f = origin_id.longest_suffix_prefix(com_t);
    (f, origin_id.len() - f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FissioneConfig {
        FissioneConfig { object_id_len: 24, ..FissioneConfig::default() }
    }

    #[test]
    fn publish_and_value_roundtrip() {
        let mut rng = simnet::rng_from_seed(51);
        let mut a = SingleArmada::build_with(small_cfg(), 30, 0.0, 1000.0, &mut rng).unwrap();
        let r = a.publish(123.5);
        assert_eq!(a.value(r), 123.5);
        assert_eq!(a.record_count(), 1);
        a.net().check_invariants().unwrap();
    }

    #[test]
    fn expected_results_filters_by_value() {
        let mut rng = simnet::rng_from_seed(52);
        let mut a = SingleArmada::build_with(small_cfg(), 20, 0.0, 100.0, &mut rng).unwrap();
        let ids = a.publish_all([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.expected_results(15.0, 35.0), vec![ids[1], ids[2]]);
        assert_eq!(a.expected_results(90.0, 95.0), vec![]);
    }

    #[test]
    fn ground_truth_peers_nonempty_and_prefix_checked() {
        let mut rng = simnet::rng_from_seed(53);
        let a = SingleArmada::build_with(small_cfg(), 200, 0.0, 1000.0, &mut rng).unwrap();
        let truth = a.ground_truth_peers(100.0, 150.0).unwrap();
        assert!(!truth.is_empty());
        let region = a.naming().region(100.0, 150.0).unwrap();
        for n in a.net().live_peers() {
            let hit = region.intersects_prefix(a.net().peer_id(n).unwrap());
            assert_eq!(hit, truth.contains(&n));
        }
    }

    #[test]
    fn fast_ground_truth_matches_exhaustive_scan() {
        let mut rng = simnet::rng_from_seed(55);
        let a = SingleArmada::build_with(small_cfg(), 300, 0.0, 1000.0, &mut rng).unwrap();
        use rand::Rng;
        for _ in 0..100 {
            let lo: f64 = rng.gen_range(0.0..995.0);
            let hi = lo + rng.gen_range(0.0..(1000.0 - lo));
            assert_eq!(
                a.ground_truth_peers(lo, hi).unwrap(),
                a.ground_truth_peers_scan(lo, hi).unwrap(),
                "query [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn repair_restores_records_lost_to_crashes() {
        let mut rng = simnet::rng_from_seed(56);
        let mut a = SingleArmada::build_with(small_cfg(), 80, 0.0, 1000.0, &mut rng).unwrap();
        use rand::Rng;
        for _ in 0..120 {
            a.publish(rng.gen_range(0.0..=1000.0));
        }
        // Nothing to repair on a healthy network.
        assert_eq!(a.repair_records(), 0);
        let mut lost = 0;
        for _ in 0..10 {
            let victim = a.net().random_peer(&mut rng);
            lost += a.net_mut().crash(victim).unwrap();
        }
        assert!(lost > 0, "crashes should lose something at this density");
        assert_eq!(a.repair_records(), lost);
        // Full-domain query sees every record again.
        let out = a.pira_query(a.net().random_peer(&mut rng), 0.0, 1000.0, 1).unwrap();
        assert_eq!(out.results.len(), 120);
        a.net().check_invariants().unwrap();
    }

    #[test]
    fn multi_publish_rejects_bad_arity() {
        let mut rng = simnet::rng_from_seed(54);
        let mut m =
            MultiArmada::build_with(small_cfg(), 20, &[(0.0, 1.0), (0.0, 1.0)], &mut rng).unwrap();
        assert!(m.publish(&[0.5]).is_err());
        assert!(m.publish(&[0.5, 0.5]).is_ok());
    }

    #[test]
    fn descent_budget_matches_paper_example() {
        let p: KautzStr = "212".parse().unwrap();
        let com_t: KautzStr = "0".parse().unwrap();
        assert_eq!(descent_budget(&p, &com_t), (0, 3));
        let com_t: KautzStr = "120".parse().unwrap();
        assert_eq!(descent_budget(&p, &com_t), (2, 1));
        let com_t: KautzStr = "212".parse().unwrap();
        assert_eq!(descent_budget(&p, &com_t), (3, 0));
    }
}
