//! Armada: delay-bounded single- and multi-attribute range queries over the
//! FISSIONE constant-degree DHT — the contribution of *"Delay-Bounded Range
//! Queries in DHT-based Peer-to-Peer Systems"* (ICDCS 2006).
//!
//! Armada is a **general** range-query scheme: it layers entirely over the
//! unmodified [`fissione`] DHT. Its two components are
//!
//! 1. **Order-preserving naming** ([`kautz::naming`]): `Single_hash` maps an
//!    attribute interval onto the Kautz namespace interval-preservingly, so a
//!    value range becomes one Kautz region; `Multiple_hash` maps an
//!    `m`-attribute space partial-order-preservingly, so a rectangle query is
//!    bounded by its corner region.
//! 2. **Pruned forwarding over the FRT**: the forward routing tree
//!    ([`ForwardRoutingTree`]) of the query origin contains, at level `i`,
//!    every peer whose PeerID extends the suffix `u_{i+1}…u_b` of the
//!    origin's ID. [`pira`] (single-attribute) and [`mira`]
//!    (multi-attribute) descend this tree, pruning subtrees whose namespace
//!    prefix cannot intersect the query, and answer at the destination
//!    level.
//!
//! Both algorithms are **delay-bounded**: every query completes within the
//! origin's ID length in hops — `< 2·log₂N` worst case and `< log₂N` on
//! average — *independent of the queried range size*, unlike DCF-CAN
//! (`Ω(N^(1/d))`, growing with range size) and PHT (`O(b·log N)`).
//!
//! # Quickstart
//!
//! ```
//! use armada::SingleArmada;
//!
//! let mut rng = simnet::rng_from_seed(1);
//! // 100 peers; attribute space [0, 1000] (the paper's simulation setup).
//! let mut armada = SingleArmada::build(100, 0.0, 1000.0, &mut rng)?;
//! for score in [12.0, 55.5, 56.7, 58.0, 90.0] {
//!     armada.publish(score);
//! }
//! let origin = armada.net().random_peer(&mut rng);
//! let outcome = armada.pira_query(origin, 50.0, 60.0, 7)?;
//! let mut values: Vec<f64> =
//!     outcome.results.iter().map(|&r| armada.value(r)).collect();
//! values.sort_by(f64::total_cmp);
//! assert_eq!(values, vec![55.5, 56.7, 58.0]);
//! assert!(outcome.metrics.exact);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod frt;
mod metrics;
pub mod mira;
pub mod pira;
pub mod scheme;
pub mod seqwalk;
pub mod topk;

pub use engine::{MultiArmada, RecordId, SingleArmada};
pub use frt::ForwardRoutingTree;
pub use metrics::{QueryMetrics, QueryOutcome};
pub use scheme::{register, MiraScheme, PiraScheme, SeqWalkScheme};
pub use topk::TopKOutcome;

/// Errors returned by Armada query operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ArmadaError {
    /// The underlying DHT rejected an operation.
    Dht(fissione::FissioneError),
    /// Naming rejected the query (empty range, arity mismatch, …).
    Naming(kautz::naming::NamingError),
    /// The query origin is not a live peer.
    BadOrigin {
        /// The offending node id.
        origin: simnet::NodeId,
    },
}

impl std::fmt::Display for ArmadaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArmadaError::Dht(e) => write!(f, "dht error: {e}"),
            ArmadaError::Naming(e) => write!(f, "naming error: {e}"),
            ArmadaError::BadOrigin { origin } => write!(f, "origin {origin} is not live"),
        }
    }
}

impl std::error::Error for ArmadaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArmadaError::Dht(e) => Some(e),
            ArmadaError::Naming(e) => Some(e),
            ArmadaError::BadOrigin { .. } => None,
        }
    }
}

impl From<fissione::FissioneError> for ArmadaError {
    fn from(e: fissione::FissioneError) -> Self {
        ArmadaError::Dht(e)
    }
}

impl From<kautz::naming::NamingError> for ArmadaError {
    fn from(e: kautz::naming::NamingError) -> Self {
        ArmadaError::Naming(e)
    }
}
