//! Armada behind the unified [`dht_api`] query interface.
//!
//! Three adapters: [`PiraScheme`] (single-attribute PIRA), [`SeqWalkScheme`]
//! (the sequential-walk reference baseline), and [`MiraScheme`]
//! (multi-attribute MIRA). Each wraps the native engine plus a
//! `RecordId → caller handle` table, so [`RangeOutcome::results`] carries
//! the handles the caller published — the contract every scheme shares.
//!
//! All three adapters are `Send + Sync` (plain owned tables, no interior
//! mutability), so one built instance shards across the parallel driver's
//! threads by reference; [`register`] wires their builders into the
//! [`SchemeRegistry`] under `"pira"`, `"seqwalk"`, and `"mira"`.
//!
//! The single-attribute adapters also opt into the dynamics layer
//! ([`RangeScheme::as_dynamic`]): FISSIONE supplies
//! join/leave/crash/stabilize natively, and the adapters add the
//! data-repair half — [`SingleArmada::repair_records`] re-publishes
//! whatever crashed peers lost, restoring the post-stabilize exactness
//! contract.
//!
//! [`RangeOutcome::results`]: dht_api::RangeOutcome

use crate::{ArmadaError, MultiArmada, QueryOutcome, SingleArmada};
use dht_api::{
    BuildParams, Dht, DynamicScheme, FetchCost, MultiBuildParams, MultiRangeScheme, OutcomeCosts,
    RangeOutcome, RangeScheme, ReplicaRouting, SchemeError, SchemeRegistry,
};
use fissione::FissioneConfig;
use rand::rngs::SmallRng;
use simnet::{FaultPlan, NodeId};

impl From<ArmadaError> for SchemeError {
    fn from(e: ArmadaError) -> Self {
        match e {
            ArmadaError::BadOrigin { origin } => SchemeError::BadOrigin { origin },
            other => SchemeError::Query(other.to_string()),
        }
    }
}

impl QueryOutcome {
    /// Converts into the scheme-generic outcome. `results` carries raw
    /// [`RecordId`](crate::RecordId) values; adapters that track caller
    /// handles remap before converting.
    pub fn into_outcome(self) -> RangeOutcome {
        RangeOutcome::from_native(
            self.results.iter().map(|r| r.0).collect(),
            OutcomeCosts {
                hops: u64::from(self.metrics.delay),
                latency: self.metrics.latency,
                messages: self.metrics.messages,
            },
            self.metrics.dest_peers,
            self.metrics.reached_peers,
            self.metrics.exact,
        )
    }
}

impl From<QueryOutcome> for RangeOutcome {
    fn from(out: QueryOutcome) -> Self {
        out.into_outcome()
    }
}

/// Remaps a native outcome's `RecordId` results through a handle table.
fn remap(out: QueryOutcome, handles: &[u64]) -> RangeOutcome {
    let mut converted = out.into_outcome();
    for r in &mut converted.results {
        *r = handles[*r as usize];
    }
    converted.results.sort_unstable();
    converted
}

fn build_single(params: &BuildParams, rng: &mut SmallRng) -> Result<SingleArmada, SchemeError> {
    let cfg = FissioneConfig { object_id_len: params.object_id_len, ..FissioneConfig::default() };
    let mut armada = SingleArmada::build_with(cfg, params.n, params.domain.0, params.domain.1, rng)
        .map_err(|e| SchemeError::Build(e.to_string()))?;
    armada.set_net_model(params.net);
    Ok(armada)
}

/// The substrate label with the cost model appended when it is not the
/// default hop-tick network (comparison tables stay unchanged under
/// `unit`).
fn substrate_label(base: &str, model: &simnet::NetModel) -> String {
    if model.is_unit() {
        base.to_string()
    } else {
        format!("{base} @ {}", model.name())
    }
}

/// Armada's PIRA algorithm as a [`RangeScheme`].
#[derive(Debug, Clone)]
pub struct PiraScheme {
    inner: SingleArmada,
    handles: Vec<u64>,
}

impl PiraScheme {
    /// Builds an `n`-peer Armada system per the registry parameters.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Build`] for invalid domains or undersized networks.
    pub fn build(params: &BuildParams, rng: &mut SmallRng) -> Result<Self, SchemeError> {
        Ok(PiraScheme { inner: build_single(params, rng)?, handles: Vec::new() })
    }

    /// The wrapped native engine.
    pub fn inner(&self) -> &SingleArmada {
        &self.inner
    }
}

impl RangeScheme for PiraScheme {
    fn scheme_name(&self) -> &'static str {
        "pira"
    }

    fn substrate(&self) -> String {
        substrate_label("FissionE", self.inner.net_model())
    }

    fn degree(&self) -> String {
        format!("{:.1}", self.inner.net().degree_stats().total.mean)
    }

    fn node_count(&self) -> usize {
        self.inner.net().len()
    }

    fn supports_rect(&self) -> bool {
        true // the Armada family: MIRA answers rectangles
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.inner.publish(value);
        self.handles.push(handle);
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.inner.net().random_peer(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        let out = self.inner.pira_query(origin, lo, hi, seed)?;
        Ok(remap(out, &self.handles))
    }

    fn range_query_scratch(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        scratch: &mut simnet::QueryScratch,
    ) -> Result<RangeOutcome, SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        let out = self.inner.pira_query_scratch(origin, lo, hi, seed, scratch)?;
        Ok(remap(out, &self.handles))
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn range_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<RangeOutcome, SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        // A plan crashing a peer outside the id space would silently be a
        // no-op (nothing routes to it); reject it instead.
        if let Some(node) = faults.first_out_of_range(self.node_count()) {
            return Err(SchemeError::FaultPlanOutOfRange { node, n: self.node_count() });
        }
        let out = self.inner.pira_query_with_faults(origin, lo, hi, seed, faults)?;
        Ok(remap(out, &self.handles))
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        let (out, records) = self.inner.pira_query_traced(origin, lo, hi, seed)?;
        let converted = remap(out, &self.handles);
        let trace = dht_api::QueryTrace::from_sim_records("pira", records, &converted);
        Ok((converted, trace))
    }

    fn trace_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        if let Some(node) = faults.first_out_of_range(self.node_count()) {
            return Err(SchemeError::FaultPlanOutOfRange { node, n: self.node_count() });
        }
        let (out, records) =
            self.inner.pira_query_traced_with_faults(origin, lo, hi, seed, faults)?;
        let converted = remap(out, &self.handles);
        let trace = dht_api::QueryTrace::from_sim_records("pira", records, &converted);
        Ok((converted, trace))
    }

    fn as_dynamic(&mut self) -> Option<&mut dyn DynamicScheme> {
        Some(self)
    }

    fn as_replica_routing(&self) -> Option<&dyn ReplicaRouting> {
        Some(self)
    }
}

/// FISSIONE-backed dynamics shared by the PIRA and sequential-walk
/// adapters: churn goes straight to the substrate, and stabilization pairs
/// the overlay's invariant repair with a record-repair sweep re-publishing
/// whatever crashes lost (the engine's record table is the ground truth).
macro_rules! impl_fissione_dynamics {
    ($adapter:ty) => {
        impl DynamicScheme for $adapter {
            fn join(&mut self, rng: &mut SmallRng) -> Result<NodeId, SchemeError> {
                Ok(self.inner.net_mut().join(rng))
            }

            fn leave(&mut self, node: NodeId) -> Result<(), SchemeError> {
                self.inner.net_mut().leave(node).map_err(SchemeError::from)
            }

            fn crash(&mut self, node: NodeId) -> Result<(), SchemeError> {
                self.inner.net_mut().crash(node).map(|_lost| ()).map_err(SchemeError::from)
            }

            fn stabilize(&mut self) -> usize {
                let migrations = self.inner.net_mut().stabilize();
                migrations + self.inner.repair_records()
            }

            fn live_peers(&self) -> Vec<NodeId> {
                self.inner.net().live_peers().collect()
            }
        }
    };
}

impl_fissione_dynamics!(PiraScheme);
impl_fissione_dynamics!(SeqWalkScheme);

/// FISSIONE-backed replica routing shared by the single-attribute
/// adapters: close groups come from the substrate's Kautz neighborhood
/// ([`Dht::replica_owners`]), and point fetches pay the real routed path
/// to the holder plus one direct response hop — with the same edges
/// priced by the engine's cost model for the latency figure.
macro_rules! impl_fissione_replication {
    ($adapter:ty) => {
        impl ReplicaRouting for $adapter {
            fn live_peers(&self) -> Vec<NodeId> {
                self.inner.net().live_peers().collect()
            }

            fn close_group(&self, value: f64, r: usize) -> Vec<NodeId> {
                self.inner.net().replica_owners(dht_api::value_key(value), r)
            }

            fn fetch_cost(&self, origin: NodeId, holder: NodeId) -> FetchCost {
                if origin == holder {
                    return FetchCost::default(); // the copy is local
                }
                let net = self.inner.net();
                let model = self.inner.net_model();
                let response = model.edge_cost(holder, origin);
                let (hops, route_latency) =
                    net.peer_id(holder).and_then(|id| net.route(origin, id)).map_or_else(
                        |_| {
                            // Unroutable (dead holder): fall back to the
                            // log N lookup model, priced at the direct
                            // origin→holder edge per modeled hop.
                            let h = (net.len() as f64).log2().ceil() as u64;
                            (h, h * model.edge_cost(origin, holder))
                        },
                        |r| (r.hops() as u64, model.path_cost(r.path())),
                    );
                FetchCost {
                    hops: hops + 1, // routed request + direct response
                    latency: route_latency + response,
                    messages: hops + 1,
                }
            }
        }
    };
}

impl_fissione_replication!(PiraScheme);
impl_fissione_replication!(SeqWalkScheme);

/// The sequential-walk reference baseline as a [`RangeScheme`].
///
/// Models the `O(logN + n)` linked-list class (Skip Graph / SkipNet) over
/// Armada's data placement; see [`crate::seqwalk`].
#[derive(Debug, Clone)]
pub struct SeqWalkScheme {
    inner: SingleArmada,
    handles: Vec<u64>,
}

impl SeqWalkScheme {
    /// Builds an `n`-peer network per the registry parameters.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Build`] for invalid domains or undersized networks.
    pub fn build(params: &BuildParams, rng: &mut SmallRng) -> Result<Self, SchemeError> {
        Ok(SeqWalkScheme { inner: build_single(params, rng)?, handles: Vec::new() })
    }
}

impl RangeScheme for SeqWalkScheme {
    fn scheme_name(&self) -> &'static str {
        "seqwalk"
    }

    fn substrate(&self) -> String {
        substrate_label("FissionE placement", self.inner.net_model())
    }

    fn degree(&self) -> String {
        "2 (successor list)".into()
    }

    fn node_count(&self) -> usize {
        self.inner.net().len()
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.inner.publish(value);
        self.handles.push(handle);
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.inner.net().random_peer(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        let out = crate::seqwalk::query(&self.inner, origin, lo, hi)?;
        Ok(remap(out, &self.handles))
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        _seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        let (out, records) = crate::seqwalk::query_traced(&self.inner, origin, lo, hi)?;
        let converted = remap(out, &self.handles);
        let trace = dht_api::QueryTrace::from_sim_records("seqwalk", records, &converted);
        Ok((converted, trace))
    }

    fn as_dynamic(&mut self) -> Option<&mut dyn DynamicScheme> {
        Some(self)
    }

    fn as_replica_routing(&self) -> Option<&dyn ReplicaRouting> {
        Some(self)
    }
}

/// Armada's MIRA algorithm as a [`MultiRangeScheme`].
#[derive(Debug, Clone)]
pub struct MiraScheme {
    inner: MultiArmada,
    dims: usize,
    handles: Vec<u64>,
}

impl MiraScheme {
    /// Builds an `n`-peer multi-attribute Armada system.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Build`] for invalid domains or undersized networks.
    pub fn build(params: &MultiBuildParams, rng: &mut SmallRng) -> Result<Self, SchemeError> {
        let cfg =
            FissioneConfig { object_id_len: params.object_id_len, ..FissioneConfig::default() };
        let mut inner = MultiArmada::build_with(cfg, params.n, &params.domains, rng)
            .map_err(|e| SchemeError::Build(e.to_string()))?;
        inner.set_net_model(params.net);
        Ok(MiraScheme { inner, dims: params.domains.len(), handles: Vec::new() })
    }

    /// The wrapped native engine.
    pub fn inner(&self) -> &MultiArmada {
        &self.inner
    }
}

impl MultiRangeScheme for MiraScheme {
    fn scheme_name(&self) -> &'static str {
        "mira"
    }

    fn substrate(&self) -> String {
        substrate_label("FissionE", self.inner.net_model())
    }

    fn degree(&self) -> String {
        format!("{:.1}", self.inner.net().degree_stats().total.mean)
    }

    fn node_count(&self) -> usize {
        self.inner.net().len()
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn publish_point(&mut self, point: &[f64], handle: u64) -> Result<(), SchemeError> {
        if point.len() != self.dims {
            return Err(SchemeError::WrongArity { expected: self.dims, got: point.len() });
        }
        self.inner.publish(point)?;
        self.handles.push(handle);
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.inner.net().random_peer(rng)
    }

    fn rect_query(
        &self,
        origin: NodeId,
        rect: &[(f64, f64)],
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if rect.len() != self.dims {
            return Err(SchemeError::WrongArity { expected: self.dims, got: rect.len() });
        }
        if let Some(&(lo, hi)) = rect.iter().find(|&&(lo, hi)| lo > hi) {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        let out = self.inner.mira_query(origin, rect, seed)?;
        Ok(remap(out, &self.handles))
    }

    fn rect_query_scratch(
        &self,
        origin: NodeId,
        rect: &[(f64, f64)],
        seed: u64,
        scratch: &mut simnet::QueryScratch,
    ) -> Result<RangeOutcome, SchemeError> {
        if rect.len() != self.dims {
            return Err(SchemeError::WrongArity { expected: self.dims, got: rect.len() });
        }
        if let Some(&(lo, hi)) = rect.iter().find(|&&(lo, hi)| lo > hi) {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        let out = self.inner.mira_query_scratch(origin, rect, seed, scratch)?;
        Ok(remap(out, &self.handles))
    }
}

/// Registers `"pira"`, `"seqwalk"` (single) and `"mira"` (multi).
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_single("pira", Box::new(|p, rng| Ok(Box::new(PiraScheme::build(p, rng)?))));
    reg.register_single("seqwalk", Box::new(|p, rng| Ok(Box::new(SeqWalkScheme::build(p, rng)?))));
    reg.register_multi("mira", Box::new(|p, rng| Ok(Box::new(MiraScheme::build(p, rng)?))));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn params(n: usize) -> BuildParams {
        BuildParams::new(n, 0.0, 1000.0).with_object_id_len(24)
    }

    #[test]
    fn pira_scheme_matches_native_engine() {
        let mut rng = simnet::rng_from_seed(800);
        let mut scheme = PiraScheme::build(&params(120), &mut rng).unwrap();
        // Publish with shuffled handles so remapping is actually exercised.
        let mut values = Vec::new();
        for i in 0..300u64 {
            let v = rng.gen_range(0.0..=1000.0);
            let handle = 10_000 - i; // descending handles
            scheme.publish(v, handle).unwrap();
            values.push((v, handle));
        }
        for q in 0..20 {
            let lo = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.5..100.0);
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query(origin, lo, hi, q).unwrap();
            let mut expect: Vec<u64> =
                values.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
            assert!(out.exact);
        }
    }

    #[test]
    fn seqwalk_scheme_agrees_with_pira_scheme() {
        let mut rng = simnet::rng_from_seed(801);
        let mut pira = PiraScheme::build(&params(100), &mut rng).unwrap();
        let mut rng2 = simnet::rng_from_seed(801);
        let mut walk = SeqWalkScheme::build(&params(100), &mut rng2).unwrap();
        let mut data_rng = simnet::rng_from_seed(8010);
        for h in 0..200u64 {
            let v = data_rng.gen_range(0.0..=1000.0);
            pira.publish(v, h).unwrap();
            walk.publish(v, h).unwrap();
        }
        for q in 0..10 {
            let lo = data_rng.gen_range(0.0..800.0);
            let origin = pira.random_origin(&mut data_rng);
            let a = pira.range_query(origin, lo, lo + 100.0, q).unwrap();
            let b = walk.range_query(origin, lo, lo + 100.0, q).unwrap();
            assert_eq!(a.results, b.results);
            assert_eq!(a.dest_peers, b.dest_peers);
        }
    }

    #[test]
    fn mira_scheme_answers_rectangles() {
        let mut rng = simnet::rng_from_seed(802);
        let p = MultiBuildParams::new(80, &[(0.0, 100.0), (0.0, 100.0)]).with_object_id_len(24);
        let mut scheme = MiraScheme::build(&p, &mut rng).unwrap();
        assert_eq!(scheme.dims(), 2);
        let mut pts = Vec::new();
        for h in 0..150u64 {
            let pt = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            scheme.publish_point(&pt, h).unwrap();
            pts.push(pt);
        }
        let rect = [(20.0, 60.0), (30.0, 70.0)];
        let origin = scheme.random_origin(&mut rng);
        let out = scheme.rect_query(origin, &rect, 1).unwrap();
        let mut expect: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().zip(rect.iter()).all(|(&v, &(lo, hi))| v >= lo && v <= hi))
            .map(|(h, _)| h as u64)
            .collect();
        expect.sort_unstable();
        assert_eq!(out.results, expect);
        assert!(out.exact);
        // Arity errors are uniform.
        assert!(matches!(
            scheme.rect_query(origin, &[(0.0, 1.0)], 1),
            Err(SchemeError::WrongArity { .. })
        ));
    }

    #[test]
    fn dynamics_churn_then_stabilize_restores_exactness() {
        let mut rng = simnet::rng_from_seed(804);
        let mut scheme = PiraScheme::build(&params(100), &mut rng).unwrap();
        let mut data = Vec::new();
        for h in 0..200u64 {
            let v = rng.gen_range(0.0..=1000.0);
            scheme.publish(v, h).unwrap();
            data.push((v, h));
        }
        // Churn through the capability hook, as a driver would.
        let dynamic = scheme.as_dynamic().expect("pira is dynamic");
        for _ in 0..40 {
            dynamic.join(&mut rng).unwrap();
        }
        for _ in 0..25 {
            let live = dynamic.live_peers();
            dynamic.leave(live[live.len() / 2]).unwrap();
        }
        for _ in 0..10 {
            let live = dynamic.live_peers();
            dynamic.crash(live[live.len() / 3]).unwrap();
        }
        dynamic.stabilize();
        assert_eq!(dynamic.live_peers().len(), 105);
        // Every query is exact again, records included.
        for q in 0..10 {
            let lo = rng.gen_range(0.0..800.0);
            let hi = lo + 150.0;
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query(origin, lo, hi, q).unwrap();
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "post-churn query [{lo}, {hi}]");
            assert!(out.exact);
            assert_eq!(out.peer_recall(), 1.0);
        }
    }

    #[test]
    fn pira_supports_fault_injection_through_the_trait() {
        let mut rng = simnet::rng_from_seed(805);
        let mut scheme = PiraScheme::build(&params(150), &mut rng).unwrap();
        for h in 0..150u64 {
            scheme.publish(rng.gen_range(0.0..=1000.0), h).unwrap();
        }
        let mut faults = simnet::FaultPlan::with_drop_prob(0.3);
        let mut degraded = false;
        for q in 0..20 {
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query_with_faults(origin, 100.0, 400.0, q, &faults).unwrap();
            degraded |= out.peer_recall() < 1.0;
        }
        assert!(degraded, "30% loss should cost some recall");
        // A fault-free plan matches the plain path bit for bit.
        faults.set_drop_prob(0.0);
        let origin = scheme.random_origin(&mut rng);
        let a = scheme.range_query(origin, 100.0, 400.0, 1).unwrap();
        let b = scheme.range_query_with_faults(origin, 100.0, 400.0, 1, &faults).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_fault_plans_are_rejected_not_ignored() {
        // Regression: a plan crashing peer ≥ N used to be a silent no-op.
        let mut rng = simnet::rng_from_seed(808);
        let scheme = PiraScheme::build(&params(80), &mut rng).unwrap();
        let mut faults = FaultPlan::new();
        faults.crash(scheme.node_count() + 5);
        let origin = scheme.random_origin(&mut rng);
        let err = scheme.range_query_with_faults(origin, 1.0, 2.0, 0, &faults).unwrap_err();
        assert!(matches!(err, SchemeError::FaultPlanOutOfRange { .. }), "{err}");
        assert!(err.to_string().contains("80"));
        // In-range plans still run.
        let mut ok = FaultPlan::new();
        ok.crash(scheme.node_count() - 1);
        assert!(scheme.range_query_with_faults(origin, 1.0, 2.0, 0, &ok).is_ok());
    }

    #[test]
    fn replicated_pira_recovers_records_before_stabilize() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        let build = |name: &str| {
            let mut rng = simnet::rng_from_seed(806);
            let mut s = reg.build_single(name, &params(120), &mut rng).unwrap();
            let mut data_rng = simnet::rng_from_seed(8060);
            for h in 0..300u64 {
                s.publish(data_rng.gen_range(0.0..=1000.0), h).unwrap();
            }
            s
        };
        let mut plain = build("pira");
        let mut replicated = build("pira+r3");
        // The same crash sequence hits both (victims are drawn by index
        // from identical live lists — the wrapper does not perturb
        // membership).
        for s in [&mut plain, &mut replicated] {
            let dynamic = s.as_dynamic().unwrap();
            for _ in 0..15 {
                let live = dynamic.live_peers();
                dynamic.crash(live[live.len() / 2]).unwrap();
            }
        }
        // No stabilize: the primary path is degraded on both…
        let mut rng = simnet::rng_from_seed(807);
        let origin = plain.random_origin(&mut rng);
        let bare = plain.range_query(origin, 0.0, 1000.0, 0).unwrap();
        let served = replicated.range_query(origin, 0.0, 1000.0, 0).unwrap();
        assert!(bare.results.len() < 300, "15 crashes must cost the bare scheme records");
        // …but replicas win answers back, at an honest message premium.
        assert!(
            served.results.len() > bare.results.len(),
            "replicas must recover records: {} !> {}",
            served.results.len(),
            bare.results.len()
        );
        // FissionE reclaims crashed zones synchronously, so peer-level
        // recall can already sit at 1.0 mid-churn — the replicas win back
        // the *records* and must never make peer recall worse.
        assert!(served.peer_recall() >= bare.peer_recall());
        assert!(served.messages > bare.messages, "replica fetches are not free");
        assert!(served.delay >= bare.delay, "the fetch phase cannot shorten the critical path");
        // The wrapper still reports the scheme's registry identity.
        assert_eq!(replicated.scheme_name(), "pira");
        assert!(replicated.substrate().contains("successor-3"));
    }

    #[test]
    fn trace_totals_reproduce_reported_costs() {
        // The tentpole accounting invariant, on both traced adapters: the
        // explain tree's total is exactly (delay, latency, messages).
        let mut rng = simnet::rng_from_seed(809);
        let mut pira = PiraScheme::build(&params(150), &mut rng).unwrap();
        let mut rng2 = simnet::rng_from_seed(809);
        let mut walk = SeqWalkScheme::build(&params(150), &mut rng2).unwrap();
        let mut data_rng = simnet::rng_from_seed(8090);
        for h in 0..300u64 {
            let v = data_rng.gen_range(0.0..=1000.0);
            pira.publish(v, h).unwrap();
            walk.publish(v, h).unwrap();
        }
        assert!(pira.supports_tracing() && walk.supports_tracing());
        for q in 0..15 {
            let lo = data_rng.gen_range(0.0..900.0);
            let hi = lo + data_rng.gen_range(0.5..80.0);
            let origin = pira.random_origin(&mut data_rng);
            for scheme in [&pira as &dyn RangeScheme, &walk as &dyn RangeScheme] {
                let plain = scheme.range_query(origin, lo, hi, q).unwrap();
                let (traced, trace) = scheme.trace_query(origin, lo, hi, q).unwrap();
                assert_eq!(plain, traced, "{} query [{lo}, {hi}]", scheme.scheme_name());
                assert_eq!(
                    trace.root.total(),
                    (traced.delay, traced.latency, traced.messages),
                    "{} explain tree must sum to the outcome: [{lo}, {hi}]\n{}",
                    scheme.scheme_name(),
                    trace.explain_text()
                );
                assert!(!trace.events.is_empty());
            }
        }
    }

    #[test]
    fn traced_faults_keep_the_accounting_invariant() {
        let mut rng = simnet::rng_from_seed(810);
        let mut scheme = PiraScheme::build(&params(150), &mut rng).unwrap();
        for h in 0..200u64 {
            scheme.publish(rng.gen_range(0.0..=1000.0), h).unwrap();
        }
        let faults = FaultPlan::with_drop_prob(0.2);
        for q in 0..15 {
            let origin = scheme.random_origin(&mut rng);
            let plain = scheme.range_query_with_faults(origin, 100.0, 400.0, q, &faults).unwrap();
            let (traced, trace) =
                scheme.trace_query_with_faults(origin, 100.0, 400.0, q, &faults).unwrap();
            assert_eq!(plain, traced);
            assert_eq!(trace.root.total(), (traced.delay, traced.latency, traced.messages));
        }
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        assert_eq!(reg.single_names(), vec!["pira", "seqwalk"]);
        assert_eq!(reg.multi_names(), vec!["mira"]);
        let mut rng = simnet::rng_from_seed(803);
        let mut s = reg.build_single("pira", &params(60), &mut rng).unwrap();
        s.publish(500.0, 7).unwrap();
        let origin = s.random_origin(&mut rng);
        let out = s.range_query(origin, 499.0, 501.0, 0).unwrap();
        assert_eq!(out.results, vec![7]);
        // The unified error vocabulary holds for the Armada adapters too.
        assert!(matches!(s.range_query(origin, 5.0, 1.0, 0), Err(SchemeError::EmptyRange { .. })));
    }
}
