//! MIRA — multi-attribute range queries (§5).
//!
//! A rectangle query `Ω = ⟨[x0,y0], …, [x(m-1),y(m-1)]⟩` is bounded by the
//! corner region `⟨Multiple_hash(mins), Multiple_hash(maxs)⟩` (partial-order
//! preservation, Definition 4). MIRA descends the origin's forward routing
//! tree exactly like PIRA — same `ComS`/`hops_left` accounting over the
//! corner region — but prunes with the *real* query: a subtree whose
//! namespace prefix maps to a hyper-rectangle disjoint from `Ω` is cut, and
//! a visited peer answers iff its own rectangle intersects `Ω`.
//!
//! Like PIRA, MIRA is delay-bounded by the origin's PeerID length:
//! `< 2·log₂N` worst case and `< log₂N` on average, independent of the
//! query volume.

use crate::engine::descent_budget;
use crate::{ArmadaError, MultiArmada, QueryMetrics, QueryOutcome, RecordId};
use kautz::fixed::BoundaryInterval;
use kautz::KautzStr;
use simnet::{Envelope, FaultPlan, NodeId, QueryScratch, Sim, SimScratch};
use std::collections::BTreeSet;

/// One in-flight MIRA sub-query message — `Copy`, like [`PiraMsg`]: the
/// sub-query's `ComS` lives once per query in [`MiraScratch::subs`],
/// indexed by `sub`, instead of being cloned into every hop.
///
/// [`PiraMsg`]: crate::pira
#[derive(Debug, Clone, Copy)]
struct MiraMsg {
    /// Index into the per-query `ComS` table.
    sub: u8,
    /// Remaining descent levels.
    hops_left: usize,
}

/// MIRA's reusable per-thread state, slotted into a [`QueryScratch`]. Every
/// field is reset at query start, so reuse is invisible to results and
/// metrics.
struct MiraScratch {
    sim: SimScratch<MiraMsg>,
    /// `ComS` per sub-query (prefix of the sub-region's common prefix,
    /// suffix of the origin's PeerID).
    subs: Vec<KautzStr>,
    arrivals: Vec<(NodeId, u64)>,
    nbrs: Vec<NodeId>,
    shift: KautzStr,
    /// Subtree-prefix buffer: `ComS ++ cid[strip..]` per candidate child.
    wbuf: KautzStr,
    /// Rectangle buffers for the answer and prune tests.
    zone: Vec<BoundaryInterval>,
    wrect: Vec<BoundaryInterval>,
}

impl Default for MiraScratch {
    fn default() -> Self {
        MiraScratch {
            sim: SimScratch::new(),
            subs: Vec::new(),
            arrivals: Vec::new(),
            nbrs: Vec::new(),
            shift: KautzStr::empty(2),
            wbuf: KautzStr::empty(2),
            zone: Vec::new(),
            wrect: Vec::new(),
        }
    }
}

/// Executes a MIRA multi-attribute range query; see the module docs.
///
/// # Errors
///
/// Returns [`ArmadaError::BadOrigin`] for dead origins and naming errors for
/// arity mismatches or empty ranges.
pub(crate) fn query(
    armada: &MultiArmada,
    origin: NodeId,
    ranges: &[(f64, f64)],
    seed: u64,
    faults: &FaultPlan,
    scratch: &mut QueryScratch,
) -> Result<QueryOutcome, ArmadaError> {
    let net = armada.net();
    if !net.is_live(origin) {
        return Err(ArmadaError::BadOrigin { origin });
    }
    let naming = armada.naming();
    let rect = naming.query_rect(ranges)?;
    let corner = naming.corner_region(ranges)?;
    let truth = armada.ground_truth_peers(ranges)?;
    let origin_id = net.peer_id(origin)?;

    let MiraScratch { sim: sim_scratch, subs, arrivals, nbrs, shift, wbuf, zone, wrect } =
        scratch.slot::<MiraScratch>();
    let mut sim: Sim<MiraMsg> = Sim::from_scratch(seed, sim_scratch)
        .with_faults_ref(faults)
        .with_net(*armada.net_model());
    subs.clear();
    for sub in corner.split_by_common_prefix() {
        let com_t = sub.common_prefix();
        let (f, hops_left) = descent_budget(origin_id, &com_t);
        sim.send(origin, origin, 0, MiraMsg { sub: subs.len() as u8, hops_left });
        subs.push(com_t.take_front(f));
    }

    let mut answered: BTreeSet<NodeId> = BTreeSet::new();
    // Flat arrival log reduced by a sorted post-pass (min cost per peer,
    // max over peers — order-independent; see pira.rs).
    arrivals.clear();
    let mut results: BTreeSet<RecordId> = BTreeSet::new();
    let mut delay: u32 = 0;
    sim.run(|sim, env: Envelope<MiraMsg>| {
        let node = env.to;
        let id = net.peer_id(node).expect("messages are delivered to live peers");
        let com_s = &subs[env.payload.sub as usize];

        // Local answer: this peer's hyper-rectangle intersects the query.
        naming.prefix_rect_into(id, zone).expect("peer depth within naming depth");
        if rect.intersects(zone) {
            arrivals.push((node, env.cost));
            if answered.insert(node) {
                delay = delay.max(env.hop);
                let peer = net.peer(node).expect("live");
                for (_oid, handles) in peer.objects_in_range(corner.low(), corner.high()) {
                    for &h in handles {
                        let record = RecordId(h);
                        let point = armada.point(record);
                        let inside = point
                            .iter()
                            .zip(ranges.iter())
                            .all(|(&v, &(lo, hi))| v >= lo && v <= hi);
                        if inside {
                            results.insert(record);
                        }
                    }
                }
            }
        }

        // Pruned descent against the real rectangle.
        let d = env.payload.hops_left;
        if d > 0 {
            let f = com_s.len();
            let strip = f + d - 1;
            net.out_neighbors_into(node, shift, nbrs);
            for &c in nbrs.iter() {
                let cid = net.peer_id(c).expect("live");
                // `ComS ++ cid[strip..]`; on a repeated junction symbol the
                // buffer degrades to `ComS` alone — PIRA's never-prune
                // fallback for covers violating the neighborhood invariant.
                let tail = cid.symbols().get(strip..).unwrap_or(&[]);
                let _ = wbuf.assign_concat(com_s, tail);
                naming.prefix_rect_into(wbuf, wrect).expect("subtree prefix within depth");
                if rect.intersects(wrect) {
                    sim.forward(&env, c, MiraMsg { sub: env.payload.sub, hops_left: d - 1 });
                }
            }
        }
    });

    let reached = answered.len();
    let exact = answered == truth;
    let latency = simnet::last_first_arrival(arrivals);
    let messages = sim.stats().messages_sent;
    sim.recycle(sim_scratch);
    Ok(QueryOutcome {
        results: results.into_iter().collect(),
        metrics: QueryMetrics {
            delay,
            latency,
            messages,
            dest_peers: truth.len(),
            reached_peers: reached,
            exact,
        },
    })
}

#[cfg(test)]
mod tests {
    use crate::MultiArmada;
    use fissione::FissioneConfig;
    use rand::Rng;

    fn small_cfg() -> FissioneConfig {
        FissioneConfig { object_id_len: 24, ..FissioneConfig::default() }
    }

    fn build2(n: usize, records: usize, seed: u64) -> MultiArmada {
        let mut rng = simnet::rng_from_seed(seed);
        let mut m =
            MultiArmada::build_with(small_cfg(), n, &[(0.0, 100.0), (0.0, 100.0)], &mut rng)
                .unwrap();
        for _ in 0..records {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            m.publish(&p).unwrap();
        }
        m
    }

    fn random_query(rng: &mut rand::rngs::SmallRng) -> Vec<(f64, f64)> {
        (0..2)
            .map(|_| {
                let lo = rng.gen_range(0.0..80.0);
                let hi = lo + rng.gen_range(0.5..20.0);
                (lo, hi)
            })
            .collect()
    }

    #[test]
    fn mira_is_exact_on_random_queries() {
        let m = build2(300, 400, 71);
        let mut rng = simnet::rng_from_seed(710);
        for q in 0..80 {
            let query = random_query(&mut rng);
            let origin = m.net().random_peer(&mut rng);
            let out = m.mira_query(origin, &query, q).unwrap();
            assert!(out.metrics.exact, "query {query:?} missed peers");
            assert_eq!(out.results, m.expected_results(&query), "query {query:?}");
        }
    }

    #[test]
    fn mira_delay_is_bounded_by_origin_depth() {
        let m = build2(400, 100, 72);
        let mut rng = simnet::rng_from_seed(720);
        for q in 0..60 {
            let query = random_query(&mut rng);
            let origin = m.net().random_peer(&mut rng);
            let out = m.mira_query(origin, &query, q).unwrap();
            let b = m.net().peer(origin).unwrap().depth() as u32;
            assert!(out.metrics.delay <= b);
        }
    }

    #[test]
    fn mira_average_delay_below_log_n_regardless_of_volume() {
        let m = build2(600, 200, 73);
        let mut rng = simnet::rng_from_seed(730);
        let log_n = (600f64).log2();
        for &side in &[1.0, 10.0, 50.0] {
            let mut total = 0u64;
            let queries = 100;
            for q in 0..queries {
                let lo0 = rng.gen_range(0.0..(100.0 - side));
                let lo1 = rng.gen_range(0.0..(100.0 - side));
                let query = vec![(lo0, lo0 + side), (lo1, lo1 + side)];
                let origin = m.net().random_peer(&mut rng);
                let out = m.mira_query(origin, &query, q).unwrap();
                total += u64::from(out.metrics.delay);
            }
            let avg = total as f64 / queries as f64;
            assert!(avg < log_n, "side {side}: avg delay {avg} ≥ {log_n}");
        }
    }

    #[test]
    fn mira_whole_space_reaches_everyone() {
        let m = build2(120, 150, 74);
        let mut rng = simnet::rng_from_seed(740);
        let origin = m.net().random_peer(&mut rng);
        let query = vec![(0.0, 100.0), (0.0, 100.0)];
        let out = m.mira_query(origin, &query, 1).unwrap();
        assert_eq!(out.metrics.dest_peers, m.net().len());
        assert!(out.metrics.exact);
        assert_eq!(out.results.len(), m.record_count());
    }

    #[test]
    fn mira_three_attributes() {
        let mut rng = simnet::rng_from_seed(75);
        let mut m = MultiArmada::build_with(
            small_cfg(),
            150,
            &[(0.0, 10.0), (0.0, 10.0), (0.0, 10.0)],
            &mut rng,
        )
        .unwrap();
        for _ in 0..200 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..=10.0)).collect();
            m.publish(&p).unwrap();
        }
        for q in 0..40 {
            let query: Vec<(f64, f64)> = (0..3)
                .map(|_| {
                    let lo = rng.gen_range(0.0..8.0);
                    (lo, lo + rng.gen_range(0.2..2.0))
                })
                .collect();
            let origin = m.net().random_peer(&mut rng);
            let out = m.mira_query(origin, &query, q).unwrap();
            assert!(out.metrics.exact, "query {query:?}");
            assert_eq!(out.results, m.expected_results(&query));
        }
    }

    #[test]
    fn mira_narrower_query_prunes_more() {
        // The corner region is identical, but the true rectangle differs:
        // MIRA must send fewer messages for the narrower query.
        let m = build2(500, 100, 76);
        let mut rng = simnet::rng_from_seed(760);
        let origin = m.net().random_peer(&mut rng);
        let wide = vec![(10.0, 60.0), (10.0, 60.0)];
        let narrow = vec![(10.0, 60.0), (34.9, 35.1)];
        let w = m.mira_query(origin, &wide, 1).unwrap();
        let n = m.mira_query(origin, &narrow, 2).unwrap();
        assert!(
            n.metrics.messages < w.metrics.messages,
            "narrow {} vs wide {}",
            n.metrics.messages,
            w.metrics.messages
        );
        assert!(n.metrics.dest_peers <= w.metrics.dest_peers);
    }
}
