//! Query metrics matching the paper's evaluation (§4.3.3).

use crate::RecordId;

/// Per-query measurements.
///
/// * `delay` — maximum hop depth among destination deliveries (the paper's
///   query delay under unit per-hop latency).
/// * `messages` — total protocol messages sent.
/// * `dest_peers` — ground-truth number of peers whose region intersects the
///   query ("Destpeers").
/// * `reached_peers` — destination peers that actually answered (equals
///   `dest_peers` in fault-free runs).
/// * `exact` — whether the answered set equals the ground truth exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMetrics {
    /// Max hop depth among destination deliveries.
    pub delay: u32,
    /// Critical-path virtual milliseconds under the engine's
    /// [`NetModel`](simnet::NetModel): the largest, over destination
    /// peers, of the cheapest accumulated edge cost among the messages
    /// that reached that peer. Equals `delay` under the `unit` model.
    pub latency: u64,
    /// Total protocol messages sent.
    pub messages: u64,
    /// Ground-truth destination peer count.
    pub dest_peers: usize,
    /// Destination peers that answered.
    pub reached_peers: usize,
    /// `reached == truth` as sets.
    pub exact: bool,
}

impl QueryMetrics {
    /// `MesgRatio = Messages / Destpeers` (§4.3.3 metric (b)).
    pub fn mesg_ratio(&self) -> f64 {
        if self.dest_peers == 0 {
            0.0
        } else {
            self.messages as f64 / self.dest_peers as f64
        }
    }

    /// `IncreRatio = (Messages − log₂N) / (Destpeers − 1)` (§4.3.3 metric
    /// (c)); `NaN`-free: returns 0 when `Destpeers ≤ 1`.
    pub fn incre_ratio(&self, n_peers: usize) -> f64 {
        if self.dest_peers <= 1 {
            return 0.0;
        }
        (self.messages as f64 - (n_peers as f64).log2()) / (self.dest_peers as f64 - 1.0)
    }

    /// Recall against the ground truth peer set.
    pub fn peer_recall(&self) -> f64 {
        if self.dest_peers == 0 {
            1.0
        } else {
            self.reached_peers as f64 / self.dest_peers as f64
        }
    }
}

/// The result of one range query: matching records plus measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Records whose attribute value(s) satisfy the query, in ascending
    /// record order.
    pub results: Vec<RecordId>,
    /// Protocol measurements.
    pub metrics: QueryMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(messages: u64, dest: usize) -> QueryMetrics {
        QueryMetrics {
            delay: 5,
            latency: 5,
            messages,
            dest_peers: dest,
            reached_peers: dest,
            exact: true,
        }
    }

    #[test]
    fn mesg_ratio_divides() {
        assert_eq!(metrics(20, 10).mesg_ratio(), 2.0);
        assert_eq!(metrics(20, 0).mesg_ratio(), 0.0);
    }

    #[test]
    fn incre_ratio_matches_definition() {
        // (20 - log2(1024)) / (6 - 1) = (20 - 10) / 5 = 2.
        assert_eq!(metrics(20, 6).incre_ratio(1024), 2.0);
        assert_eq!(metrics(20, 1).incre_ratio(1024), 0.0);
    }

    #[test]
    fn recall_is_fraction_reached() {
        let m = QueryMetrics {
            delay: 1,
            latency: 1,
            messages: 3,
            dest_peers: 4,
            reached_peers: 3,
            exact: false,
        };
        assert_eq!(m.peer_recall(), 0.75);
    }
}
