//! Property tests: PIRA/MIRA exactness and delay bounds over randomly grown
//! networks, random data and random queries — the core claims of the paper.

use armada::{MultiArmada, SingleArmada};
use fissione::FissioneConfig;
use proptest::prelude::*;
use rand::Rng;

fn small_cfg() -> FissioneConfig {
    FissioneConfig { object_id_len: 24, ..FissioneConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pira_exact_for_any_network_and_query(
        seed in 0u64..10_000,
        n in 10usize..220,
        records in 0usize..200,
        lo_frac in 0f64..1.0,
        size_frac in 0f64..1.0,
    ) {
        let mut rng = simnet::rng_from_seed(seed);
        let mut a = SingleArmada::build_with(small_cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
        for _ in 0..records {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            a.publish(v);
        }
        let lo = lo_frac * 1000.0;
        let hi = (lo + size_frac * (1000.0 - lo)).min(1000.0);
        let origin = a.net().random_peer(&mut rng);
        let out = a.pira_query(origin, lo, hi, seed).unwrap();
        prop_assert!(out.metrics.exact, "missed peers for [{}, {}]", lo, hi);
        prop_assert_eq!(out.results, a.expected_results(lo, hi));
        // Delay bound: never more than the origin's depth, hence < 2 log2 N
        // whenever the balance invariant holds (checked separately).
        let b = a.net().peer(origin).unwrap().depth() as u32;
        prop_assert!(out.metrics.delay <= b);
    }

    #[test]
    fn pira_message_cost_close_to_lower_bound(
        seed in 0u64..10_000,
        n in 64usize..256,
    ) {
        // Lower bound: O(logN) + n − 1 messages. Check messages ≥ destpeers − 1
        // (reaching k peers needs at least k−1 sends beyond the first) and
        // messages ≤ 4·(logN + 2·destpeers) (generous upper envelope of the
        // paper's logN + 2n − 2 average).
        let mut rng = simnet::rng_from_seed(seed);
        let a = SingleArmada::build_with(small_cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
        let origin = a.net().random_peer(&mut rng);
        let lo: f64 = rng.gen_range(0.0..500.0);
        let out = a.pira_query(origin, lo, lo + 250.0, seed).unwrap();
        let log_n = (n as f64).log2();
        let n_dest = out.metrics.dest_peers as f64;
        prop_assert!(out.metrics.messages as f64 >= n_dest - 1.0);
        prop_assert!(
            (out.metrics.messages as f64) <= 4.0 * (log_n + 2.0 * n_dest),
            "messages {} for {} destinations at N={}",
            out.metrics.messages, n_dest, n
        );
    }

    #[test]
    fn mira_exact_for_any_network_and_query(
        seed in 0u64..10_000,
        n in 10usize..160,
        records in 0usize..120,
        q0 in 0f64..1.0, w0 in 0f64..1.0,
        q1 in 0f64..1.0, w1 in 0f64..1.0,
    ) {
        let mut rng = simnet::rng_from_seed(seed);
        let mut m = MultiArmada::build_with(
            small_cfg(), n, &[(0.0, 50.0), (0.0, 200.0)], &mut rng,
        ).unwrap();
        for _ in 0..records {
            let p = [rng.gen_range(0.0..=50.0), rng.gen_range(0.0..=200.0)];
            m.publish(&p).unwrap();
        }
        let lo0 = q0 * 50.0;
        let hi0 = (lo0 + w0 * (50.0 - lo0)).min(50.0);
        let lo1 = q1 * 200.0;
        let hi1 = (lo1 + w1 * (200.0 - lo1)).min(200.0);
        let query = [(lo0, hi0), (lo1, hi1)];
        let origin = m.net().random_peer(&mut rng);
        let out = m.mira_query(origin, &query, seed).unwrap();
        prop_assert!(out.metrics.exact, "missed peers for {:?}", query);
        prop_assert_eq!(out.results, m.expected_results(&query));
        let b = m.net().peer(origin).unwrap().depth() as u32;
        prop_assert!(out.metrics.delay <= b);
    }

    #[test]
    fn pira_exact_under_churned_networks(
        seed in 0u64..10_000,
        n in 24usize..120,
        churn in 0usize..40,
    ) {
        // Queries stay exact after interleaved joins and leaves (the cover
        // invariant, not freshness of balance, is what exactness needs).
        let mut rng = simnet::rng_from_seed(seed);
        let mut a = SingleArmada::build_with(small_cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
        for i in 0..200 {
            a.publish((i as f64) * 5.0);
        }
        for _ in 0..churn {
            let victim = a.net().random_peer(&mut rng);
            let _ = a.net_mut().leave(victim);
            a.net_mut().join(&mut rng);
        }
        a.net().check_invariants().unwrap();
        let origin = a.net().random_peer(&mut rng);
        let lo: f64 = rng.gen_range(0.0..800.0);
        let out = a.pira_query(origin, lo, lo + 150.0, seed).unwrap();
        prop_assert!(out.metrics.exact);
        prop_assert_eq!(out.results, a.expected_results(lo, lo + 150.0));
    }
}
