//! The unified range-query contract: one trait per query shape, one outcome
//! type, one error type — implemented by every scheme in the workspace.
//!
//! The Armada paper's whole argument (Table 1, Figures 5–8) is a
//! *comparison* of range-query schemes. These traits make that comparison a
//! first-class program structure: anything that can `publish` handles keyed
//! by an attribute value and answer `[lo, hi]` queries is a
//! [`RangeScheme`]; anything that indexes points and answers rectangle
//! queries is a [`MultiRangeScheme`]. Experiments, benches, and examples
//! drive all of them through trait objects, so adding a scheme to every
//! table is one `impl` plus one registry entry.

use simnet::NodeId;

/// The shared result of one range query, in the metric vocabulary the
/// paper's evaluation uses (§4.3.3) — common across all schemes.
///
/// Schemes with richer native outcomes (e.g. PIRA's [`QueryMetrics`]-backed
/// outcome or PHT's trie statistics) convert into this via their
/// `into_outcome()` and keep the native type for scheme-specific analysis.
///
/// [`QueryMetrics`]: https://docs.rs/armada
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeOutcome {
    /// Handles of records satisfying the query, ascending and deduplicated.
    pub results: Vec<u64>,
    /// Query delay: critical-path length in overlay hops under unit
    /// per-hop latency (the paper's delay metric).
    pub delay: u64,
    /// Query latency: critical-path virtual time in milliseconds under the
    /// scheme's [`NetModel`](crate::NetModel) — the time by which the last
    /// destination first learns of the query, accumulated edge by edge
    /// along the realized message paths. Under the `unit` model this is
    /// the hop metric again (`latency ≤ delay`, with equality everywhere
    /// except degenerate local RPCs some layered schemes charge a hop
    /// for); under `wan`/`cluster`/`straggler` it is where the paper's
    /// hop bounds are re-examined in wall-clock terms.
    pub latency: u64,
    /// Total protocol messages sent.
    pub messages: u64,
    /// Ground-truth destination count — peers/zones/leaves whose region
    /// intersects the query ("Destpeers").
    pub dest_peers: usize,
    /// Destinations that actually answered (`== dest_peers` fault-free).
    pub reached_peers: usize,
    /// Whether the answered set equals the ground truth exactly.
    pub exact: bool,
}

/// The cost triple every native scheme outcome reports — hop critical
/// path, [`NetModel`](crate::NetModel) critical path, and message total.
///
/// Exists so [`RangeOutcome::from_native`] is the *single* conversion
/// point from scheme-native outcomes: an adapter cannot forget (or
/// silently zero) the latency plumbing without the type signature
/// noticing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCosts {
    /// Critical-path length in overlay hops ([`RangeOutcome::delay`]).
    pub hops: u64,
    /// Critical-path virtual milliseconds ([`RangeOutcome::latency`]).
    pub latency: u64,
    /// Total protocol messages ([`RangeOutcome::messages`]).
    pub messages: u64,
}

impl RangeOutcome {
    /// The shared adapter conversion: every scheme's `into_outcome()`
    /// funnels through here, so the hop/latency/messages/exactness
    /// plumbing lives in one place and cannot drift per scheme.
    pub fn from_native(
        results: Vec<u64>,
        costs: OutcomeCosts,
        dest_peers: usize,
        reached_peers: usize,
        exact: bool,
    ) -> RangeOutcome {
        RangeOutcome {
            results,
            delay: costs.hops,
            latency: costs.latency,
            messages: costs.messages,
            dest_peers,
            reached_peers,
            exact,
        }
    }
    /// `MesgRatio = Messages / Destpeers` (§4.3.3 metric (b)).
    pub fn mesg_ratio(&self) -> f64 {
        if self.dest_peers == 0 {
            0.0
        } else {
            self.messages as f64 / self.dest_peers as f64
        }
    }

    /// `IncreRatio = (Messages − log₂N) / (Destpeers − 1)` (§4.3.3 metric
    /// (c)); returns 0 when `Destpeers ≤ 1`.
    pub fn incre_ratio(&self, n_peers: usize) -> f64 {
        if self.dest_peers <= 1 {
            return 0.0;
        }
        (self.messages as f64 - (n_peers as f64).log2()) / (self.dest_peers as f64 - 1.0)
    }

    /// Fraction of ground-truth destinations reached.
    pub fn peer_recall(&self) -> f64 {
        if self.dest_peers == 0 {
            1.0
        } else {
            self.reached_peers as f64 / self.dest_peers as f64
        }
    }
}

/// Unified error for scheme construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeError {
    /// The query origin is not a live peer.
    BadOrigin {
        /// The offending node id.
        origin: NodeId,
    },
    /// The queried range (or a per-attribute range) was empty.
    EmptyRange {
        /// Lower endpoint as supplied.
        lo: f64,
        /// Upper endpoint as supplied.
        hi: f64,
    },
    /// A point or rectangle had the wrong number of attributes.
    WrongArity {
        /// Expected attribute count.
        expected: usize,
        /// Supplied attribute count.
        got: usize,
    },
    /// No scheme registered under the requested name.
    UnknownScheme {
        /// The name looked up.
        name: String,
        /// `"single"` or `"multi"` — which registry was consulted.
        kind: &'static str,
    },
    /// No named workload in the [`WorkloadGen`](crate::WorkloadGen) catalog.
    UnknownWorkload {
        /// The name looked up.
        name: String,
    },
    /// No named plan in the [`ChurnPlan`](crate::ChurnPlan) catalog.
    UnknownChurnPlan {
        /// The name looked up.
        name: String,
    },
    /// No replica policy parses from the name (see
    /// [`ReplicaPolicy::named`](crate::ReplicaPolicy::named)).
    UnknownReplicaPolicy {
        /// The name looked up.
        name: String,
    },
    /// No network cost model in the [`NetModel`](crate::NetModel) catalog
    /// (see [`NET_MODEL_NAMES`](crate::NET_MODEL_NAMES)).
    UnknownNetModel {
        /// The name looked up.
        name: String,
    },
    /// No hostile fault plan parses from the name (see
    /// [`HOSTILE_PLAN_NAMES`](crate::HOSTILE_PLAN_NAMES) and the `plan/rN`
    /// retry-suffix grammar).
    UnknownHostilePlan {
        /// The name looked up.
        name: String,
    },
    /// A fault plan names a peer outside the scheme's id space — rejected
    /// instead of silently ignored, so a typo'd crash list cannot pass as
    /// a fault-free run.
    FaultPlanOutOfRange {
        /// The smallest offending node id.
        node: NodeId,
        /// The scheme's peer count (valid ids are `0..n`).
        n: usize,
    },
    /// The scheme does not support the requested capability (e.g. dynamics
    /// on a scheme whose substrate has no churn primitives).
    Unsupported {
        /// Registry name of the scheme.
        scheme: String,
        /// The capability asked for (`"dynamics"`, `"fault injection"`).
        feature: &'static str,
    },
    /// Scheme construction failed (wrapped native error message).
    Build(String),
    /// A query failed for a scheme-specific reason (wrapped message).
    Query(String),
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::BadOrigin { origin } => write!(f, "origin {origin} is not live"),
            SchemeError::EmptyRange { lo, hi } => write!(f, "empty range [{lo}, {hi}]"),
            SchemeError::WrongArity { expected, got } => {
                write!(f, "expected {expected} attributes, got {got}")
            }
            SchemeError::UnknownScheme { name, kind } => {
                write!(f, "no {kind}-attribute scheme registered as {name:?}")
            }
            SchemeError::UnknownWorkload { name } => {
                write!(f, "no workload named {name:?} in the catalog")
            }
            SchemeError::UnknownChurnPlan { name } => {
                write!(f, "no churn plan named {name:?} in the catalog")
            }
            SchemeError::UnknownReplicaPolicy { name } => {
                write!(
                    f,
                    "no replica policy named {name:?} (try none, successor-R, neighbor-set-R)"
                )
            }
            SchemeError::UnknownNetModel { name } => {
                write!(
                    f,
                    "no net model named {name:?} (catalog: {})",
                    simnet::NET_MODEL_NAMES.join(", ")
                )
            }
            SchemeError::UnknownHostilePlan { name } => {
                write!(
                    f,
                    "no hostile fault plan named {name:?} (catalog: {}; \
                     parameterized lossy-N / island-K; retry suffix /rN)",
                    simnet::HOSTILE_PLAN_NAMES.join(", ")
                )
            }
            SchemeError::FaultPlanOutOfRange { node, n } => {
                write!(f, "fault plan names peer {node} but the scheme has {n} peers (0..{n})")
            }
            SchemeError::Unsupported { scheme, feature } => {
                write!(f, "scheme {scheme:?} does not support {feature}")
            }
            SchemeError::Build(msg) => write!(f, "scheme build failed: {msg}"),
            SchemeError::Query(msg) => write!(f, "query failed: {msg}"),
        }
    }
}

impl std::error::Error for SchemeError {}

/// A single-attribute range-query scheme: publish `(value, handle)` records,
/// answer `[lo, hi]` queries with a [`RangeOutcome`].
///
/// Implementations exist for all seven schemes of the paper's Table 1:
/// Armada/PIRA, the sequential-walk reference, DCF-CAN (directed and naive
/// flooding), PHT (over FissionE and over Chord), Skip Graph, Squid, and
/// SCRAP (the latter two over one-dimensional builds of their native
/// multi-attribute machinery).
///
/// # Thread safety
///
/// `Send + Sync` are supertraits: queries take `&self` and must not mutate
/// scheme state (all mutation happens through `publish` before measuring),
/// so one built instance can be shared by reference across the worker
/// threads of [`ParallelDriver`](crate::ParallelDriver). Implementations
/// satisfy this for free as long as they avoid interior mutability
/// (`RefCell`, `Cell`, un-synchronized statics) — which every scheme in the
/// workspace does; per-query randomness comes in through the `seed`
/// argument instead.
pub trait RangeScheme: Send + Sync {
    /// Registry name of the scheme (e.g. `"pira"`, `"dcf-can"`).
    fn scheme_name(&self) -> &'static str;

    /// Human-readable substrate description for comparison tables.
    fn substrate(&self) -> String;

    /// Degree figure for comparison tables: measured mean where the
    /// simulation has real neighbor tables, asymptotic label otherwise.
    fn degree(&self) -> String;

    /// Number of live peers/zones.
    fn node_count(&self) -> usize;

    /// Whether the scheme family also answers multi-attribute rectangles
    /// (Table 1's "multi-attr" column).
    fn supports_rect(&self) -> bool {
        false
    }

    /// Publishes a record: `handle` becomes retrievable by range queries
    /// covering `value`.
    ///
    /// # Errors
    ///
    /// Scheme-specific; uniform schemes never fail on in-domain values.
    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError>;

    /// A uniformly random live query origin.
    fn random_origin(&self, rng: &mut rand::rngs::SmallRng) -> NodeId;

    /// Executes a range query over `[lo, hi]` from `origin`. `seed` feeds
    /// schemes with internal randomness (tie-breaking, simulation); pure
    /// schemes ignore it. Takes `&self`: queries never mutate scheme state,
    /// which is what lets [`ParallelDriver`](crate::ParallelDriver) share
    /// one instance across threads.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadOrigin`] for dead origins,
    /// [`SchemeError::EmptyRange`] for `lo > hi`, scheme-specific wraps
    /// otherwise.
    ///
    /// # Example
    ///
    /// The uniform call sequence (toy scheme hidden; every registered
    /// scheme answers the same way):
    ///
    /// ```
    /// # use dht_api::{RangeOutcome, RangeScheme, SchemeError};
    /// # struct One;
    /// # impl RangeScheme for One {
    /// #     fn scheme_name(&self) -> &'static str { "one" }
    /// #     fn substrate(&self) -> String { "local".into() }
    /// #     fn degree(&self) -> String { "0".into() }
    /// #     fn node_count(&self) -> usize { 1 }
    /// #     fn publish(&mut self, _: f64, _: u64) -> Result<(), SchemeError> { Ok(()) }
    /// #     fn random_origin(&self, _: &mut rand::rngs::SmallRng) -> usize { 0 }
    /// #     fn range_query(&self, _o: usize, lo: f64, hi: f64, _s: u64)
    /// #         -> Result<RangeOutcome, SchemeError> {
    /// #         if lo > hi { return Err(SchemeError::EmptyRange { lo, hi }); }
    /// #         Ok(RangeOutcome { results: vec![7], delay: 2, latency: 2, messages: 3,
    /// #             dest_peers: 1, reached_peers: 1, exact: true })
    /// #     }
    /// # }
    /// # let scheme = One;
    /// # let origin = 0;
    /// let outcome = scheme.range_query(origin, 10.0, 20.0, 0)?;
    /// assert!(outcome.exact);
    /// assert!(outcome.mesg_ratio() >= 1.0); // messages per useful peer
    /// assert!(matches!(
    ///     scheme.range_query(origin, 20.0, 10.0, 0), // lo > hi
    ///     Err(SchemeError::EmptyRange { .. })
    /// ));
    /// # Ok::<(), SchemeError>(())
    /// ```
    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError>;

    /// [`range_query`](Self::range_query) with a caller-owned
    /// [`QueryScratch`](simnet::QueryScratch): drivers own one scratch per
    /// worker thread and pass it to every query on that thread, so
    /// simulation-backed schemes amortize their per-query setup
    /// allocations (event queues, routing buffers) across the batch.
    ///
    /// The contract is strict observational equivalence: for identical
    /// arguments the outcome must be bit-identical to
    /// [`range_query`](Self::range_query) — scratch reuse may only affect
    /// allocation counts, never results or metrics. The default delegates
    /// to [`range_query`](Self::range_query), which is always correct;
    /// schemes with reusable state override it.
    ///
    /// # Errors
    ///
    /// As [`range_query`](Self::range_query).
    fn range_query_scratch(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        scratch: &mut simnet::QueryScratch,
    ) -> Result<RangeOutcome, SchemeError> {
        let _ = scratch;
        self.range_query(origin, lo, hi, seed)
    }

    /// Whether the scheme models per-query fault injection — i.e. whether
    /// [`range_query_with_faults`](Self::range_query_with_faults) is a
    /// real implementation rather than the refusing default. Overridden
    /// alongside it, so drivers and experiments discover support at
    /// runtime instead of hard-coding scheme lists.
    fn supports_fault_injection(&self) -> bool {
        false
    }

    /// Executes a range query under a fault plan (message drops, crashed
    /// responders, hostile loss/partition/rate-limit families). Schemes
    /// whose native engine models per-query faults (PIRA, DCF-CAN)
    /// override this; the default answers fault-free plans via
    /// [`range_query`](Self::range_query) and refuses real fault injection
    /// honestly.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Unsupported`] from the default implementation when
    /// the plan actually injects faults; otherwise as
    /// [`range_query`](Self::range_query).
    fn range_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &simnet::FaultPlan,
    ) -> Result<RangeOutcome, SchemeError> {
        if faults.is_fault_free() {
            return self.range_query(origin, lo, hi, seed);
        }
        Err(SchemeError::Unsupported {
            scheme: self.scheme_name().to_string(),
            feature: "fault injection",
        })
    }

    /// Whether [`trace_query`](Self::trace_query) is a real implementation
    /// rather than the refusing default. All registry schemes support it —
    /// simulation-backed engines (PIRA, DCF-CAN) with real event streams,
    /// analytic schemes with honestly-labeled modeled decompositions.
    fn supports_tracing(&self) -> bool {
        false
    }

    /// Executes a range query *and* returns its observability record: the
    /// structured event stream plus the causal cost tree, whose
    /// [`total`](crate::CostNode::total) exactly reproduces the outcome's
    /// `delay`/`latency`/`messages`. The outcome is identical to what
    /// [`range_query`](Self::range_query) returns for the same arguments —
    /// tracing observes, never perturbs.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Unsupported`] from the default implementation;
    /// otherwise as [`range_query`](Self::range_query).
    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, crate::QueryTrace), SchemeError> {
        let _ = (origin, lo, hi, seed);
        Err(SchemeError::Unsupported { scheme: self.scheme_name().to_string(), feature: "tracing" })
    }

    /// [`trace_query`](Self::trace_query) under a fault plan. The default
    /// answers fault-free plans via `trace_query` and refuses real fault
    /// injection; simulation-backed schemes override it so lost edges show
    /// up as [`FaultVerdict`](simnet::TraceEvent::FaultVerdict) events.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Unsupported`] when the plan injects faults and the
    /// scheme has no traced fault path; otherwise as
    /// [`trace_query`](Self::trace_query).
    fn trace_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &simnet::FaultPlan,
    ) -> Result<(RangeOutcome, crate::QueryTrace), SchemeError> {
        if faults.is_fault_free() {
            return self.trace_query(origin, lo, hi, seed);
        }
        Err(SchemeError::Unsupported {
            scheme: self.scheme_name().to_string(),
            feature: "traced fault injection",
        })
    }

    /// Cumulative retry attempts this scheme has spent beyond each query's
    /// first try — non-zero only on the [`Hostile`](crate::Hostile)
    /// wrapper, whose drivers read the delta around a batch to account
    /// retry traffic in the metrics registry.
    fn retry_attempts(&self) -> u64 {
        0
    }

    /// The scheme's dynamics capability: `Some` when the substrate has
    /// churn primitives (join/leave/crash/stabilize), `None` otherwise.
    /// Drivers and experiments discover support at runtime through this
    /// hook — no hard-coded scheme lists.
    fn as_dynamic(&mut self) -> Option<&mut dyn crate::DynamicScheme> {
        None
    }

    /// The scheme's replica-routing capability: `Some` when the scheme can
    /// tell the replication layer where copies belong and what a point
    /// fetch costs ([`ReplicaRouting`](crate::ReplicaRouting)), `None`
    /// otherwise. The [`Replicated`](crate::Replicated) wrapper refuses
    /// construction over schemes without it.
    fn as_replica_routing(&self) -> Option<&dyn crate::ReplicaRouting> {
        None
    }

    /// The scheme's replication control surface: `Some` only on the
    /// [`Replicated`](crate::Replicated) wrapper. Drivers use this to run
    /// [`re_replicate`](crate::ReplicationControl::re_replicate) after
    /// membership events and report the repair traffic per epoch.
    fn as_replicated(&mut self) -> Option<&mut dyn crate::ReplicationControl> {
        None
    }

    /// The scheme's hostile-network control surface: `Some` only on the
    /// [`Hostile`](crate::Hostile) wrapper. Epoch drivers use it to advance
    /// the wrapped fault plan's partition epoch between query epochs —
    /// serially, between the sharded batches, so the epoch a query sees is
    /// a pure function of its global index.
    fn as_hostile(&mut self) -> Option<&mut dyn crate::HostileControl> {
        None
    }
}

/// A multi-attribute range-query scheme: publish points, answer
/// hyper-rectangle queries.
///
/// Implemented by Armada/MIRA, Squid, and SCRAP.
///
/// # Thread safety
///
/// `Send + Sync` are supertraits under the same contract as
/// [`RangeScheme`]: `rect_query` takes `&self`, so built instances shard
/// across [`ParallelDriver`](crate::ParallelDriver) threads by reference.
pub trait MultiRangeScheme: Send + Sync {
    /// Registry name of the scheme (e.g. `"mira"`, `"squid"`).
    fn scheme_name(&self) -> &'static str;

    /// Human-readable substrate description for comparison tables.
    fn substrate(&self) -> String;

    /// Degree figure for comparison tables.
    fn degree(&self) -> String;

    /// Number of live peers.
    fn node_count(&self) -> usize;

    /// Number of attributes the scheme was built with.
    fn dims(&self) -> usize;

    /// Publishes a record at an attribute point.
    ///
    /// # Errors
    ///
    /// [`SchemeError::WrongArity`] when `point.len() != dims()`.
    fn publish_point(&mut self, point: &[f64], handle: u64) -> Result<(), SchemeError>;

    /// A uniformly random live query origin.
    fn random_origin(&self, rng: &mut rand::rngs::SmallRng) -> NodeId;

    /// Executes a rectangle query (one `(lo, hi)` per attribute).
    ///
    /// # Errors
    ///
    /// [`SchemeError::WrongArity`] on arity mismatch,
    /// [`SchemeError::EmptyRange`] for an empty per-attribute range,
    /// scheme-specific wraps otherwise.
    fn rect_query(
        &self,
        origin: NodeId,
        rect: &[(f64, f64)],
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError>;

    /// [`rect_query`](Self::rect_query) with a caller-owned
    /// [`QueryScratch`](simnet::QueryScratch), under the same strict
    /// observational-equivalence contract as
    /// [`RangeScheme::range_query_scratch`]: outcomes must be bit-identical
    /// to [`rect_query`](Self::rect_query); only allocation counts may
    /// differ. The default delegates to [`rect_query`](Self::rect_query).
    ///
    /// # Errors
    ///
    /// As [`rect_query`](Self::rect_query).
    fn rect_query_scratch(
        &self,
        origin: NodeId,
        rect: &[(f64, f64)],
        seed: u64,
        scratch: &mut simnet::QueryScratch,
    ) -> Result<RangeOutcome, SchemeError> {
        let _ = scratch;
        self.rect_query(origin, rect, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(messages: u64, dest: usize, reached: usize) -> RangeOutcome {
        RangeOutcome::from_native(
            vec![],
            OutcomeCosts { hops: 3, latency: 3, messages },
            dest,
            reached,
            dest == reached,
        )
    }

    #[test]
    fn ratios_match_paper_definitions() {
        assert_eq!(outcome(20, 10, 10).mesg_ratio(), 2.0);
        assert_eq!(outcome(20, 0, 0).mesg_ratio(), 0.0);
        // (20 - log2(1024)) / (6 - 1) = 2.
        assert_eq!(outcome(20, 6, 6).incre_ratio(1024), 2.0);
        assert_eq!(outcome(20, 1, 1).incre_ratio(1024), 0.0);
        assert_eq!(outcome(5, 4, 3).peer_recall(), 0.75);
        assert_eq!(outcome(5, 0, 0).peer_recall(), 1.0);
    }

    #[test]
    fn errors_render_usefully() {
        let e = SchemeError::UnknownScheme { name: "nope".into(), kind: "single" };
        assert!(e.to_string().contains("nope"));
        assert!(SchemeError::EmptyRange { lo: 5.0, hi: 1.0 }.to_string().contains("[5, 1]"));
        assert!(SchemeError::WrongArity { expected: 2, got: 3 }.to_string().contains("2"));
    }
}
