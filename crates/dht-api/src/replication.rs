//! The replication layer: deterministic replica placement, quorum-style
//! range reads, and post-churn repair — composable over any scheme.
//!
//! The paper's evaluation treats recall loss under faults as a given (§4.3.3
//! measures *peer recall* but never tries to win it back), and the churn
//! experiments confirm it: every dynamic scheme's recall collapses between
//! crash events and `stabilize()`. Real DHT deployments close that gap with
//! record replication — garage's sharded replica sets over the ring and
//! maidsafe's close-group replication near the target address are the two
//! classic disciplines — and this module makes that a first-class,
//! scheme-generic capability:
//!
//! * [`ReplicaPolicy`] — a named, deterministic placement policy: `none`,
//!   `successor-r` (consistent-hash ring walk over the live peer set, the
//!   garage/Dynamo discipline) or `neighbor-set-r` (the substrate's close
//!   group around the primary owner, the maidsafe discipline).
//! * [`ReplicaRouting`] — what a scheme exposes so the layer can place and
//!   read replicas: deterministic owner selection and honest point-fetch
//!   cost accounting. Schemes opt in through
//!   [`RangeScheme::as_replica_routing`].
//! * [`Replicated`] — the wrapper: composes over any boxed [`RangeScheme`],
//!   publishes each record to `r` deterministically chosen owners, answers
//!   range queries from *any live replica* when the primary path comes back
//!   short (extra messages and the second-phase delay are counted in the
//!   [`RangeOutcome`]), and re-replicates after membership events.
//! * [`ReplicationControl`] / [`ReplicaRepair`] — the control surface
//!   drivers use ([`RangeScheme::as_replicated`]) to trigger
//!   [`re_replicate`](ReplicationControl::re_replicate) after churn and
//!   report the repair traffic as a per-epoch series.
//!
//! # Determinism and monotonicity
//!
//! Placement is a pure function of `(policy, record value, live peer set)`;
//! repair iterates records in publish order; nothing draws from an RNG. Two
//! consequences the workspace tests pin: epoch-driven reports stay
//! **bitwise identical for any thread count**, and under `successor-r`
//! placement the owner list for factor `r` is a *prefix* of the list for
//! `r + 1`, so the set of records recoverable mid-churn grows monotonically
//! with the replication factor — the recall-vs-replication trade-off the
//! `replication_sweep` experiment measures.
//!
//! # What repair may assume
//!
//! Like the schemes' own `repair_records` sweeps, the wrapper keeps the
//! published record table as durable ground truth, and repair is modeled
//! as **loss-free re-publication from that table**: `re_replicate` places
//! copies at the freshly-computed owners whether or not a live copy
//! survived the epoch's crashes (the same assumption every substrate's
//! `stabilize` repair already makes — a record whose primary *and* all
//! replicas died in one event batch still comes back at the next repair
//! pass). What replication factors trade off is therefore the *window*,
//! not permanent loss: copies held by crashed or departed peers are gone
//! until repair runs, and queries inside that window — exactly what the
//! recall experiments measure — only recover records that still have a
//! live holder.

use crate::dynamics::DynamicScheme;
use crate::scheme::{RangeOutcome, RangeScheme, SchemeError};
use rand::rngs::SmallRng;
use simnet::NodeId;
use std::collections::BTreeSet;

/// Salt separating replica-fetch drop draws from every other seeded
/// stream (workload, origin, churn).
const FETCH_SALT: u64 = 0xfe7c_fe7c_fe7c_fe7c;

/// Replica placement disciplines a [`ReplicaPolicy`] can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaKind {
    /// No replication: the primary copy is the only copy.
    None,
    /// Consistent-hash ring walk: the record's key is hashed to a point on
    /// a ring of live-peer positions and the `r` peers clockwise from it
    /// hold the copies (garage / Dynamo style).
    Successor,
    /// The substrate's close group: the primary owner plus its `r − 1`
    /// nearest peers in the overlay's own distance metric (maidsafe style).
    NeighborSet,
}

/// A named, deterministic replica placement policy: the kind plus the
/// replication factor `r` (total copies, primary included).
///
/// # Example
///
/// ```
/// use dht_api::ReplicaPolicy;
///
/// let p = ReplicaPolicy::named("successor-3").unwrap();
/// assert_eq!(p.factor(), 3);
/// assert_eq!(p.name(), "successor-3");
/// // Registry-suffix shorthand parses to the same policies.
/// assert_eq!(ReplicaPolicy::named("r3").unwrap(), p);
/// assert_eq!(
///     ReplicaPolicy::named("ns2").unwrap(),
///     ReplicaPolicy::named("neighbor-set-2").unwrap()
/// );
/// assert!(ReplicaPolicy::named("none").unwrap().is_none());
/// assert!(ReplicaPolicy::named("quorum-9").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPolicy {
    kind: ReplicaKind,
    factor: usize,
}

impl Default for ReplicaPolicy {
    fn default() -> Self {
        ReplicaPolicy::none()
    }
}

impl ReplicaPolicy {
    /// The no-replication policy (factor 1).
    pub fn none() -> Self {
        ReplicaPolicy { kind: ReplicaKind::None, factor: 1 }
    }

    /// Successor placement with `r` total copies (clamped to at least 1).
    pub fn successor(r: usize) -> Self {
        ReplicaPolicy { kind: ReplicaKind::Successor, factor: r.max(1) }
    }

    /// Close-group placement with `r` total copies (clamped to at least 1).
    pub fn neighbor_set(r: usize) -> Self {
        ReplicaPolicy { kind: ReplicaKind::NeighborSet, factor: r.max(1) }
    }

    /// Parses a policy name: `none`, `successor-R`, `neighbor-set-R`, or
    /// the registry-suffix shorthands `rR` / `nsR` (as in `"pira+r3"`).
    ///
    /// # Errors
    ///
    /// [`SchemeError::UnknownReplicaPolicy`] for anything else.
    pub fn named(name: &str) -> Result<Self, SchemeError> {
        let unknown = || SchemeError::UnknownReplicaPolicy { name: name.to_string() };
        if name == "none" {
            return Ok(ReplicaPolicy::none());
        }
        let (kind, digits) = if let Some(d) = name.strip_prefix("successor-") {
            (ReplicaKind::Successor, d)
        } else if let Some(d) = name.strip_prefix("neighbor-set-") {
            (ReplicaKind::NeighborSet, d)
        } else if let Some(d) = name.strip_prefix("ns") {
            (ReplicaKind::NeighborSet, d)
        } else if let Some(d) = name.strip_prefix('r') {
            (ReplicaKind::Successor, d)
        } else {
            return Err(unknown());
        };
        let factor: usize = digits.parse().map_err(|_| unknown())?;
        if factor == 0 {
            return Err(unknown());
        }
        Ok(ReplicaPolicy { kind, factor })
    }

    /// The canonical policy name (`"none"`, `"successor-3"`, …).
    pub fn name(&self) -> String {
        match self.kind {
            ReplicaKind::None => "none".to_string(),
            ReplicaKind::Successor => format!("successor-{}", self.factor),
            ReplicaKind::NeighborSet => format!("neighbor-set-{}", self.factor),
        }
    }

    /// The placement discipline.
    pub fn kind(&self) -> ReplicaKind {
        self.kind
    }

    /// Total copies per record, primary included (always ≥ 1).
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Whether the policy places no extra copies (kind `none`, or any kind
    /// at factor 1).
    pub fn is_none(&self) -> bool {
        self.kind == ReplicaKind::None || self.factor <= 1
    }
}

/// A peer's position on the consistent-hash ring used by
/// [`ring_owners`] — a pure function of the node id, so positions survive
/// churn (only a changed peer's own arc moves, the property consistent
/// hashing exists for).
fn ring_position(node: NodeId) -> u64 {
    crate::fnv1a(&(node as u64).to_le_bytes())
}

/// Successor-style owner selection over a live peer set: hash `key` to a
/// ring point, take the first `r` live peers clockwise from it.
///
/// The returned list for `r` is always a **prefix** of the list for
/// `r + 1` — the property that makes recall monotone in the replication
/// factor under identical churn histories.
pub fn ring_owners(live: &[NodeId], key: u64, r: usize) -> Vec<NodeId> {
    if live.is_empty() || r == 0 {
        return Vec::new();
    }
    let mut ring: Vec<(u64, NodeId)> = live.iter().map(|&n| (ring_position(n), n)).collect();
    ring.sort_unstable();
    let point = crate::fnv1a(&key.to_le_bytes());
    let start = ring.partition_point(|&(p, _)| p < point);
    (0..r.min(ring.len())).map(|i| ring[(start + i) % ring.len()].1).collect()
}

/// Hashes a record's attribute value into the opaque key space replica
/// placement works over (bit-exact, so `0.1` and `0.1` always co-locate).
pub fn value_key(value: f64) -> u64 {
    crate::fnv1a(&value.to_bits().to_le_bytes())
}

/// What a scheme exposes so the replication layer can place and read
/// replicas — the live membership, the substrate's close group, and honest
/// fetch costs.
///
/// Schemes opt in through [`RangeScheme::as_replica_routing`]; the
/// [`Replicated`] wrapper refuses construction over schemes that do not.
pub trait ReplicaRouting {
    /// All live peers, in the same deterministic order as
    /// [`DynamicScheme::live_peers`].
    fn live_peers(&self) -> Vec<NodeId>;

    /// The substrate's close group for the record keyed by `value`: the
    /// primary owner plus its `r − 1` nearest live peers in the overlay's
    /// own distance metric (e.g.
    /// [`Dht::replica_owners`](crate::Dht::replica_owners) one layer
    /// down). Distinct, primary first.
    fn close_group(&self, value: f64, r: usize) -> Vec<NodeId>;

    /// The cost of one point fetch from `origin` at `holder`: the overlay
    /// routing path to the holder plus one direct response hop, in hops,
    /// [`NetModel`](crate::NetModel) virtual milliseconds, and messages.
    /// Implementations must price this with the same honesty as their
    /// query paths (real routed edges where the substrate can route to a
    /// node, the `O(log N)` lookup model otherwise — with latency
    /// accumulated over the same edges the hop figure counts).
    fn fetch_cost(&self, origin: NodeId, holder: NodeId) -> FetchCost;

    /// The `policy.factor()` distinct live owners for the record keyed by
    /// `value`, primary first — a pure function of `(value, policy, live
    /// membership)`. [`ReplicaKind::Successor`] walks the consistent-hash
    /// ring over [`live_peers`](Self::live_peers) ([`ring_owners`], whose
    /// prefix property makes recall monotone in the factor);
    /// [`ReplicaKind::NeighborSet`] delegates to
    /// [`close_group`](Self::close_group).
    fn replica_owners(&self, value: f64, policy: &ReplicaPolicy) -> Vec<NodeId> {
        match policy.kind() {
            ReplicaKind::None => Vec::new(),
            ReplicaKind::Successor => {
                ring_owners(&self.live_peers(), value_key(value), policy.factor())
            }
            ReplicaKind::NeighborSet => self.close_group(value, policy.factor()),
        }
    }
}

/// The cost of one replica point fetch (or copy transfer): the overlay
/// routing path to the holder plus one direct response hop, in all three
/// cost currencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchCost {
    /// Overlay hops on the critical path (request routing + response).
    pub hops: u64,
    /// Virtual milliseconds under the scheme's
    /// [`NetModel`](crate::NetModel), accumulated over the same edges.
    pub latency: u64,
    /// Protocol messages sent.
    pub messages: u64,
}

/// What one repair pass did: copies placed, stale copies dropped, and the
/// messages the traffic cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaRepair {
    /// Replica copies newly placed on live owners.
    pub placed: usize,
    /// Stale copies retired from live peers that are no longer owners.
    pub dropped: usize,
    /// Protocol messages the pass sent (copy transfers + retirements).
    pub messages: u64,
    /// Critical-path virtual milliseconds of the pass: transfers run in
    /// parallel, so this is the slowest single copy transfer under the
    /// scheme's [`NetModel`](crate::NetModel).
    pub latency: u64,
}

impl ReplicaRepair {
    /// Total repair operations (placements + retirements).
    pub fn ops(&self) -> usize {
        self.placed + self.dropped
    }
}

/// The control surface of a replicated scheme, discovered at runtime via
/// [`RangeScheme::as_replicated`] — how
/// [`ParallelDriver::run_epochs`](crate::ParallelDriver::run_epochs)
/// triggers repair after membership events and reports its traffic.
pub trait ReplicationControl {
    /// The active placement policy.
    fn policy(&self) -> &ReplicaPolicy;

    /// Restores the replica invariant: every record's copies sit at its
    /// currently-computed owners. Returns what the pass did; a second call
    /// with no intervening membership change returns all zeros
    /// (idempotency, pinned by `tests/repair_idempotency.rs`).
    fn re_replicate(&mut self) -> ReplicaRepair;

    /// Replica copies currently placed (primaries not counted).
    fn replica_count(&self) -> usize;

    /// Human-readable label, e.g. `"pira+successor-3"`.
    fn label(&self) -> String;
}

/// A replicated scheme: any boxed [`RangeScheme`] wrapped with
/// policy-driven replica placement, replica-served range reads, and
/// post-churn repair.
///
/// Build one directly, or through the registry with a
/// [`BuildParams::replication`](crate::BuildParams) policy or a
/// `"pira+r3"`-style name suffix.
///
/// # Outcome semantics
///
/// The wrapper reinterprets completeness at *data* granularity: when the
/// primary path misses records that a live replica still holds, the
/// wrapper fetches them (one point fetch per record, priced by
/// [`ReplicaRouting::fetch_cost`]), adds the fetch messages to
/// [`RangeOutcome::messages`], extends [`RangeOutcome::delay`] by the
/// slowest fetch (the fetch phase starts after the primary phase
/// completes), and scales [`RangeOutcome::reached_peers`] by the recovered
/// fraction of the missing records — full recovery restores
/// `exact == true` and `peer_recall == 1.0`.
pub struct Replicated {
    inner: Box<dyn RangeScheme>,
    policy: ReplicaPolicy,
    /// Every record ever published, in publish order — the ground truth
    /// queries are checked against and repair re-replicates from.
    published: Vec<(f64, u64)>,
    /// `holders[i]` = peers currently holding a replica of record `i`
    /// (the primary copy lives inside the inner scheme and is not listed).
    holders: Vec<Vec<NodeId>>,
}

impl Replicated {
    /// Wraps `inner` under `policy`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Unsupported`] when the inner scheme does not expose
    /// [`ReplicaRouting`] (placement would be impossible).
    pub fn new(inner: Box<dyn RangeScheme>, policy: ReplicaPolicy) -> Result<Self, SchemeError> {
        if inner.as_replica_routing().is_none() {
            return Err(SchemeError::Unsupported {
                scheme: inner.scheme_name().to_string(),
                feature: "replication",
            });
        }
        Ok(Replicated { inner, policy, published: Vec::new(), holders: Vec::new() })
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &dyn RangeScheme {
        self.inner.as_ref()
    }

    fn routing(&self) -> &dyn ReplicaRouting {
        self.inner.as_replica_routing().expect("checked at construction")
    }

    /// Ground-truth handles for `[lo, hi]`, ascending and deduplicated —
    /// the same contract as [`RangeOutcome::results`].
    fn expected(&self, lo: f64, hi: f64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .published
            .iter()
            .filter(|&&(value, _)| value >= lo && value <= hi)
            .map(|&(_, h)| h)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The second query phase: fetch records the primary path missed from
    /// any live replica, with honest cost accounting. Under fault
    /// injection (`faults` present) the fetches obey the same plan the
    /// primary phase did: holders the plan has crashed cannot serve, and
    /// each fetch is dropped with the plan's message-loss probability,
    /// drawn from an RNG derived from the query seed so the outcome stays
    /// deterministic. Dropped fetches still cost their messages and delay.
    ///
    /// When `fetch_log` is present every attempted fetch is recorded as
    /// `(holder, cost, recovered)` — the trace plane's raw material; the
    /// query outcome is identical either way.
    fn recover(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        mut out: RangeOutcome,
        faults: Option<(&simnet::FaultPlan, u64)>,
        mut fetch_log: Option<&mut Vec<(NodeId, FetchCost, bool)>>,
    ) -> RangeOutcome {
        use rand::Rng as _;
        if self.policy.is_none() {
            return out;
        }
        let expected = self.expected(lo, hi);
        if expected == out.results {
            return out;
        }
        let have: BTreeSet<u64> = out.results.iter().copied().collect();
        let mut missing: BTreeSet<u64> =
            expected.iter().copied().filter(|h| !have.contains(h)).collect();
        let missing_n = missing.len();
        let routing = self.routing();
        let mut fault_state =
            faults.map(|(plan, seed)| (plan, simnet::rng_from_seed(seed ^ FETCH_SALT)));
        let mut fetched: Vec<u64> = Vec::new();
        let mut fetch_delay = 0u64;
        let mut fetch_latency = 0u64;
        for (idx, &(value, handle)) in self.published.iter().enumerate() {
            if value < lo || value > hi || !missing.contains(&handle) {
                continue;
            }
            let holder = match &fault_state {
                None => self.holders[idx].first().copied(),
                Some((plan, _)) => self.holders[idx].iter().copied().find(|&h| !plan.is_crashed(h)),
            };
            let Some(holder) = holder else { continue };
            let cost = routing.fetch_cost(origin, holder);
            fetch_delay = fetch_delay.max(cost.hops);
            fetch_latency = fetch_latency.max(cost.latency);
            out.messages += cost.messages;
            let mut landed = true;
            if let Some((plan, rng)) = &mut fault_state {
                if plan.drop_prob() > 0.0 && rng.gen::<f64>() < plan.drop_prob() {
                    landed = false; // paid for, lost in transit
                }
            }
            if let Some(log) = fetch_log.as_deref_mut() {
                log.push((holder, cost, landed));
            }
            if !landed {
                continue;
            }
            fetched.push(handle);
            missing.remove(&handle);
        }
        // Fetches run in parallel, but only after the primary phase came
        // back short — a strictly two-phase read (dropped fetches extend
        // the phase too; the origin waited for them). Hop and virtual-ms
        // critical paths extend by the slowest fetch in their own currency.
        out.delay += fetch_delay;
        out.latency += fetch_latency;
        if fetched.is_empty() {
            return out;
        }
        let recovered = fetched.len();
        out.results.extend(fetched);
        out.results.sort_unstable();
        out.results.dedup();
        out.exact = out.results == expected;
        if out.exact {
            out.reached_peers = out.dest_peers;
        } else {
            // Scale reached by the recovered fraction of the missing
            // records, flooring so a partially-recovered query can never
            // report the full-recall figure exact recovery earns.
            let gap = out.dest_peers.saturating_sub(out.reached_peers);
            let gain = gap * recovered / missing_n;
            out.reached_peers = (out.reached_peers + gain)
                .min(out.dest_peers.saturating_sub(1))
                .max(out.reached_peers);
        }
        out
    }

    /// Drops every copy held by `node` (it crashed or departed).
    fn evict(&mut self, node: NodeId) {
        for hs in &mut self.holders {
            hs.retain(|&h| h != node);
        }
    }

    fn dynamic_inner(&mut self) -> Result<&mut dyn DynamicScheme, SchemeError> {
        let name = self.inner.scheme_name().to_string();
        self.inner
            .as_dynamic()
            .ok_or(SchemeError::Unsupported { scheme: name, feature: "dynamics" })
    }
}

/// Splices a recorded fetch phase into a query trace: one
/// [`ReplicaFetch`](simnet::TraceEvent::ReplicaFetch) event per attempted
/// fetch (time-based after the primary phase — fetches run in parallel, so
/// each lands at its own round-trip latency) and one cost node carrying
/// exactly the deltas [`Replicated::recover`] charged: the slowest fetch
/// in hops and virtual ms, the summed fetch messages. Keeps the explain
/// invariant `root.total() == (delay, latency, messages)` through the
/// replication layer.
fn splice_fetch_phase(
    trace: &mut crate::QueryTrace,
    origin: NodeId,
    phase_start: u64,
    log: &[(NodeId, FetchCost, bool)],
) {
    use crate::CostNode;
    if log.is_empty() {
        return;
    }
    // Emit in completion order so the merged stream stays (time, id)-sorted;
    // the stable sort keeps equal-latency fetches in publish order.
    let mut order: Vec<usize> = (0..log.len()).collect();
    order.sort_by_key(|&i| log[i].1.latency);
    let mut sink = simnet::TraceSink::new();
    for &i in &order {
        let (holder, cost, recovered) = log[i];
        sink.emit(
            cost.latency,
            simnet::TraceEvent::ReplicaFetch {
                origin,
                holder,
                hops: cost.hops,
                latency_ms: cost.latency,
                messages: cost.messages,
                recovered,
            },
        );
    }
    trace.append_events(sink.into_records(), phase_start);

    let delay: u64 = log.iter().map(|e| e.1.hops).max().unwrap_or(0);
    let latency: u64 = log.iter().map(|e| e.1.latency).max().unwrap_or(0);
    let messages: u64 = log.iter().map(|e| e.1.messages).sum();
    let recovered = log.iter().filter(|e| e.2).count();
    let mut phase = CostNode::leaf(
        format!(
            "replica fetch phase: {} fetch{}, {recovered} recovered (slowest +{latency} ms)",
            log.len(),
            if log.len() == 1 { "" } else { "es" },
        ),
        delay,
        latency,
        messages,
    );
    for &(holder, cost, landed) in log {
        let lost = if landed { "" } else { " — lost in transit" };
        phase.children.push(CostNode::leaf(
            format!(
                "fetch from peer {holder}: {} hops, {} ms, {} msg{lost}",
                cost.hops, cost.latency, cost.messages
            ),
            0,
            0,
            0,
        ));
    }
    trace.root.children.push(phase);
}

impl std::fmt::Debug for Replicated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicated")
            .field("scheme", &self.inner.scheme_name())
            .field("policy", &self.policy.name())
            .field("records", &self.published.len())
            .field("replicas", &self.replica_count())
            .finish()
    }
}

impl RangeScheme for Replicated {
    fn scheme_name(&self) -> &'static str {
        self.inner.scheme_name()
    }

    fn substrate(&self) -> String {
        format!("{} + {}", self.inner.substrate(), self.policy.name())
    }

    fn degree(&self) -> String {
        self.inner.degree()
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn supports_rect(&self) -> bool {
        self.inner.supports_rect()
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        let owners = if self.policy.is_none() {
            Vec::new()
        } else {
            self.routing().replica_owners(value, &self.policy)
        };
        self.inner.publish(value, handle)?;
        self.published.push((value, handle));
        // The primary copy (owners[0]) lives inside the inner scheme.
        self.holders.push(owners.into_iter().skip(1).collect());
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.inner.random_origin(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        let out = self.inner.range_query(origin, lo, hi, seed)?;
        Ok(self.recover(origin, lo, hi, out, None, None))
    }

    fn supports_fault_injection(&self) -> bool {
        self.inner.supports_fault_injection()
    }

    fn range_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &simnet::FaultPlan,
    ) -> Result<RangeOutcome, SchemeError> {
        let out = self.inner.range_query_with_faults(origin, lo, hi, seed, faults)?;
        Ok(self.recover(origin, lo, hi, out, Some((faults, seed)), None))
    }

    fn supports_tracing(&self) -> bool {
        self.inner.supports_tracing()
    }

    fn retry_attempts(&self) -> u64 {
        self.inner.retry_attempts()
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, crate::QueryTrace), SchemeError> {
        let (out, mut trace) = self.inner.trace_query(origin, lo, hi, seed)?;
        let phase_start = out.latency;
        let mut log = Vec::new();
        let out = self.recover(origin, lo, hi, out, None, Some(&mut log));
        splice_fetch_phase(&mut trace, origin, phase_start, &log);
        Ok((out, trace))
    }

    fn trace_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &simnet::FaultPlan,
    ) -> Result<(RangeOutcome, crate::QueryTrace), SchemeError> {
        let (out, mut trace) = self.inner.trace_query_with_faults(origin, lo, hi, seed, faults)?;
        let phase_start = out.latency;
        let mut log = Vec::new();
        let out = self.recover(origin, lo, hi, out, Some((faults, seed)), Some(&mut log));
        splice_fetch_phase(&mut trace, origin, phase_start, &log);
        Ok((out, trace))
    }

    fn as_dynamic(&mut self) -> Option<&mut dyn DynamicScheme> {
        if self.inner.as_dynamic().is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn as_replicated(&mut self) -> Option<&mut dyn ReplicationControl> {
        Some(self)
    }
}

impl DynamicScheme for Replicated {
    fn join(&mut self, rng: &mut SmallRng) -> Result<NodeId, SchemeError> {
        self.dynamic_inner()?.join(rng)
    }

    fn leave(&mut self, node: NodeId) -> Result<(), SchemeError> {
        self.dynamic_inner()?.leave(node)?;
        self.evict(node);
        Ok(())
    }

    fn crash(&mut self, node: NodeId) -> Result<(), SchemeError> {
        self.dynamic_inner()?.crash(node)?;
        self.evict(node);
        Ok(())
    }

    fn stabilize(&mut self) -> usize {
        let inner_ops = self.dynamic_inner().map_or(0, |d| d.stabilize());
        inner_ops + self.re_replicate().ops()
    }

    fn live_peers(&self) -> Vec<NodeId> {
        // The dynamics hook needs `&mut self`; the routing hook exposes the
        // same deterministic membership list through `&self`.
        self.routing().live_peers()
    }
}

impl ReplicationControl for Replicated {
    fn policy(&self) -> &ReplicaPolicy {
        &self.policy
    }

    fn re_replicate(&mut self) -> ReplicaRepair {
        let mut repair = ReplicaRepair::default();
        if self.policy.is_none() {
            return repair;
        }
        for idx in 0..self.published.len() {
            let (value, _) = self.published[idx];
            let owners = self
                .inner
                .as_replica_routing()
                .expect("checked")
                .replica_owners(value, &self.policy);
            let desired: Vec<NodeId> = owners.iter().skip(1).copied().collect();
            let primary = owners.first().copied();
            let current = &mut self.holders[idx];
            let before = current.len();
            current.retain(|h| desired.contains(h));
            let retired = before - current.len();
            repair.dropped += retired;
            repair.messages += retired as u64; // one retirement message each
            for &owner in &desired {
                if !current.contains(&owner) {
                    // Copy transfer from the primary owner's side.
                    let cost = self
                        .inner
                        .as_replica_routing()
                        .expect("checked")
                        .fetch_cost(primary.unwrap_or(owner), owner);
                    repair.messages += cost.messages;
                    // Transfers run in parallel: the pass's virtual-time
                    // critical path is its slowest single transfer.
                    repair.latency = repair.latency.max(cost.latency);
                    current.push(owner);
                    repair.placed += 1;
                }
            }
        }
        repair
    }

    fn replica_count(&self) -> usize {
        self.holders.iter().map(Vec::len).sum()
    }

    fn label(&self) -> String {
        format!("{}+{}", self.inner.scheme_name(), self.policy.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sharded scheme: each record lives at one owner chosen by
    /// consistent hashing; crashed owners lose their records until
    /// `stabilize` re-homes them. Faithful enough to exercise every
    /// wrapper path without a real substrate.
    struct ShardScan {
        alive: Vec<bool>,
        /// `(value, handle, current owner)`; dead owner ⇒ record lost.
        records: Vec<(f64, u64, NodeId)>,
    }

    impl ShardScan {
        fn new(n: usize) -> Self {
            ShardScan { alive: vec![true; n], records: Vec::new() }
        }

        fn live(&self) -> Vec<NodeId> {
            (0..self.alive.len()).filter(|&i| self.alive[i]).collect()
        }
    }

    impl RangeScheme for ShardScan {
        fn scheme_name(&self) -> &'static str {
            "shard-scan"
        }
        fn substrate(&self) -> String {
            "toy".into()
        }
        fn degree(&self) -> String {
            "0".into()
        }
        fn node_count(&self) -> usize {
            self.live().len()
        }
        fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
            let owner = ring_owners(&self.live(), value_key(value), 1)[0];
            self.records.push((value, handle, owner));
            Ok(())
        }
        fn random_origin(&self, _rng: &mut SmallRng) -> NodeId {
            self.live()[0]
        }
        fn range_query(
            &self,
            _origin: NodeId,
            lo: f64,
            hi: f64,
            _seed: u64,
        ) -> Result<RangeOutcome, SchemeError> {
            let in_range: Vec<&(f64, u64, NodeId)> =
                self.records.iter().filter(|&&(v, _, _)| v >= lo && v <= hi).collect();
            let dest: BTreeSet<NodeId> = in_range.iter().map(|r| r.2).collect();
            let reached: BTreeSet<NodeId> =
                dest.iter().copied().filter(|&o| self.alive[o]).collect();
            let mut results: Vec<u64> =
                in_range.iter().filter(|r| self.alive[r.2]).map(|r| r.1).collect();
            results.sort_unstable();
            results.dedup();
            Ok(RangeOutcome {
                results,
                delay: 2,
                latency: 2,
                messages: dest.len() as u64,
                dest_peers: dest.len(),
                reached_peers: reached.len(),
                exact: dest.len() == reached.len(),
            })
        }
        fn as_dynamic(&mut self) -> Option<&mut dyn DynamicScheme> {
            Some(self)
        }
        fn as_replica_routing(&self) -> Option<&dyn ReplicaRouting> {
            Some(self)
        }
        fn supports_fault_injection(&self) -> bool {
            true
        }
        fn range_query_with_faults(
            &self,
            origin: NodeId,
            lo: f64,
            hi: f64,
            seed: u64,
            faults: &simnet::FaultPlan,
        ) -> Result<RangeOutcome, SchemeError> {
            // Owners crashed by the plan cannot answer this query.
            let mut out = self.range_query(origin, lo, hi, seed)?;
            let lost: Vec<u64> = self
                .records
                .iter()
                .filter(|&&(v, _, owner)| v >= lo && v <= hi && faults.is_crashed(owner))
                .map(|&(_, h, _)| h)
                .collect();
            out.results.retain(|h| !lost.contains(h));
            out.exact = lost.is_empty() && out.exact;
            Ok(out)
        }
        fn supports_tracing(&self) -> bool {
            true
        }
        fn trace_query(
            &self,
            origin: NodeId,
            lo: f64,
            hi: f64,
            seed: u64,
        ) -> Result<(RangeOutcome, crate::QueryTrace), SchemeError> {
            let out = self.range_query(origin, lo, hi, seed)?;
            let trace = crate::QueryTrace::modeled("shard-scan", origin, &out);
            Ok((out, trace))
        }
        fn trace_query_with_faults(
            &self,
            origin: NodeId,
            lo: f64,
            hi: f64,
            seed: u64,
            faults: &simnet::FaultPlan,
        ) -> Result<(RangeOutcome, crate::QueryTrace), SchemeError> {
            let out = self.range_query_with_faults(origin, lo, hi, seed, faults)?;
            let trace = crate::QueryTrace::modeled("shard-scan", origin, &out);
            Ok((out, trace))
        }
    }

    impl DynamicScheme for ShardScan {
        fn join(&mut self, _rng: &mut SmallRng) -> Result<NodeId, SchemeError> {
            self.alive.push(true);
            Ok(self.alive.len() - 1)
        }
        fn leave(&mut self, node: NodeId) -> Result<(), SchemeError> {
            self.crash(node)
        }
        fn crash(&mut self, node: NodeId) -> Result<(), SchemeError> {
            if !self.alive.get(node).copied().unwrap_or(false) {
                return Err(SchemeError::BadOrigin { origin: node });
            }
            self.alive[node] = false;
            Ok(())
        }
        fn stabilize(&mut self) -> usize {
            let live = self.live();
            let mut moved = 0;
            for rec in &mut self.records {
                if !self.alive[rec.2] {
                    rec.2 = ring_owners(&live, value_key(rec.0), 1)[0];
                    moved += 1;
                }
            }
            moved
        }
        fn live_peers(&self) -> Vec<NodeId> {
            self.live()
        }
    }

    impl ReplicaRouting for ShardScan {
        fn live_peers(&self) -> Vec<NodeId> {
            self.live()
        }
        fn close_group(&self, value: f64, r: usize) -> Vec<NodeId> {
            ring_owners(&self.live(), value_key(value), r)
        }
        fn fetch_cost(&self, _origin: NodeId, _holder: NodeId) -> FetchCost {
            FetchCost { hops: 2, latency: 2, messages: 2 }
        }
    }

    fn replicated(n: usize, records: usize, policy: ReplicaPolicy) -> Replicated {
        let mut wrapped = Replicated::new(Box::new(ShardScan::new(n)), policy).unwrap();
        for h in 0..records as u64 {
            // Spread values deterministically over [0, 1000].
            wrapped.publish((h as f64 * 37.0) % 1000.0, h).unwrap();
        }
        wrapped
    }

    #[test]
    fn policy_parsing_and_labels() {
        assert!(ReplicaPolicy::named("bogus").is_err());
        assert!(ReplicaPolicy::named("r0").is_err());
        assert!(ReplicaPolicy::named("successor-x").is_err());
        assert_eq!(ReplicaPolicy::successor(3).name(), "successor-3");
        assert_eq!(ReplicaPolicy::neighbor_set(2).name(), "neighbor-set-2");
        assert!(ReplicaPolicy::successor(1).is_none(), "factor 1 places no copies");
        assert!(!ReplicaPolicy::successor(2).is_none());
        assert_eq!(ReplicaPolicy::default(), ReplicaPolicy::none());
    }

    #[test]
    fn ring_owners_are_distinct_live_and_prefix_stable() {
        let live: Vec<NodeId> = (0..20).collect();
        for key in [0u64, 7, 0xdead_beef] {
            let five = ring_owners(&live, key, 5);
            assert_eq!(five.len(), 5);
            let set: BTreeSet<_> = five.iter().collect();
            assert_eq!(set.len(), 5, "owners must be distinct");
            // Prefix property: r owners are the first r of r+1 owners.
            for r in 1..5 {
                assert_eq!(ring_owners(&live, key, r), five[..r].to_vec());
            }
        }
        // Clamps to the live set.
        assert_eq!(ring_owners(&live[..3], 1, 9).len(), 3);
        assert!(ring_owners(&[], 1, 3).is_empty());
    }

    #[test]
    fn wrapper_requires_the_routing_hook() {
        struct NoHook;
        impl RangeScheme for NoHook {
            fn scheme_name(&self) -> &'static str {
                "no-hook"
            }
            fn substrate(&self) -> String {
                "toy".into()
            }
            fn degree(&self) -> String {
                "0".into()
            }
            fn node_count(&self) -> usize {
                1
            }
            fn publish(&mut self, _: f64, _: u64) -> Result<(), SchemeError> {
                Ok(())
            }
            fn random_origin(&self, _: &mut SmallRng) -> NodeId {
                0
            }
            fn range_query(
                &self,
                _: NodeId,
                _: f64,
                _: f64,
                _: u64,
            ) -> Result<RangeOutcome, SchemeError> {
                unreachable!()
            }
        }
        let err = Replicated::new(Box::new(NoHook), ReplicaPolicy::successor(2))
            .map(|_| ())
            .expect_err("no routing hook, no replication");
        assert!(matches!(err, SchemeError::Unsupported { feature: "replication", .. }), "{err}");
    }

    #[test]
    fn replicas_recover_crash_lost_records_with_honest_costs() {
        let mut scheme = replicated(12, 60, ReplicaPolicy::successor(3));
        let clean = scheme.range_query(0, 0.0, 1000.0, 0).unwrap();
        assert!(clean.exact);
        assert_eq!(clean.results.len(), 60);

        // Crash a third of the network through the wrapper.
        for _ in 0..4 {
            let victim = *DynamicScheme::live_peers(&scheme).last().unwrap();
            DynamicScheme::crash(&mut scheme, victim).unwrap();
        }
        let out = scheme.range_query(0, 0.0, 1000.0, 0).unwrap();
        let inner_out = scheme.inner().range_query(0, 0.0, 1000.0, 0).unwrap();
        assert!(inner_out.results.len() < 60, "crashes must cost the primary path records");
        assert_eq!(out.results.len(), 60, "every record has a live replica at r = 3");
        assert!(out.exact, "full recovery restores exactness");
        assert_eq!(out.peer_recall(), 1.0);
        assert!(
            out.messages > inner_out.messages,
            "replica fetches must be paid for: {} !> {}",
            out.messages,
            inner_out.messages
        );
        assert!(out.delay > inner_out.delay, "the fetch phase extends the critical path");
    }

    #[test]
    fn factor_one_and_none_are_pass_through() {
        for policy in [ReplicaPolicy::none(), ReplicaPolicy::successor(1)] {
            let mut scheme = replicated(10, 30, policy);
            assert_eq!(scheme.replica_count(), 0);
            let victim = *DynamicScheme::live_peers(&scheme).last().unwrap();
            DynamicScheme::crash(&mut scheme, victim).unwrap();
            let out = scheme.range_query(0, 0.0, 1000.0, 0).unwrap();
            let inner_out = scheme.inner().range_query(0, 0.0, 1000.0, 0).unwrap();
            assert_eq!(out, inner_out, "no replicas ⇒ the wrapper changes nothing");
            assert_eq!(scheme.re_replicate(), ReplicaRepair::default());
        }
    }

    #[test]
    fn recovered_results_grow_monotonically_with_the_factor() {
        let mut per_factor = Vec::new();
        for r in [1usize, 2, 3, 5] {
            let mut scheme = replicated(14, 80, ReplicaPolicy::successor(r));
            // Identical crash sequence for every factor.
            for _ in 0..5 {
                let victim = DynamicScheme::live_peers(&scheme)[1];
                DynamicScheme::crash(&mut scheme, victim).unwrap();
            }
            let out = scheme.range_query(0, 0.0, 1000.0, 0).unwrap();
            per_factor.push((r, out.results.len(), out.peer_recall()));
        }
        for pair in per_factor.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "results must be monotone in r: {:?} then {:?}",
                pair[0],
                pair[1]
            );
            assert!(pair[1].2 >= pair[0].2, "recall must be monotone in r");
        }
        assert!(
            per_factor.last().unwrap().1 > per_factor.first().unwrap().1,
            "5 crashes on 14 peers must cost the unreplicated scheme something"
        );
    }

    #[test]
    fn re_replicate_is_idempotent_and_heals_after_churn() {
        let mut scheme = replicated(12, 50, ReplicaPolicy::successor(3));
        let placed_at_publish = scheme.replica_count();
        assert_eq!(placed_at_publish, 100, "r = 3 places two copies per record");
        // Fresh network, placement already correct: repair is a no-op.
        assert_eq!(scheme.re_replicate(), ReplicaRepair::default());

        for _ in 0..3 {
            let victim = DynamicScheme::live_peers(&scheme)[0];
            DynamicScheme::crash(&mut scheme, victim).unwrap();
        }
        assert!(scheme.replica_count() < placed_at_publish, "evictions shrink the copy set");
        let repair = scheme.re_replicate();
        assert!(repair.placed > 0, "repair must restore evicted copies");
        assert!(repair.messages > 0, "repair traffic is not free");
        assert_eq!(scheme.replica_count(), 100);
        // Second pass with no intervening membership change: all zeros.
        assert_eq!(scheme.re_replicate(), ReplicaRepair::default());
        assert_eq!(repair.ops(), repair.placed + repair.dropped);
    }

    #[test]
    fn fault_injected_queries_cannot_recover_from_faulted_holders() {
        let scheme = replicated(12, 60, ReplicaPolicy::successor(3));
        let clean = scheme.range_query(0, 0.0, 1000.0, 0).unwrap();
        assert_eq!(clean.results.len(), 60);

        // Pick one record and fault-crash its primary: the replicas serve.
        let inner_live: Vec<NodeId> = (0..12).collect();
        let owners = ring_owners(&inner_live, value_key(37.0), 3);
        let mut faults = simnet::FaultPlan::new();
        faults.crash(owners[0]);
        let out = scheme.range_query_with_faults(0, 0.0, 1000.0, 0, &faults).unwrap();
        assert_eq!(out.results.len(), 60, "a live replica must cover the faulted primary");

        // Fault-crash the whole replica set: recovery must NOT resurrect
        // the records (the holders are down for this query).
        for &o in &owners {
            faults.crash(o);
        }
        let out = scheme.range_query_with_faults(0, 0.0, 1000.0, 0, &faults).unwrap();
        assert!(
            out.results.len() < 60,
            "records whose full replica set is faulted must stay missing"
        );
        assert!(!out.exact);

        // Total message loss: fetches are paid for but recover nothing.
        let mut lossy = simnet::FaultPlan::with_drop_prob(1.0);
        lossy.crash(owners[0]);
        let dropped = scheme.range_query_with_faults(0, 0.0, 1000.0, 0, &lossy).unwrap();
        let inner_only = scheme.inner().range_query_with_faults(0, 0.0, 1000.0, 0, &lossy).unwrap();
        assert_eq!(
            dropped.results, inner_only.results,
            "at 100% loss no fetch can land, so no record comes back"
        );
        assert!(
            dropped.messages > inner_only.messages,
            "the dropped fetches were still sent and must be charged"
        );
    }

    #[test]
    fn partial_recovery_never_reports_full_recall() {
        let mut scheme = replicated(10, 40, ReplicaPolicy::successor(2));
        // Crash enough peers that some records lose primary AND replica.
        for _ in 0..4 {
            let victim = DynamicScheme::live_peers(&scheme)[0];
            DynamicScheme::crash(&mut scheme, victim).unwrap();
        }
        let out = scheme.range_query(9, 0.0, 1000.0, 0).unwrap();
        if !out.exact {
            assert!(
                out.peer_recall() < 1.0,
                "an inexact recovered query must not report peer recall 1.0 \
                 (reached {} of {})",
                out.reached_peers,
                out.dest_peers
            );
        }
    }

    #[test]
    fn stabilize_repairs_both_layers() {
        let mut scheme = replicated(12, 50, ReplicaPolicy::neighbor_set(2));
        for _ in 0..3 {
            let victim = DynamicScheme::live_peers(&scheme)[2];
            DynamicScheme::crash(&mut scheme, victim).unwrap();
        }
        let ops = DynamicScheme::stabilize(&mut scheme);
        assert!(ops > 0, "stabilize re-homes records and replicas");
        let out = scheme.range_query(0, 0.0, 1000.0, 0).unwrap();
        assert!(out.exact, "post-stabilize queries are exact again");
        // And the repair pass left nothing to do.
        assert_eq!(scheme.re_replicate(), ReplicaRepair::default());
    }

    #[test]
    fn traced_recovery_keeps_the_accounting_invariant_and_logs_fetches() {
        let mut scheme = replicated(12, 60, ReplicaPolicy::successor(3));
        for _ in 0..4 {
            let victim = *DynamicScheme::live_peers(&scheme).last().unwrap();
            DynamicScheme::crash(&mut scheme, victim).unwrap();
        }
        let plain = scheme.range_query(0, 0.0, 1000.0, 0).unwrap();
        let (traced, tr) = scheme.trace_query(0, 0.0, 1000.0, 0).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the outcome");
        assert_eq!(tr.root.total(), (traced.delay, traced.latency, traced.messages));
        let fetches = tr
            .events
            .iter()
            .filter(|r| matches!(r.event, simnet::TraceEvent::ReplicaFetch { .. }))
            .count();
        assert!(fetches > 0, "crash-lost records must show up as fetch events");
        assert!(tr.explain_text().contains("replica fetch phase"), "{}", tr.explain_text());
        // The merged stream stays totally ordered by (time, id).
        let stamps: Vec<(u64, u64)> = tr.events.iter().map(|r| (r.time, r.id)).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted, "fetch events must splice in time order");
    }

    #[test]
    fn traced_faulted_recovery_marks_lost_fetches() {
        let scheme = replicated(12, 60, ReplicaPolicy::successor(3));
        let inner_live: Vec<NodeId> = (0..12).collect();
        let owners = ring_owners(&inner_live, value_key(37.0), 3);
        let mut lossy = simnet::FaultPlan::with_drop_prob(1.0);
        lossy.crash(owners[0]);
        let plain = scheme.range_query_with_faults(0, 0.0, 1000.0, 0, &lossy).unwrap();
        let (traced, tr) = scheme.trace_query_with_faults(0, 0.0, 1000.0, 0, &lossy).unwrap();
        assert_eq!(plain, traced, "traced faulted recovery must replay the same verdicts");
        assert_eq!(tr.root.total(), (traced.delay, traced.latency, traced.messages));
        let lost = tr
            .events
            .iter()
            .filter(|r| {
                matches!(r.event, simnet::TraceEvent::ReplicaFetch { recovered: false, .. })
            })
            .count();
        assert!(lost > 0, "100% loss fetches must be logged as not recovered");
        assert!(tr.explain_text().contains("lost in transit"));
    }

    #[test]
    fn control_surface_reports_policy_and_label() {
        let mut scheme = replicated(8, 10, ReplicaPolicy::successor(2));
        let control = scheme.as_replicated().expect("wrapper exposes control");
        assert_eq!(control.policy().name(), "successor-2");
        assert_eq!(control.label(), "shard-scan+successor-2");
        assert!(scheme.substrate().contains("successor-2"));
    }
}
