//! A generic batched query driver: run a workload of range queries against
//! *any* scheme and aggregate the outcomes into summary statistics.
//!
//! This is the hook the experiment harness (and future throughput work —
//! batched pipelines, parallel drivers, new overlays) builds on: the driver
//! owns the per-query loop and the aggregation, so a new scheme or workload
//! never re-implements measurement glue.

use crate::scheme::{MultiRangeScheme, RangeScheme, SchemeError};
use rand::rngs::SmallRng;
use simnet::{Samples, Summary};

/// A batched driver: `queries` queries, per-query seeds derived from
/// `seed` by addition (query `q` runs with `seed + q`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryDriver {
    /// Number of queries to run.
    pub queries: usize,
    /// Base seed for per-query scheme randomness.
    pub seed: u64,
    /// Whether to fill [`DriverReport::metrics`] (off by default, so
    /// existing reports — and their digests — are unchanged).
    pub metrics: bool,
}

/// Aggregated measurements over one driver run.
#[derive(Debug, Clone, Default)]
pub struct DriverReport {
    /// Registry name of the measured scheme.
    pub scheme: String,
    /// Queries executed.
    pub queries: usize,
    /// Delay (hops) per query.
    pub delay: Summary,
    /// Latency (virtual ms under the scheme's
    /// [`NetModel`](crate::NetModel)) per query.
    pub latency: Summary,
    /// Messages per query.
    pub messages: Summary,
    /// Ground-truth destination count per query.
    pub dest_peers: Summary,
    /// `MesgRatio` per query.
    pub mesg_ratio: Summary,
    /// `IncreRatio` per query.
    pub incre_ratio: Summary,
    /// `peer_recall` per query (1.0 throughout for fault-free runs).
    pub recall: Summary,
    /// Fraction of queries answered exactly (1.0 for fault-free runs of
    /// exact schemes).
    pub exact_rate: f64,
    /// Total results returned across the workload.
    pub results_returned: u64,
    /// Per-epoch series when the run was epoch-driven
    /// ([`ParallelDriver::run_epochs`](crate::ParallelDriver::run_epochs));
    /// empty for plain batch runs.
    pub epochs: Vec<EpochSummary>,
    /// The metrics registry collected alongside the run — counters,
    /// fixed-bucket histograms, and per-peer query load, merged
    /// shard-order-deterministically. Empty unless the driver ran with
    /// metrics enabled ([`QueryDriver::with_metrics`],
    /// [`ParallelDriver::with_metrics`](crate::ParallelDriver::with_metrics)),
    /// and an empty registry contributes nothing to
    /// [`DigestReport`](crate::DigestReport) — so pre-metrics digests are
    /// unchanged.
    pub metrics: crate::MetricsRegistry,
}

/// One epoch of an epoch-driven run: the churn applied just before it and
/// the measurement series of its queries.
#[derive(Debug, Clone, Default)]
pub struct EpochSummary {
    /// Epoch index (0-based; epoch 0 queries the as-built network).
    pub epoch: usize,
    /// Live peers while this epoch's queries ran.
    pub peers: usize,
    /// Membership events applied between the previous epoch and this one
    /// (all zeros for epoch 0).
    pub churn: crate::ChurnStats,
    /// Replica repair performed after those membership events — the
    /// re-replication traffic of a [`Replicated`](crate::Replicated)
    /// scheme (all zeros for epoch 0 and for unreplicated schemes).
    pub repair: crate::ReplicaRepair,
    /// Mean query delay (hops) within the epoch.
    pub delay_mean: f64,
    /// Mean query latency (virtual ms) within the epoch.
    pub latency_mean: f64,
    /// Fraction of the epoch's queries answered exactly.
    pub exact_rate: f64,
    /// Mean `peer_recall` within the epoch.
    pub recall_mean: f64,
    /// Results returned by the epoch's queries.
    pub results_returned: u64,
}

/// Sample accumulator shared by the single- and multi-attribute loops —
/// and, shard by shard, by [`ParallelDriver`](crate::ParallelDriver), whose
/// worker threads each fill one `Accumulator` and [`merge`](Self::merge)
/// them back in shard order.
#[derive(Debug, Clone, Default)]
pub(crate) struct Accumulator {
    delay: Samples,
    latency: Samples,
    messages: Samples,
    dest_peers: Samples,
    mesg_ratio: Samples,
    incre_ratio: Samples,
    recall: Samples,
    exact: usize,
    results: u64,
    /// `Some` when the run collects metrics; per-query counters,
    /// histograms, and origin load land here and merge shard by shard.
    metrics: Option<crate::MetricsRegistry>,
}

impl Accumulator {
    /// An accumulator that also fills a metrics registry.
    pub(crate) fn with_metrics() -> Accumulator {
        Accumulator { metrics: Some(crate::MetricsRegistry::new()), ..Default::default() }
    }

    pub(crate) fn push(
        &mut self,
        out: &crate::RangeOutcome,
        n_peers: usize,
        origin: simnet::NodeId,
    ) {
        self.delay.push(out.delay as f64);
        self.latency.push(out.latency as f64);
        self.messages.push(out.messages as f64);
        self.dest_peers.push(out.dest_peers as f64);
        self.mesg_ratio.push(out.mesg_ratio());
        self.incre_ratio.push(out.incre_ratio(n_peers));
        self.recall.push(out.peer_recall());
        if out.exact {
            self.exact += 1;
        }
        self.results += out.results.len() as u64;
        if let Some(m) = self.metrics.as_mut() {
            m.inc("queries", 1);
            m.inc("messages", out.messages);
            m.inc("results", out.results.len() as u64);
            m.inc("exact", u64::from(out.exact));
            m.inc("reached_peers", out.reached_peers as u64);
            m.inc("dest_peers", out.dest_peers as u64);
            m.observe("delay_hops", out.delay);
            m.observe("latency_ms", out.latency);
            m.observe("messages", out.messages);
            m.load(origin, 1);
        }
    }

    /// Appends another shard's samples. Since [`Samples::summarize`] sorts
    /// (and metrics merging commutes), the final report does not depend on
    /// how queries were sharded.
    pub(crate) fn merge(&mut self, other: Accumulator) {
        self.delay.merge(other.delay);
        self.latency.merge(other.latency);
        self.messages.merge(other.messages);
        self.dest_peers.merge(other.dest_peers);
        self.mesg_ratio.merge(other.mesg_ratio);
        self.incre_ratio.merge(other.incre_ratio);
        self.recall.merge(other.recall);
        self.exact += other.exact;
        self.results += other.results;
        if let Some(theirs) = other.metrics {
            match self.metrics.as_mut() {
                Some(mine) => mine.merge(&theirs),
                None => self.metrics = Some(theirs),
            }
        }
    }

    /// Direct access to the metrics registry (for driver-level counters
    /// like retry and repair traffic that are not per-outcome).
    pub(crate) fn metrics_mut(&mut self) -> Option<&mut crate::MetricsRegistry> {
        self.metrics.as_mut()
    }

    pub(crate) fn report(self, scheme: &str, queries: usize) -> DriverReport {
        DriverReport {
            scheme: scheme.to_string(),
            queries,
            delay: self.delay.summarize(),
            latency: self.latency.summarize(),
            messages: self.messages.summarize(),
            dest_peers: self.dest_peers.summarize(),
            mesg_ratio: self.mesg_ratio.summarize(),
            incre_ratio: self.incre_ratio.summarize(),
            recall: self.recall.summarize(),
            exact_rate: self.exact as f64 / queries.max(1) as f64,
            results_returned: self.results,
            epochs: Vec::new(),
            metrics: self.metrics.unwrap_or_default(),
        }
    }
}

impl QueryDriver {
    /// A driver running `queries` queries with base seed 0 (per-query seed
    /// equals the query index).
    pub fn new(queries: usize) -> Self {
        QueryDriver { queries, seed: 0, metrics: false }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables (or disables) metrics collection for subsequent runs.
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    pub(crate) fn accumulator(&self) -> Accumulator {
        if self.metrics {
            Accumulator::with_metrics()
        } else {
            Accumulator::default()
        }
    }

    /// Runs the workload against a single-attribute scheme. For each query,
    /// `next_range` draws `(lo, hi)` from the workload distribution, then
    /// the driver picks a random origin and executes — the same call
    /// sequence every experiment previously hand-rolled.
    ///
    /// # Errors
    ///
    /// Propagates the first query error (fault-free workloads on live
    /// origins never fail).
    pub fn run<W>(
        &self,
        scheme: &dyn RangeScheme,
        rng: &mut SmallRng,
        mut next_range: W,
    ) -> Result<DriverReport, SchemeError>
    where
        W: FnMut(&mut SmallRng) -> (f64, f64),
    {
        let n_peers = scheme.node_count();
        let mut acc = self.accumulator();
        let retries_before = scheme.retry_attempts();
        // One scratch for the whole batch: per-query setup allocations are
        // paid once, and outcomes are contractually bit-identical to the
        // scratch-free path.
        let mut scratch = simnet::QueryScratch::new();
        for q in 0..self.queries {
            let (lo, hi) = next_range(rng);
            let origin = scheme.random_origin(rng);
            let out = scheme.range_query_scratch(
                origin,
                lo,
                hi,
                self.seed.wrapping_add(q as u64),
                &mut scratch,
            )?;
            acc.push(&out, n_peers, origin);
        }
        if let Some(m) = acc.metrics_mut() {
            m.inc("retry_attempts", scheme.retry_attempts() - retries_before);
        }
        Ok(acc.report(scheme.scheme_name(), self.queries))
    }

    /// Runs the workload against a multi-attribute scheme; `next_rect`
    /// draws one rectangle per query.
    ///
    /// # Errors
    ///
    /// Propagates the first query error.
    pub fn run_multi<W>(
        &self,
        scheme: &dyn MultiRangeScheme,
        rng: &mut SmallRng,
        mut next_rect: W,
    ) -> Result<DriverReport, SchemeError>
    where
        W: FnMut(&mut SmallRng) -> Vec<(f64, f64)>,
    {
        let n_peers = scheme.node_count();
        let mut acc = self.accumulator();
        for q in 0..self.queries {
            let rect = next_rect(rng);
            let origin = scheme.random_origin(rng);
            let out = scheme.rect_query(origin, &rect, self.seed.wrapping_add(q as u64))?;
            acc.push(&out, n_peers, origin);
        }
        Ok(acc.report(scheme.scheme_name(), self.queries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{RangeOutcome, RangeScheme};
    use rand::Rng;
    use simnet::NodeId;

    /// Fixed-cost fake scheme: every query costs `delay = 2`, `messages =
    /// 5`, reaches 4/4 destinations and returns one result per whole unit
    /// of range width.
    struct Fixed;

    impl RangeScheme for Fixed {
        fn scheme_name(&self) -> &'static str {
            "fixed"
        }

        fn substrate(&self) -> String {
            "test".into()
        }

        fn degree(&self) -> String {
            "1".into()
        }

        fn node_count(&self) -> usize {
            32
        }

        fn publish(&mut self, _value: f64, _handle: u64) -> Result<(), SchemeError> {
            Ok(())
        }

        fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
            rng.gen_range(0..32)
        }

        fn range_query(
            &self,
            _origin: NodeId,
            lo: f64,
            hi: f64,
            _seed: u64,
        ) -> Result<RangeOutcome, SchemeError> {
            Ok(RangeOutcome {
                results: (0..(hi - lo).round() as u64).collect(),
                delay: 2,
                latency: 2,
                messages: 5,
                dest_peers: 4,
                reached_peers: 4,
                exact: true,
            })
        }
    }

    #[test]
    fn driver_aggregates_fixed_costs_exactly() {
        let driver = QueryDriver::new(50);
        let mut rng = simnet::rng_from_seed(9);
        let report = driver.run(&Fixed, &mut rng, |rng| {
            let lo = rng.gen_range(0.0..100.0);
            (lo, lo + 3.0)
        });
        let report = report.unwrap();
        assert_eq!(report.queries, 50);
        assert_eq!(report.delay.mean, 2.0);
        assert_eq!(report.delay.max, 2.0);
        assert_eq!(report.messages.mean, 5.0);
        assert_eq!(report.dest_peers.mean, 4.0);
        assert_eq!(report.exact_rate, 1.0);
        assert_eq!(report.mesg_ratio.mean, 1.25);
        // 3 results per query (range width 3).
        assert_eq!(report.results_returned, 150);
        assert_eq!(report.scheme, "fixed");
    }

    #[test]
    fn driver_seeds_are_distinct_per_query() {
        struct SeedProbe(std::sync::Mutex<Vec<u64>>);
        impl RangeScheme for SeedProbe {
            fn scheme_name(&self) -> &'static str {
                "probe"
            }
            fn substrate(&self) -> String {
                "test".into()
            }
            fn degree(&self) -> String {
                "0".into()
            }
            fn node_count(&self) -> usize {
                1
            }
            fn publish(&mut self, _: f64, _: u64) -> Result<(), SchemeError> {
                Ok(())
            }
            fn random_origin(&self, _: &mut SmallRng) -> NodeId {
                0
            }
            fn range_query(
                &self,
                _: NodeId,
                _: f64,
                _: f64,
                seed: u64,
            ) -> Result<RangeOutcome, SchemeError> {
                self.0.lock().unwrap().push(seed);
                Ok(RangeOutcome {
                    results: vec![],
                    delay: 0,
                    latency: 0,
                    messages: 0,
                    dest_peers: 0,
                    reached_peers: 0,
                    exact: true,
                })
            }
        }

        let probe = SeedProbe(std::sync::Mutex::new(Vec::new()));
        let driver = QueryDriver::new(4).with_seed(100);
        let mut rng = simnet::rng_from_seed(1);
        driver.run(&probe, &mut rng, |_| (0.0, 1.0)).unwrap();
        assert_eq!(*probe.0.lock().unwrap(), vec![100, 101, 102, 103]);
    }
}
