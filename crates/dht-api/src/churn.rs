//! Named, seeded churn plans: the membership-dynamics axis of the
//! evaluation, mirroring [`WorkloadGen`](crate::WorkloadGen)'s determinism
//! contract.
//!
//! A [`ChurnPlan`] decides which membership events hit the network between
//! query epochs. Every event is a pure function of `(plan, seed, epoch)`:
//! the event *list* of an epoch is a fixed pattern of the plan's mix and
//! rate, and the placement randomness (where a join lands, which peer
//! leaves) comes from an RNG derived from `(plan name, seed, epoch)` alone.
//! Nothing depends on thread count or on how queries were sharded, which is
//! what lets [`ParallelDriver::run_epochs`](crate::ParallelDriver::run_epochs)
//! keep its bitwise-determinism guarantee under churn.
//!
//! # The catalog
//!
//! | Name | Mix per epoch transition |
//! |---|---|
//! | `join-storm` | joins only — the network grows every epoch |
//! | `leave-storm` | graceful leaves only — the network drains |
//! | `flash-crowd` | two epochs of pure joins, then two of pure leaves, repeating |
//! | `steady-churn` | alternating join/leave — size-stationary turnover |
//! | `massacre` | 3 crashes to every 1 join, stabilizing only every other epoch |
//!
//! `massacre` is the recall-stress plan: crashes lose locally stored
//! records, and with stabilization deferred the epoch series shows the
//! degraded answers before repair catches up.

use crate::dynamics::DynamicScheme;
use crate::scheme::SchemeError;
use rand::rngs::SmallRng;
use rand::Rng;

/// Churn plan names accepted by [`ChurnPlan::named`], in catalog order.
pub const CHURN_PLAN_NAMES: [&str; 5] =
    ["join-storm", "leave-storm", "flash-crowd", "steady-churn", "massacre"];

/// Salt separating churn RNG streams from workload and origin streams.
const CHURN_SALT: u64 = 0x0c0d_0c0d_0c0d_0c0d;

/// One membership event of a churn plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new peer joins.
    Join,
    /// A random live peer departs gracefully.
    Leave,
    /// A random live peer fails abruptly.
    Crash,
}

/// What actually happened when a plan's epoch was applied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Joins performed.
    pub joins: usize,
    /// Graceful leaves performed.
    pub leaves: usize,
    /// Crashes performed.
    pub crashes: usize,
    /// Events skipped because the scheme refused them (e.g. a leave at the
    /// minimum network size).
    pub skipped: usize,
    /// Whether the plan stabilized after this epoch's events.
    pub stabilized: bool,
    /// Repair operations the stabilization performed (0 if not stabilized).
    pub stabilize_ops: usize,
}

impl ChurnStats {
    /// Total membership events applied (joins + leaves + crashes).
    pub fn events(&self) -> usize {
        self.joins + self.leaves + self.crashes
    }
}

/// The event mix a plan generates each epoch transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChurnMix {
    /// Joins only.
    Joins,
    /// Graceful leaves only.
    Leaves,
    /// Joins for two epochs, leaves for the next two, repeating.
    FlashCrowd,
    /// Alternating join/leave within every epoch.
    Steady,
    /// Three crashes to every join.
    Massacre,
}

/// A named, seeded membership-dynamics plan.
///
/// # Example
///
/// ```
/// use dht_api::ChurnPlan;
///
/// let plan = ChurnPlan::named("steady-churn").unwrap().with_rate(6);
/// // The event list is a pure function of the epoch:
/// assert_eq!(plan.events(0), plan.events(0));
/// assert_eq!(plan.events(0).len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPlan {
    name: String,
    mix: ChurnMix,
    rate: usize,
    stabilize_period: u64,
}

impl ChurnPlan {
    /// Builds a cataloged plan by name with its default rate (8 events per
    /// epoch transition) and stabilization period.
    ///
    /// # Errors
    ///
    /// [`SchemeError::UnknownChurnPlan`] for names outside
    /// [`CHURN_PLAN_NAMES`].
    pub fn named(name: &str) -> Result<ChurnPlan, SchemeError> {
        let (mix, stabilize_period) = match name {
            "join-storm" => (ChurnMix::Joins, 1),
            "leave-storm" => (ChurnMix::Leaves, 1),
            "flash-crowd" => (ChurnMix::FlashCrowd, 1),
            "steady-churn" => (ChurnMix::Steady, 1),
            // The stress plan defers repair so degraded epochs are visible.
            "massacre" => (ChurnMix::Massacre, 2),
            other => return Err(SchemeError::UnknownChurnPlan { name: other.to_string() }),
        };
        Ok(ChurnPlan { name: name.to_string(), mix, rate: 8, stabilize_period })
    }

    /// Sets the number of membership events per epoch transition.
    pub fn with_rate(mut self, rate: usize) -> Self {
        self.rate = rate;
        self
    }

    /// Sets how often the plan stabilizes: after every `period`-th epoch
    /// transition (0 = never — callers stabilize manually).
    pub fn with_stabilize_period(mut self, period: u64) -> Self {
        self.stabilize_period = period;
        self
    }

    /// The plan's catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Membership events per epoch transition.
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Whether the plan stabilizes after the events of epoch transition
    /// `epoch`.
    pub fn should_stabilize(&self, epoch: u64) -> bool {
        self.stabilize_period != 0 && (epoch + 1).is_multiple_of(self.stabilize_period)
    }

    /// The event list for epoch transition `epoch` — a pure function of
    /// `(plan, epoch)`, independent of seed, threads, and history.
    pub fn events(&self, epoch: u64) -> Vec<ChurnEvent> {
        (0..self.rate)
            .map(|i| match self.mix {
                ChurnMix::Joins => ChurnEvent::Join,
                ChurnMix::Leaves => ChurnEvent::Leave,
                ChurnMix::FlashCrowd => {
                    if epoch % 4 < 2 {
                        ChurnEvent::Join
                    } else {
                        ChurnEvent::Leave
                    }
                }
                ChurnMix::Steady => {
                    if i % 2 == 0 {
                        ChurnEvent::Join
                    } else {
                        ChurnEvent::Leave
                    }
                }
                ChurnMix::Massacre => {
                    if i % 4 == 3 {
                        ChurnEvent::Join
                    } else {
                        ChurnEvent::Crash
                    }
                }
            })
            .collect()
    }

    /// The placement/victim RNG for epoch transition `epoch` under `seed` —
    /// derived from `(plan name, seed, epoch)` only.
    pub fn epoch_rng(&self, seed: u64, epoch: u64) -> SmallRng {
        simnet::rng_from_seed(
            crate::fnv1a(self.name.as_bytes())
                ^ seed
                ^ CHURN_SALT
                ^ epoch.wrapping_mul(0xa076_1d64_78bd_642f),
        )
    }

    /// Applies epoch transition `epoch` to a dynamic scheme: every event of
    /// [`events`](Self::events), victims drawn by index from
    /// [`DynamicScheme::live_peers`], then a stabilization pass when
    /// [`should_stabilize`](Self::should_stabilize) says so.
    ///
    /// Events the scheme refuses (a leave at the minimum network size, a
    /// join at the resolution floor) are counted as `skipped` rather than
    /// failing the run — a churn plan models an environment, and the
    /// environment does not stop because one departure was impossible.
    ///
    /// # Errors
    ///
    /// None currently; the `Result` reserves room for schemes whose churn
    /// primitives can fail unrecoverably.
    pub fn apply(
        &self,
        scheme: &mut dyn DynamicScheme,
        seed: u64,
        epoch: u64,
    ) -> Result<ChurnStats, SchemeError> {
        let mut rng = self.epoch_rng(seed, epoch);
        let mut stats = ChurnStats::default();
        for event in self.events(epoch) {
            match event {
                ChurnEvent::Join => match scheme.join(&mut rng) {
                    Ok(_) => stats.joins += 1,
                    Err(_) => stats.skipped += 1,
                },
                ChurnEvent::Leave | ChurnEvent::Crash => {
                    let live = scheme.live_peers();
                    if live.is_empty() {
                        stats.skipped += 1;
                        continue;
                    }
                    let victim = live[rng.gen_range(0..live.len())];
                    let outcome = match event {
                        ChurnEvent::Leave => scheme.leave(victim),
                        _ => scheme.crash(victim),
                    };
                    match (outcome, event) {
                        (Ok(()), ChurnEvent::Leave) => stats.leaves += 1,
                        (Ok(()), _) => stats.crashes += 1,
                        (Err(_), _) => stats.skipped += 1,
                    }
                }
            }
        }
        if self.should_stabilize(epoch) {
            stats.stabilized = true;
            stats.stabilize_ops = scheme.stabilize();
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_every_name_and_rejects_strangers() {
        for name in CHURN_PLAN_NAMES {
            let plan = ChurnPlan::named(name).unwrap();
            assert_eq!(plan.name(), name);
            assert_eq!(plan.events(0).len(), plan.rate());
        }
        assert!(matches!(ChurnPlan::named("bogus"), Err(SchemeError::UnknownChurnPlan { .. })));
    }

    #[test]
    fn event_lists_are_epoch_addressed_and_match_their_mix() {
        let joins = ChurnPlan::named("join-storm").unwrap();
        assert!(joins.events(3).iter().all(|&e| e == ChurnEvent::Join));
        let leaves = ChurnPlan::named("leave-storm").unwrap();
        assert!(leaves.events(3).iter().all(|&e| e == ChurnEvent::Leave));
        let flash = ChurnPlan::named("flash-crowd").unwrap();
        assert!(flash.events(0).iter().all(|&e| e == ChurnEvent::Join));
        assert!(flash.events(2).iter().all(|&e| e == ChurnEvent::Leave));
        let steady = ChurnPlan::named("steady-churn").unwrap().with_rate(10);
        let joins_n = steady.events(7).iter().filter(|&&e| e == ChurnEvent::Join).count();
        assert_eq!(joins_n, 5, "steady churn is size-stationary");
        let massacre = ChurnPlan::named("massacre").unwrap().with_rate(8);
        let crashes = massacre.events(0).iter().filter(|&&e| e == ChurnEvent::Crash).count();
        assert_eq!(crashes, 6, "massacre is crash-heavy");
        // Pure in the epoch: re-asking reproduces the list.
        assert_eq!(flash.events(5), flash.events(5));
    }

    #[test]
    fn stabilize_period_gates_repair() {
        let every = ChurnPlan::named("steady-churn").unwrap();
        assert!(every.should_stabilize(0) && every.should_stabilize(1));
        let deferred = ChurnPlan::named("massacre").unwrap();
        assert!(!deferred.should_stabilize(0));
        assert!(deferred.should_stabilize(1));
        let manual = every.clone().with_stabilize_period(0);
        assert!(!manual.should_stabilize(0) && !manual.should_stabilize(99));
    }

    #[test]
    fn epoch_rngs_decorrelate_plans_seeds_and_epochs() {
        let a = ChurnPlan::named("steady-churn").unwrap();
        let b = ChurnPlan::named("massacre").unwrap();
        let draw = |mut rng: SmallRng| -> u64 { rng.gen() };
        assert_ne!(draw(a.epoch_rng(1, 0)), draw(a.epoch_rng(2, 0)));
        assert_ne!(draw(a.epoch_rng(1, 0)), draw(a.epoch_rng(1, 1)));
        assert_ne!(draw(a.epoch_rng(1, 0)), draw(b.epoch_rng(1, 0)));
        // And reproduce exactly.
        assert_eq!(draw(a.epoch_rng(1, 0)), draw(a.epoch_rng(1, 0)));
    }

    #[test]
    fn apply_tolerates_refusals() {
        /// A scheme at its minimum size: every leave/crash is refused.
        struct Stuck;
        impl DynamicScheme for Stuck {
            fn join(&mut self, _: &mut SmallRng) -> Result<usize, SchemeError> {
                Ok(0)
            }
            fn leave(&mut self, _: usize) -> Result<(), SchemeError> {
                Err(SchemeError::Query("too small".into()))
            }
            fn crash(&mut self, _: usize) -> Result<(), SchemeError> {
                Err(SchemeError::Query("too small".into()))
            }
            fn stabilize(&mut self) -> usize {
                0
            }
            fn live_peers(&self) -> Vec<usize> {
                vec![0, 1, 2]
            }
        }
        let plan = ChurnPlan::named("leave-storm").unwrap().with_rate(5);
        let stats = plan.apply(&mut Stuck, 0, 0).unwrap();
        assert_eq!(stats.leaves, 0);
        assert_eq!(stats.skipped, 5);
        assert!(stats.stabilized);
    }
}
