//! The hostile-network layer: named fault plans and seeded retry policies
//! composable over any registered scheme.
//!
//! [`Hostile`] wraps a built [`RangeScheme`] with a
//! [`FaultPlan`](simnet::FaultPlan) carrying the hostile families
//! (per-edge loss, partitions, rate limits — see the
//! [`simnet::FaultPlan`] docs) and a [`RetryPolicy`] that re-asks failed
//! queries. The registry spells the composition inline:
//! `"pira@lossy-p/r2"` builds PIRA, then wraps it with the `lossy-p` loss
//! plan and a 2-attempt retry policy.
//!
//! Two execution paths, chosen per query by
//! [`RangeScheme::supports_fault_injection`]:
//!
//! * **Native** — schemes whose engine runs a real simulator (PIRA,
//!   DCF-CAN) receive the fault plan through
//!   [`range_query_with_faults`](RangeScheme::range_query_with_faults);
//!   the simulator itself drops, blocks, and throttles messages, so loss
//!   interacts with the scheme's actual dissemination tree.
//! * **Generic** — every other scheme answers fault-free, and the wrapper
//!   degrades the *response plane*: each of the outcome's `dest_peers`
//!   ground-truth destinations becomes a slot with a virtual peer
//!   identity (a pure hash of `(plan, query seed, slot)`), and a slot's
//!   answer is withheld when its edge is severed by the partition, its
//!   peer is crashed, or the loss hash says the reply was lost. Rate
//!   limits price the origin's message overflow into latency. Results are
//!   mapped to slots stably, so retry attempts re-reach exactly the slots
//!   that failed and the union converges toward the exact answer.
//!
//! Every verdict on both paths is a pure hash of
//! `(plan, seed, edge/peer, attempt)` — no RNG stream, no wall clock — so
//! reports stay bitwise identical for any thread count or shard salt
//! (pinned by `tests/fault_invariance.rs` at the workspace root).
//!
//! Retries are *counted in messages* and their waits are *priced in
//! virtual milliseconds*: attempt `k+1` adds its own message traffic and
//! `timeout_ms + backoff` latency, never extra overlay hops — hop metrics
//! keep measuring the dissemination structure, latency measures the wait.

use crate::explain::{CostNode, QueryTrace};
use crate::scheme::{RangeOutcome, RangeScheme, SchemeError};
use simnet::{mix, FaultPlan, NetModel, NodeId, TraceEvent, TraceSink};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Salt separating retry-attempt seeds and backoff jitter from the base
/// query-seed stream.
const RETRY_SALT: u64 = 0x4e74_4e74_4e74_4e74;

/// Salt deriving virtual destination identities on the generic
/// response-plane path.
const SLOT_SALT: u64 = 0x510f_510f_510f_510f;

/// A seeded retry/timeout policy: how many times a query is attempted and
/// what each wait costs in virtual milliseconds.
///
/// The backoff before attempt `k` is a **pure function** of
/// `(seed, query, k)` — exponential in `k` with hash jitter, no RNG
/// stream — so two drivers with different thread counts produce identical
/// retry traces (see [`RetryPolicy::backoff_wait`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per query (1 = no retries).
    pub attempts: u32,
    /// Virtual milliseconds waited before declaring an attempt failed.
    pub timeout_ms: u64,
    /// Base backoff quantum in virtual milliseconds; attempt `k`'s wait
    /// doubles it `k−1` times and adds hash jitter in `[0, backoff_ms)`.
    pub backoff_ms: u64,
}

impl RetryPolicy {
    /// Defaults accompanying an `rN` spelling: 40 ms timeout, 10 ms
    /// backoff quantum.
    const DEFAULT_TIMEOUT_MS: u64 = 40;
    const DEFAULT_BACKOFF_MS: u64 = 10;

    /// The no-retry policy: one attempt, zero waits.
    pub fn none() -> Self {
        RetryPolicy { attempts: 1, timeout_ms: 0, backoff_ms: 0 }
    }

    /// A policy of `attempts` attempts with the default timeout/backoff.
    ///
    /// # Panics
    ///
    /// Panics unless `attempts ≥ 1`.
    pub fn with_attempts(attempts: u32) -> Self {
        assert!(attempts >= 1, "a query is always attempted at least once");
        RetryPolicy {
            attempts,
            timeout_ms: Self::DEFAULT_TIMEOUT_MS,
            backoff_ms: Self::DEFAULT_BACKOFF_MS,
        }
    }

    /// Parses the registry's retry spelling: `rN` with `1 ≤ N ≤ 9`.
    pub fn named(name: &str) -> Option<RetryPolicy> {
        let n = name.strip_prefix('r')?;
        let attempts: u32 = n.parse().ok().filter(|a| (1..=9).contains(a))?;
        Some(RetryPolicy::with_attempts(attempts))
    }

    /// Whether the policy never retries (single attempt).
    pub fn is_none(&self) -> bool {
        self.attempts <= 1
    }

    /// The backoff wait (virtual ms) paid before retry attempt `attempt`
    /// (1-based; attempt 0 is the initial try and waits nothing): the
    /// base quantum doubled `attempt − 1` times, plus hash jitter in
    /// `[0, backoff_ms)`. A pure function of `(seed, query, attempt)` —
    /// identical traces on every thread count.
    pub fn backoff_wait(&self, seed: u64, query: u64, attempt: u32) -> u64 {
        if attempt == 0 || self.backoff_ms == 0 {
            return 0;
        }
        let doubled = self.backoff_ms << (attempt - 1).min(16);
        let jitter = mix(seed ^ RETRY_SALT, query, attempt as u64) % self.backoff_ms;
        doubled + jitter
    }

    /// The scheme seed used by attempt `attempt` of a query issued with
    /// `seed`: attempt 0 uses the seed untouched (so a 1-attempt hostile
    /// run reproduces the no-retry run bit for bit), and each retry mixes
    /// the attempt index in so native simulations re-roll their loss
    /// verdicts.
    pub fn attempt_seed(seed: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            seed
        } else {
            mix(seed ^ RETRY_SALT, attempt as u64, 1)
        }
    }
}

/// The hostile-network control surface exposed through
/// [`RangeScheme::as_hostile`]: epoch drivers advance the wrapped fault
/// plan's partition epoch between query epochs, serially, so the epoch a
/// query observes is a pure function of its global index.
pub trait HostileControl {
    /// Advances the wrapped fault plan's partition epoch.
    fn set_epoch(&mut self, epoch: u64);

    /// The current partition epoch.
    fn epoch(&self) -> u64;

    /// The wrapped fault plan.
    fn fault_plan(&self) -> &FaultPlan;

    /// The wrapped retry policy.
    fn retry_policy(&self) -> RetryPolicy;
}

/// Parses a registry hostile suffix `plan[/rN]` (e.g. `"lossy-p"`,
/// `"split-brain/r3"`) into its fault plan — seeded by the plan name, so
/// two plans' verdict streams decorrelate — and optional retry override.
pub(crate) fn parse_hostile_spec(spec: &str) -> Option<(FaultPlan, Option<RetryPolicy>)> {
    let (plan_name, retry) = match spec.split_once('/') {
        None => (spec, None),
        Some((p, r)) => (p, Some(RetryPolicy::named(r)?)),
    };
    let plan = FaultPlan::named_hostile(plan_name)?;
    Some((plan.with_plan_seed(crate::fnv1a(plan_name.as_bytes())), retry))
}

/// A scheme wrapped with a hostile fault plan and a retry policy — see
/// the module docs at the top of this file for the two execution paths.
pub struct Hostile {
    inner: Box<dyn RangeScheme>,
    plan: FaultPlan,
    retry: RetryPolicy,
    /// The scheme's network cost model, so partition sides stay
    /// cluster-model-aware on the generic path too.
    net: NetModel,
    /// The suffix spelling, for substrate annotations.
    spec: String,
    /// Retry attempts actually executed (initial tries not counted) —
    /// surfaced through [`RangeScheme::retry_attempts`] so drivers can
    /// meter retry traffic. Relaxed atomic: increments commute, so the
    /// total is thread-count- and shard-order-invariant.
    retries: AtomicU64,
}

/// What the generic response-plane path did beyond the fault-free base
/// query — the trace plane's raw material.
#[derive(Default)]
struct GenericLog {
    /// `(attempt, retransmissions, wait_ms, exact_after)` per executed
    /// retry attempt.
    retries: Vec<(u32, u64, u64, bool)>,
    /// Rate-limit queueing charged on the origin's message overflow.
    queue_delay: u64,
}

impl Hostile {
    /// Wraps `inner` with a fault plan and retry policy. `net` is the
    /// model the scheme was built with (partition side assignment follows
    /// its cluster groups); `spec` is the display spelling (e.g.
    /// `"lossy-p/r2"`).
    ///
    /// # Errors
    ///
    /// [`SchemeError::FaultPlanOutOfRange`] when the plan crashes a peer
    /// id outside `0..inner.node_count()` — rejected here instead of
    /// silently ignoring the no-op entry.
    pub fn new(
        inner: Box<dyn RangeScheme>,
        plan: FaultPlan,
        retry: RetryPolicy,
        net: NetModel,
        spec: impl Into<String>,
    ) -> Result<Hostile, SchemeError> {
        if let Some(node) = plan.first_out_of_range(inner.node_count()) {
            return Err(SchemeError::FaultPlanOutOfRange { node, n: inner.node_count() });
        }
        Ok(Hostile { inner, plan, retry, net, spec: spec.into(), retries: AtomicU64::new(0) })
    }

    /// Native path: every attempt runs the inner scheme's own faulted
    /// simulation under the wrapped plan; retries re-roll verdicts via
    /// their mixed attempt seed.
    fn native_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        let mut merged: Option<RangeOutcome> = None;
        let mut waits = 0u64;
        for attempt in 0..self.retry.attempts {
            let aseed = RetryPolicy::attempt_seed(seed, attempt);
            let out = self.inner.range_query_with_faults(origin, lo, hi, aseed, &self.plan)?;
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            let acc = match merged.take() {
                None => out,
                Some(acc) => merge_attempts(acc, out),
            };
            let exact = acc.exact;
            merged = Some(acc);
            if exact {
                break;
            }
            if attempt + 1 < self.retry.attempts {
                waits += self.retry.timeout_ms
                    + self.retry.backoff_wait(self.plan.plan_seed(), seed, attempt + 1);
            }
        }
        let mut out = merged.expect("at least one attempt always runs");
        out.latency += waits;
        Ok(out)
    }

    /// The native path with tracing: same attempt loop, same merge, same
    /// wait accounting as [`native_query`](Self::native_query) — plus each
    /// attempt's event stream spliced onto one merged timeline (later
    /// attempts offset by the accumulated latency + waits), a
    /// [`TraceEvent::RetryAttempt`] stamp per executed retry, and a cost
    /// tree of per-attempt subtrees whose totals telescope to the merged
    /// outcome.
    fn native_trace(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, QueryTrace), SchemeError> {
        let mut merged: Option<RangeOutcome> = None;
        let mut waits = 0u64;
        let mut timeline = 0u64;
        let mut sink = TraceSink::new();
        let mut root =
            CostNode::group(format!("{} [hostile: {}]", self.inner.scheme_name(), self.spec));
        for attempt in 0..self.retry.attempts {
            let aseed = RetryPolicy::attempt_seed(seed, attempt);
            let (out, tr) =
                self.inner.trace_query_with_faults(origin, lo, hi, aseed, &self.plan)?;
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            let attempt_latency = out.latency;
            let acc = match merged.take() {
                None => out,
                Some(acc) => merge_attempts(acc, out),
            };
            let exact = acc.exact;
            merged = Some(acc);
            if attempt > 0 {
                let wait = self.retry.timeout_ms
                    + self.retry.backoff_wait(self.plan.plan_seed(), seed, attempt);
                timeline += wait;
                sink.emit(timeline, TraceEvent::RetryAttempt { attempt, wait_ms: wait, exact });
            }
            sink.append_offset(tr.events, timeline);
            timeline += attempt_latency;
            let mut node = tr.root;
            node.label = format!("attempt {attempt}: {}", node.label);
            root.children.push(node);
            if exact {
                break;
            }
            if attempt + 1 < self.retry.attempts {
                waits += self.retry.timeout_ms
                    + self.retry.backoff_wait(self.plan.plan_seed(), seed, attempt + 1);
            }
        }
        let mut out = merged.expect("at least one attempt always runs");
        out.latency += waits;
        if waits > 0 {
            root.children.push(CostNode::leaf(
                format!("retry waits (+{waits} ms timeout + backoff)"),
                0,
                waits,
                0,
            ));
        }
        Ok((out, QueryTrace { events: sink.into_records(), root }))
    }

    /// Generic path: answer fault-free, then degrade the response plane —
    /// see the module docs for the slot model.
    fn generic_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        let base = self.inner.range_query(origin, lo, hi, seed)?;
        Ok(self.degrade(origin, seed, base, None))
    }

    /// The generic path with tracing: the inner scheme's own trace covers
    /// the fault-free base query; the degradation's extra charges — one
    /// retransmission batch + wait per executed retry, rate-limit
    /// queueing — append as their own cost nodes, so the tree's total
    /// telescopes to the degraded outcome.
    fn generic_trace(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, QueryTrace), SchemeError> {
        let (base, mut trace) = self.inner.trace_query(origin, lo, hi, seed)?;
        let base_latency = base.latency;
        let mut log = GenericLog::default();
        let out = self.degrade(origin, seed, base, Some(&mut log));
        let inner_root = std::mem::replace(
            &mut trace.root,
            CostNode::group(format!(
                "{} [hostile: {} — response-plane degradation]",
                self.inner.scheme_name(),
                self.spec
            )),
        );
        trace.root.children.push(inner_root);
        let mut sink = TraceSink::new();
        let mut t = 0u64;
        for &(attempt, resend, wait, exact) in &log.retries {
            t += wait;
            sink.emit(t, TraceEvent::RetryAttempt { attempt, wait_ms: wait, exact });
            trace.root.children.push(CostNode::leaf(
                format!("retry attempt {attempt}: {resend} retransmissions (+{wait} ms wait)"),
                0,
                wait,
                resend,
            ));
        }
        if log.queue_delay > 0 {
            trace.root.children.push(CostNode::leaf(
                format!("rate-limit queueing (+{} ms)", log.queue_delay),
                0,
                log.queue_delay,
                0,
            ));
        }
        trace.append_events(sink.into_records(), base_latency);
        Ok((out, trace))
    }

    /// The response-plane degradation shared by
    /// [`generic_query`](Self::generic_query) and
    /// [`generic_trace`](Self::generic_trace) — see the module docs for
    /// the slot model. When `log` is present every executed retry and the
    /// rate-limit charge are recorded; the outcome is identical either
    /// way.
    fn degrade(
        &self,
        origin: NodeId,
        seed: u64,
        base: RangeOutcome,
        mut log: Option<&mut GenericLog>,
    ) -> RangeOutcome {
        let dest = base.dest_peers;
        if dest == 0 {
            return base;
        }
        let n = self.inner.node_count().max(1) as u64;
        let pseed = self.plan.plan_seed();
        // Virtual peer identity of a destination slot: pure in
        // (plan, query seed, slot), stable across attempts.
        let vid = |slot: usize| (mix(pseed ^ SLOT_SALT, seed, slot as u64) % n) as NodeId;
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        let mut messages = base.messages;
        let mut waits = 0u64;
        for attempt in 0..self.retry.attempts {
            if attempt > 0 {
                // One retransmit per still-unanswered destination, paid
                // after the timeout + backoff wait.
                let resend = (dest - reached.len()) as u64;
                let wait = self.retry.timeout_ms + self.retry.backoff_wait(pseed, seed, attempt);
                messages += resend;
                waits += wait;
                self.retries.fetch_add(1, Ordering::Relaxed);
                if let Some(log) = log.as_deref_mut() {
                    log.retries.push((attempt, resend, wait, false));
                }
            }
            for slot in 0..dest {
                if reached.contains(&slot) {
                    continue;
                }
                let peer = vid(slot);
                if peer == origin {
                    reached.insert(slot);
                    continue;
                }
                if self.plan.is_crashed(peer) {
                    continue;
                }
                let severed = self
                    .plan
                    .partition()
                    .is_some_and(|p| p.severed(pseed, self.plan.epoch(), origin, peer, &self.net));
                if severed {
                    continue;
                }
                let lost = self
                    .plan
                    .loss()
                    .is_some_and(|l| l.lost(pseed ^ seed, origin, peer, attempt as u64));
                if !lost {
                    reached.insert(slot);
                }
            }
            if attempt > 0 {
                if let Some(log) = log.as_deref_mut() {
                    if let Some(last) = log.retries.last_mut() {
                        last.3 = base.exact && reached.len() == dest;
                    }
                }
            }
            if reached.len() == dest {
                break;
            }
        }
        let all = reached.len() == dest;
        let results = if all {
            base.results
        } else {
            // Result j belongs to slot j mod dest — a stable assignment,
            // so the surviving subset is deterministic (and stays sorted).
            base.results
                .iter()
                .enumerate()
                .filter(|(j, _)| reached.contains(&(j % dest)))
                .map(|(_, &h)| h)
                .collect()
        };
        let mut latency = base.latency + waits;
        if let Some(rl) = self.plan.rate_limit() {
            // The origin's last message queues longest; its delay is the
            // critical-path contribution.
            let queued = rl.queue_delay(messages);
            latency += queued;
            if let Some(log) = log {
                log.queue_delay = queued;
            }
        }
        RangeOutcome {
            results,
            delay: base.delay,
            latency,
            messages,
            dest_peers: dest,
            reached_peers: reached.len(),
            exact: base.exact && all,
        }
    }
}

/// Merges a later native attempt into the accumulated outcome: results
/// union (sorted, deduplicated), additive traffic and critical paths,
/// best-attempt reach.
fn merge_attempts(acc: RangeOutcome, next: RangeOutcome) -> RangeOutcome {
    let mut results = acc.results;
    results.extend(next.results);
    results.sort_unstable();
    results.dedup();
    RangeOutcome {
        results,
        delay: acc.delay + next.delay,
        latency: acc.latency + next.latency,
        messages: acc.messages + next.messages,
        dest_peers: acc.dest_peers.max(next.dest_peers),
        reached_peers: acc.reached_peers.max(next.reached_peers),
        exact: acc.exact || next.exact,
    }
}

impl RangeScheme for Hostile {
    fn scheme_name(&self) -> &'static str {
        self.inner.scheme_name()
    }

    fn substrate(&self) -> String {
        format!("{} [hostile: {}]", self.inner.substrate(), self.spec)
    }

    fn degree(&self) -> String {
        self.inner.degree()
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn supports_rect(&self) -> bool {
        self.inner.supports_rect()
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.inner.publish(value, handle)
    }

    fn random_origin(&self, rng: &mut rand::rngs::SmallRng) -> NodeId {
        self.inner.random_origin(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if self.inner.supports_fault_injection() {
            self.native_query(origin, lo, hi, seed)
        } else {
            self.generic_query(origin, lo, hi, seed)
        }
    }

    fn supports_tracing(&self) -> bool {
        self.inner.supports_tracing()
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, QueryTrace), SchemeError> {
        if self.inner.supports_fault_injection() {
            self.native_trace(origin, lo, hi, seed)
        } else {
            self.generic_trace(origin, lo, hi, seed)
        }
    }

    fn retry_attempts(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn as_dynamic(&mut self) -> Option<&mut dyn crate::DynamicScheme> {
        self.inner.as_dynamic()
    }

    fn as_replica_routing(&self) -> Option<&dyn crate::ReplicaRouting> {
        self.inner.as_replica_routing()
    }

    fn as_replicated(&mut self) -> Option<&mut dyn crate::ReplicationControl> {
        self.inner.as_replicated()
    }

    fn as_hostile(&mut self) -> Option<&mut dyn HostileControl> {
        Some(self)
    }
}

impl HostileControl for Hostile {
    fn set_epoch(&mut self, epoch: u64) {
        self.plan.set_epoch(epoch);
    }

    fn epoch(&self) -> u64 {
        self.plan.epoch()
    }

    fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A toy exact scheme: every query spans `dest` destinations and
    /// returns one handle per destination slot.
    struct Toy {
        n: usize,
        dest: usize,
    }

    impl RangeScheme for Toy {
        fn scheme_name(&self) -> &'static str {
            "toy"
        }
        fn substrate(&self) -> String {
            "toy".into()
        }
        fn degree(&self) -> String {
            "0".into()
        }
        fn node_count(&self) -> usize {
            self.n
        }
        fn publish(&mut self, _: f64, _: u64) -> Result<(), SchemeError> {
            Ok(())
        }
        fn random_origin(&self, rng: &mut rand::rngs::SmallRng) -> NodeId {
            rng.gen_range(0..self.n)
        }
        fn range_query(
            &self,
            _origin: NodeId,
            _lo: f64,
            _hi: f64,
            _seed: u64,
        ) -> Result<RangeOutcome, SchemeError> {
            Ok(RangeOutcome {
                results: (0..self.dest as u64).collect(),
                delay: 3,
                latency: 3,
                messages: self.dest as u64,
                dest_peers: self.dest,
                reached_peers: self.dest,
                exact: true,
            })
        }
        fn supports_tracing(&self) -> bool {
            true
        }
        fn trace_query(
            &self,
            origin: NodeId,
            lo: f64,
            hi: f64,
            seed: u64,
        ) -> Result<(RangeOutcome, QueryTrace), SchemeError> {
            let out = self.range_query(origin, lo, hi, seed)?;
            let trace = QueryTrace::modeled("toy", origin, &out);
            Ok((out, trace))
        }
    }

    /// A toy *native-fault* scheme: supports fault injection and tracing,
    /// and always comes back inexact so every retry attempt executes.
    struct NativeToy;

    impl NativeToy {
        fn outcome() -> RangeOutcome {
            RangeOutcome {
                results: vec![1, 2, 3],
                delay: 2,
                latency: 5,
                messages: 4,
                dest_peers: 4,
                reached_peers: 3,
                exact: false,
            }
        }
    }

    impl RangeScheme for NativeToy {
        fn scheme_name(&self) -> &'static str {
            "native-toy"
        }
        fn substrate(&self) -> String {
            "toy".into()
        }
        fn degree(&self) -> String {
            "0".into()
        }
        fn node_count(&self) -> usize {
            8
        }
        fn publish(&mut self, _: f64, _: u64) -> Result<(), SchemeError> {
            Ok(())
        }
        fn random_origin(&self, _: &mut rand::rngs::SmallRng) -> NodeId {
            0
        }
        fn range_query(
            &self,
            _: NodeId,
            _: f64,
            _: f64,
            _: u64,
        ) -> Result<RangeOutcome, SchemeError> {
            Ok(Self::outcome())
        }
        fn supports_fault_injection(&self) -> bool {
            true
        }
        fn range_query_with_faults(
            &self,
            origin: NodeId,
            lo: f64,
            hi: f64,
            seed: u64,
            _faults: &FaultPlan,
        ) -> Result<RangeOutcome, SchemeError> {
            self.range_query(origin, lo, hi, seed)
        }
        fn supports_tracing(&self) -> bool {
            true
        }
        fn trace_query(
            &self,
            origin: NodeId,
            lo: f64,
            hi: f64,
            seed: u64,
        ) -> Result<(RangeOutcome, QueryTrace), SchemeError> {
            let out = self.range_query(origin, lo, hi, seed)?;
            let trace = QueryTrace::modeled("native-toy", origin, &out);
            Ok((out, trace))
        }
        fn trace_query_with_faults(
            &self,
            origin: NodeId,
            lo: f64,
            hi: f64,
            seed: u64,
            _faults: &FaultPlan,
        ) -> Result<(RangeOutcome, QueryTrace), SchemeError> {
            self.trace_query(origin, lo, hi, seed)
        }
    }

    fn hostile(plan_name: &str, attempts: u32) -> Hostile {
        let (plan, _) = parse_hostile_spec(plan_name).unwrap();
        let retry =
            if attempts <= 1 { RetryPolicy::none() } else { RetryPolicy::with_attempts(attempts) };
        Hostile::new(Box::new(Toy { n: 64, dest: 16 }), plan, retry, NetModel::unit(), plan_name)
            .unwrap()
    }

    #[test]
    fn retry_policy_parses_and_bounds() {
        assert_eq!(RetryPolicy::named("r1"), Some(RetryPolicy::with_attempts(1)));
        assert_eq!(RetryPolicy::named("r3").unwrap().attempts, 3);
        for bad in ["r0", "r10", "r", "x3", "3"] {
            assert!(RetryPolicy::named(bad).is_none(), "{bad} must not parse");
        }
        assert!(RetryPolicy::none().is_none());
        assert!(!RetryPolicy::with_attempts(2).is_none());
    }

    #[test]
    fn backoff_is_a_pure_function_of_seed_query_attempt() {
        let p = RetryPolicy::with_attempts(4);
        for (seed, query, attempt) in [(1u64, 2u64, 1u32), (9, 9, 2), (0, 7, 3)] {
            assert_eq!(
                p.backoff_wait(seed, query, attempt),
                p.backoff_wait(seed, query, attempt),
                "backoff must be replayable"
            );
        }
        // Attempt 0 (the initial try) waits nothing; later attempts grow
        // exponentially in expectation.
        assert_eq!(p.backoff_wait(5, 5, 0), 0);
        let w1 = p.backoff_wait(5, 5, 1);
        let w3 = p.backoff_wait(5, 5, 3);
        assert!((p.backoff_ms..2 * p.backoff_ms).contains(&w1), "w1 = {w1}");
        assert!(w3 >= 4 * p.backoff_ms, "w3 = {w3}");
        // Different queries jitter differently (for at least one pair).
        assert!(
            (0..32).any(|q| p.backoff_wait(5, q, 1) != p.backoff_wait(5, q + 32, 1)),
            "jitter must depend on the query"
        );
    }

    #[test]
    fn attempt_zero_reproduces_the_base_seed() {
        assert_eq!(RetryPolicy::attempt_seed(42, 0), 42);
        assert_ne!(RetryPolicy::attempt_seed(42, 1), 42);
        assert_ne!(RetryPolicy::attempt_seed(42, 1), RetryPolicy::attempt_seed(42, 2));
    }

    #[test]
    fn hostile_spec_grammar_round_trips() {
        let (plan, retry) = parse_hostile_spec("lossy-p").unwrap();
        assert!(plan.loss().is_some());
        assert!(retry.is_none());
        let (plan, retry) = parse_hostile_spec("split-brain/r3").unwrap();
        assert!(plan.partition().is_some());
        assert_eq!(retry.unwrap().attempts, 3);
        // Plan seeds are name-derived, so verdict streams decorrelate.
        let (a, _) = parse_hostile_spec("lossy-p").unwrap();
        let (b, _) = parse_hostile_spec("bursty").unwrap();
        assert_ne!(a.plan_seed(), b.plan_seed());
        for bad in ["nope", "lossy-p/r0", "lossy-p/x2", "lossy-p/r2/r3"] {
            assert!(parse_hostile_spec(bad).is_none(), "{bad} must not parse");
        }
    }

    #[test]
    fn out_of_range_crash_plans_are_rejected_at_wrap_time() {
        let mut plan = FaultPlan::new();
        plan.crash(64); // Toy has peers 0..64
        let err = Hostile::new(
            Box::new(Toy { n: 64, dest: 4 }),
            plan,
            RetryPolicy::none(),
            NetModel::unit(),
            "crash",
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err, SchemeError::FaultPlanOutOfRange { node: 64, n: 64 });
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn loss_degrades_and_retries_recover_monotonically() {
        let mut prev_recall = 0.0;
        let mut prev_messages = 0u64;
        for attempts in 1..=4u32 {
            let h = hostile("lossy-30", attempts);
            let mut recall_sum = 0.0;
            let mut messages = 0u64;
            for q in 0..50u64 {
                let out = h.range_query(0, 0.0, 1.0, q).unwrap();
                recall_sum += out.peer_recall();
                messages += out.messages;
                assert_eq!(out.results.len(), {
                    // Results map to slots stably: exactly the reached
                    // slots' handles survive.
                    out.reached_peers
                });
            }
            let recall = recall_sum / 50.0;
            assert!(
                recall >= prev_recall,
                "recall must be monotone in attempts: {recall} < {prev_recall}"
            );
            assert!(messages >= prev_messages, "messages must be monotone in attempts");
            prev_recall = recall;
            prev_messages = messages;
        }
        // One attempt under 30% loss loses something across 50 queries;
        // four attempts recover almost everything.
        assert!(prev_recall > 0.95, "4 attempts at 30% loss: recall = {prev_recall}");
    }

    #[test]
    fn partition_severs_during_the_interval_and_heals_after() {
        let mut h = hostile("split-brain", 1);
        let fault_free = |h: &Hostile| {
            (0..40u64).all(|q| {
                let out = h.range_query(0, 0.0, 1.0, q).unwrap();
                out.exact && out.peer_recall() == 1.0
            })
        };
        // split-brain opens at epoch 1 and heals at 3.
        assert!(fault_free(&h), "closed before open_epoch");
        h.set_epoch(1);
        let dropped = (0..40u64)
            .filter(|&q| h.range_query(0, 0.0, 1.0, q).unwrap().peer_recall() < 1.0)
            .count();
        assert!(dropped > 10, "split must sever a good share of queries: {dropped}/40");
        h.set_epoch(3);
        assert!(fault_free(&h), "healed at heal_epoch");
    }

    #[test]
    fn retries_cannot_cross_an_open_partition() {
        let mut h = hostile("split-brain", 4);
        h.set_epoch(1);
        let single = {
            let mut s = hostile("split-brain", 1);
            s.set_epoch(1);
            s
        };
        for q in 0..40u64 {
            let once = single.range_query(0, 0.0, 1.0, q).unwrap();
            let retried = h.range_query(0, 0.0, 1.0, q).unwrap();
            assert_eq!(
                retried.reached_peers, once.reached_peers,
                "query {q}: retries must not reach across a severed edge"
            );
        }
    }

    #[test]
    fn rate_limit_prices_latency_only() {
        let h = hostile("throttle", 1);
        let out = h.range_query(0, 0.0, 1.0, 7).unwrap();
        // Toy sends 16 messages against an 8-message bucket at 5 ms.
        assert_eq!(out.messages, 16);
        assert_eq!(out.latency, 3 + (16 - 8) * 5);
        assert_eq!(out.delay, 3, "hop metrics never move");
        assert!(out.exact, "throttling delays, it does not lose");
    }

    #[test]
    fn waits_price_into_latency_not_hops() {
        let h = hostile("lossy-50", 3);
        for q in 0..20u64 {
            let out = h.range_query(0, 0.0, 1.0, q).unwrap();
            assert_eq!(out.delay, 3, "query {q}: retry waits must not add hops");
            if out.messages > 16 {
                // A retry happened: its timeout + backoff is in latency.
                assert!(out.latency >= 3 + h.retry.timeout_ms, "query {q}");
            }
        }
    }

    #[test]
    fn traced_generic_query_matches_untraced_and_keeps_the_invariant() {
        let h = hostile("lossy-30", 3);
        assert!(h.supports_tracing());
        assert_eq!(h.retry_attempts(), 0);
        let mut saw_retry_event = false;
        for q in 0..20u64 {
            let plain = h.range_query(0, 0.0, 1.0, q).unwrap();
            let (traced, tr) = h.trace_query(0, 0.0, 1.0, q).unwrap();
            assert_eq!(plain, traced, "query {q}: tracing must not perturb the outcome");
            assert_eq!(
                tr.root.total(),
                (traced.delay, traced.latency, traced.messages),
                "query {q}: explain totals must reproduce the degraded outcome"
            );
            saw_retry_event |=
                tr.events.iter().any(|r| matches!(r.event, TraceEvent::RetryAttempt { .. }));
        }
        assert!(saw_retry_event, "30% loss over 20 queries must execute some retry");
        assert!(h.retry_attempts() > 0, "executed retries must meter");
    }

    #[test]
    fn traced_throttle_charges_queueing_as_its_own_node() {
        let h = hostile("throttle", 1);
        let plain = h.range_query(0, 0.0, 1.0, 7).unwrap();
        let (traced, tr) = h.trace_query(0, 0.0, 1.0, 7).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(tr.root.total(), (traced.delay, traced.latency, traced.messages));
        assert!(tr.explain_text().contains("rate-limit queueing"), "{}", tr.explain_text());
    }

    #[test]
    fn traced_native_retries_splice_attempts_onto_one_timeline() {
        let (plan, _) = parse_hostile_spec("lossy-p").unwrap();
        let h = Hostile::new(
            Box::new(NativeToy),
            plan,
            RetryPolicy::with_attempts(3),
            NetModel::unit(),
            "lossy-p/r3",
        )
        .unwrap();
        let plain = h.range_query(0, 0.0, 1.0, 7).unwrap();
        let (traced, tr) = h.trace_query(0, 0.0, 1.0, 7).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the merged outcome");
        assert_eq!(tr.root.total(), (traced.delay, traced.latency, traced.messages));
        // All three attempts ran (NativeToy is never exact): two retry
        // stamps, and attempt events pushed into the future by the
        // accumulated latency + waits.
        let retry_events: Vec<u64> = tr
            .events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RetryAttempt { .. }))
            .map(|r| r.time)
            .collect();
        assert_eq!(retry_events.len(), 2);
        assert!(retry_events[1] > retry_events[0], "attempts sit on one merged timeline");
        let text = tr.explain_text();
        assert!(text.contains("attempt 0:"), "{text}");
        assert!(text.contains("attempt 2:"), "{text}");
        assert!(text.contains("retry waits"), "{text}");
        // Both runs executed 2 retries each.
        assert_eq!(h.retry_attempts(), 4);
    }

    #[test]
    fn control_surface_exposes_plan_and_policy() {
        let mut h = hostile("island-3", 2);
        assert_eq!(h.epoch(), 0);
        h.set_epoch(5);
        assert_eq!(h.epoch(), 5);
        assert_eq!(h.fault_plan().partition().unwrap().islands(), 3);
        assert_eq!(h.retry_policy().attempts, 2);
        assert_eq!(h.scheme_name(), "toy");
        assert!(h.substrate().contains("hostile"));
        let hook: &mut dyn RangeScheme = &mut h;
        assert!(hook.as_hostile().is_some());
    }
}
