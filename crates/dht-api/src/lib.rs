//! The workspace's query-facing contract: one trait, one outcome type, one
//! driver for every range-query scheme.
//!
//! The Armada paper's taxonomy (§2) distinguishes schemes that modify the
//! DHT from **general** schemes built entirely on the standard exact-match
//! interface; its evaluation (Table 1, Figures 5–8) then *compares* seven
//! schemes on identical workloads. This crate carries both halves of that
//! structure:
//!
//! * [`Dht`] — the minimal exact-match interface a layered scheme (PHT)
//!   consumes: keyed routing with hop accounting, implemented by `fissione`
//!   (constant degree) and `chord` (logarithmic degree).
//! * [`RangeScheme`] / [`MultiRangeScheme`] — the unified query interface
//!   every scheme in the workspace implements, returning the shared
//!   [`RangeOutcome`] metric vocabulary.
//! * [`SchemeRegistry`] — name → builder tables so callers select schemes
//!   at runtime as trait objects.
//! * [`QueryDriver`] — a batched serial workload runner aggregating
//!   [`RangeOutcome`]s into [`DriverReport`] summary statistics.
//! * [`WorkloadGen`] — named, seeded query mixes (uniform, Zipf-skewed hot
//!   ranges, clustered, wide scans, correlated rectangles, a production
//!   blend), addressed by query *index* so a workload is identical however
//!   it is sharded.
//! * [`ParallelDriver`] — the sharded driver: fans a batch across OS
//!   threads over one shared `&dyn` scheme and merges per-thread
//!   [`Summary`](simnet::Summary) statistics deterministically — the same
//!   report for any thread count.
//! * [`DynamicScheme`] / [`DynamicDht`] — the dynamics layer: churn
//!   primitives (`join`/`leave`/`crash`/`stabilize`) a scheme exposes
//!   through [`RangeScheme::as_dynamic`] when its substrate supports
//!   membership change, with the stabilize guarantee that queries are
//!   exact again afterwards.
//! * [`ChurnPlan`] — named, seeded membership-dynamics plans (join storms,
//!   leave storms, flash crowds, steady churn, crash massacres) whose
//!   events are pure functions of `(plan, seed, epoch)`; driven by
//!   [`ParallelDriver::run_epochs`], which interleaves sharded query
//!   epochs with serial membership events and reports a per-epoch
//!   recall/exactness/delay series.
//! * [`ReplicaPolicy`] / [`Replicated`] — the replication layer: named,
//!   deterministic replica placement (`none`, `successor-r`,
//!   `neighbor-set-r`) composable over any scheme that exposes
//!   [`ReplicaRouting`], answering range queries from any live replica
//!   mid-churn and re-replicating after membership events
//!   ([`ReplicationControl`]), with repair traffic reported per epoch.
//! * [`RetryPolicy`] / [`Hostile`] — the hostile-network layer: named
//!   fault plans (per-edge loss, partitions, rate limits — see
//!   [`simnet::FaultPlan`]) and seeded retry/timeout policies composable
//!   over any scheme via `"pira@lossy-p/r2"`-style registry suffixes,
//!   every verdict a pure hash so faulted reports stay bitwise
//!   thread-count-invariant; epoch drivers advance partition epochs
//!   through [`HostileControl`].
//!
//! # Metric vocabulary (§4.3.3 of the paper)
//!
//! Every outcome and report speaks the paper's evaluation language:
//!
//! * **delay** — critical-path length of the query in overlay hops under
//!   unit per-hop latency ([`RangeOutcome::delay`]).
//! * **latency** — critical-path virtual time in milliseconds under the
//!   scheme's [`NetModel`] ([`RangeOutcome::latency`]): the same message
//!   paths, priced edge by edge. Hop metrics are model-invariant; this is
//!   the figure that moves when the network is not the unit-cost one.
//! * **messages** — total protocol messages sent
//!   ([`RangeOutcome::messages`]).
//! * **Destpeers** — ground-truth count of peers whose region intersects
//!   the query ([`RangeOutcome::dest_peers`]).
//! * **MesgRatio** = `Messages / Destpeers`
//!   ([`RangeOutcome::mesg_ratio`]) — messages paid per useful
//!   destination; 1.0 is perfect targeting.
//! * **IncreRatio** = `(Messages − log₂N) / (Destpeers − 1)`
//!   ([`RangeOutcome::incre_ratio`]) — the *marginal* message cost per
//!   additional destination once the first one is reached.
//! * **peer recall** = `reached / Destpeers`
//!   ([`RangeOutcome::peer_recall`]) — completeness under faults (1.0 on
//!   fault-free runs of exact schemes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod digest;
mod driver;
mod dynamics;
mod explain;
mod hostile;
mod metrics;
mod parallel;
mod registry;
mod replication;
mod scheme;
mod workload;

pub use churn::{ChurnEvent, ChurnPlan, ChurnStats, CHURN_PLAN_NAMES};
pub use digest::DigestReport;
pub use driver::{DriverReport, EpochSummary, QueryDriver};
pub use dynamics::{DynamicDht, DynamicScheme};
pub use explain::{CostNode, QueryTrace};
pub use hostile::{Hostile, HostileControl, RetryPolicy};
pub use metrics::{Histogram, LoadSkew, MetricsRegistry, HISTOGRAM_BOUNDS};
pub use parallel::{default_threads, ParallelDriver};
pub use registry::{BuildParams, MultiBuildParams, MultiBuilder, SchemeRegistry, SingleBuilder};
pub use replication::{
    ring_owners, value_key, FetchCost, ReplicaKind, ReplicaPolicy, ReplicaRepair, ReplicaRouting,
    Replicated, ReplicationControl,
};
pub use scheme::{MultiRangeScheme, OutcomeCosts, RangeOutcome, RangeScheme, SchemeError};
pub use workload::{WorkloadGen, WorkloadKind, WORKLOAD_NAMES};

// The observability plane's event vocabulary. Defined in `simnet` (the
// simulator emits the events), re-exported here because the explain layer
// and every traced scheme speak it.
pub use simnet::{HopKind, TraceEvent, TraceRecord, TraceSink, Verdict};

// The network cost-model layer. `NetModel` is defined in `simnet` (the
// simulator charges edge costs as messages are scheduled, and `simnet`
// cannot depend on this crate), but it is part of this crate's query
// contract: `BuildParams::net` selects it, every scheme accumulates its
// edge costs into `RangeOutcome::latency`, and registry names accept
// `"pira@wan"`-style suffixes. The hostile fault catalog re-exports for
// the same reason: registry names accept `"pira@lossy-p/r2"`-style
// suffixes resolved against `FaultPlan::named_hostile`.
pub use simnet::{NetModel, NetModelKind, HOSTILE_PLAN_NAMES, NET_MODEL_NAMES};

use rand::rngs::SmallRng;
use simnet::NodeId;

/// A routed exact-match lookup: the owner found and the overlay hops paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Peer responsible for the key.
    pub owner: NodeId,
    /// Overlay hops from the source to the owner.
    pub hops: usize,
}

/// The exact-match interface a layered scheme consumes.
///
/// Keys are opaque `u64`s (layered schemes hash their labels into this
/// space); the DHT maps each key deterministically onto one live peer.
///
/// `Send + Sync` are supertraits: routing takes `&self`, and a layered
/// scheme (e.g. PHT) can only satisfy [`RangeScheme`]'s thread-safety
/// contract if its substrate satisfies the same one — which every routing
/// table without interior mutability does for free.
pub trait Dht: Send + Sync {
    /// Routes from `from` to the peer owning `key`.
    fn route_key(&self, from: NodeId, key: u64) -> Lookup;

    /// [`route_key`](Dht::route_key) with the traversed path's virtual
    /// latency under `net`: returns the lookup and the summed
    /// [`NetModel::edge_cost`] of every edge actually routed through.
    ///
    /// **Accuracy:** the default implementation cannot see the substrate's
    /// hop-by-hop path, so it prices each of the `hops` edges at the cost
    /// of the *direct* `from → owner` edge — exact under `unit` (every
    /// edge costs 1) and an explicit approximation elsewhere. Substrates
    /// that expose real paths (`chord`, `fissione`) override it with true
    /// per-edge accumulation; layered schemes (PHT) inherit whichever
    /// accuracy their substrate provides.
    fn route_key_latency(&self, from: NodeId, key: u64, net: &NetModel) -> (Lookup, u64) {
        let lookup = self.route_key(from, key);
        let per_edge = if lookup.hops == 0 { 0 } else { net.edge_cost(from, lookup.owner) };
        (lookup, per_edge * lookup.hops as u64)
    }

    /// The peer owning `key`.
    ///
    /// **Cost:** the default implementation pays a full [`route_key`]
    /// traversal from [`any_node`] to find the owner — `O(log N)` overlay
    /// hops of simulated work, the opposite of free. Substrates with a
    /// global view (`chord`, `fissione`) override it with an `O(log N)`
    /// *local* table lookup that routes nothing; only those overrides are
    /// cost-free. Callers that need the owner without paying (or charging)
    /// routing should only rely on that on substrates known to override.
    ///
    /// [`route_key`]: Dht::route_key
    /// [`any_node`]: Dht::any_node
    fn owner_of_key(&self, key: u64) -> NodeId {
        let probe = self.route_key(self.any_node(), key);
        probe.owner
    }

    /// The `r` distinct peers that should hold copies of `key`'s record —
    /// the substrate's close group around the owner, primary first.
    ///
    /// **Cost:** the default implementation derives extra owners by salted
    /// re-hashing, paying one [`owner_of_key`] probe per candidate — on
    /// substrates without a local-owner override that is `O(r · log N)`
    /// overlay hops of simulated work. Substrates with structural
    /// neighborhoods override it with a *local* computation: `chord`
    /// returns the key's ring successors (the classic successor list),
    /// `fissione` the owner plus its Kautz neighbors. The result is always
    /// deterministic in `(key, r, membership)` and clamped to the live
    /// peer count.
    ///
    /// [`owner_of_key`]: Dht::owner_of_key
    fn replica_owners(&self, key: u64, r: usize) -> Vec<NodeId> {
        let want = r.max(1).min(self.node_count());
        let mut owners = vec![self.owner_of_key(key)];
        let mut salt: u64 = 0;
        // The salt walk terminates even when few distinct owners exist.
        while owners.len() < want && salt < 64 * want as u64 {
            salt += 1;
            let probe = self.owner_of_key(key ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            if !owners.contains(&probe) {
                owners.push(probe);
            }
        }
        owners
    }

    /// Some live peer (used as a default probe source).
    fn any_node(&self) -> NodeId;

    /// A uniformly random live peer.
    fn random_node(&self, rng: &mut SmallRng) -> NodeId;

    /// Number of live peers.
    fn node_count(&self) -> usize;

    /// Human-readable substrate name (for experiment tables).
    fn name(&self) -> &'static str;
}

/// FNV-1a hash used by layered schemes to map labels into the key space —
/// deterministic across runs, unlike `std`'s `DefaultHasher` seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_deterministic_and_spreads() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b"0"), fnv1a(b"00"));
        // Known FNV-1a vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
