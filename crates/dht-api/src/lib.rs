//! Common abstractions for *general* (layered) range-query schemes.
//!
//! The Armada paper's taxonomy (§2) distinguishes schemes that modify the
//! DHT from **general** schemes built entirely on the standard exact-match
//! interface. PHT is the canonical general scheme that runs on *any* DHT;
//! this crate defines the minimal interface it needs — keyed routing with
//! hop accounting — implemented by both [`fissione`](https://crates.io)
//! (constant degree) and `chord` (logarithmic degree) in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use simnet::NodeId;

/// A routed exact-match lookup: the owner found and the overlay hops paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Peer responsible for the key.
    pub owner: NodeId,
    /// Overlay hops from the source to the owner.
    pub hops: usize,
}

/// The exact-match interface a layered scheme consumes.
///
/// Keys are opaque `u64`s (layered schemes hash their labels into this
/// space); the DHT maps each key deterministically onto one live peer.
pub trait Dht {
    /// Routes from `from` to the peer owning `key`.
    fn route_key(&self, from: NodeId, key: u64) -> Lookup;

    /// The peer owning `key` (no routing cost).
    fn owner_of_key(&self, key: u64) -> NodeId {
        // Routing from the owner itself costs zero hops; implementations
        // may override with a direct lookup.
        let probe = self.route_key(self.any_node(), key);
        probe.owner
    }

    /// Some live peer (used as a default probe source).
    fn any_node(&self) -> NodeId;

    /// A uniformly random live peer.
    fn random_node(&self, rng: &mut SmallRng) -> NodeId;

    /// Number of live peers.
    fn node_count(&self) -> usize;

    /// Human-readable substrate name (for experiment tables).
    fn name(&self) -> &'static str;
}

/// FNV-1a hash used by layered schemes to map labels into the key space —
/// deterministic across runs, unlike `std`'s `DefaultHasher` seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_deterministic_and_spreads() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b"0"), fnv1a(b"00"));
        // Known FNV-1a vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
