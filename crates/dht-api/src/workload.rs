//! Named, seeded query workloads: the distribution axis of the evaluation.
//!
//! The paper measures every scheme under one distribution — uniformly
//! placed ranges of a fixed size (§4.3.3). Related systems (ART, D³-Tree)
//! evaluate under *skewed* and adversarial key distributions as well, and
//! production traffic is never uniform; this module makes the workload a
//! first-class, named object so experiments can sweep the distribution
//! axis the same way they sweep `N` and the range size.
//!
//! A [`WorkloadGen`] is a pure function from `(seed, query index)` to a
//! query: every query is derived from its *index*, never from a shared RNG
//! stream, so the same `(workload, seed)` pair reproduces the identical
//! query sequence no matter how the indices are sharded across threads.
//! That index-addressed contract is what lets
//! [`ParallelDriver`](crate::ParallelDriver) guarantee `threads = 1` and
//! `threads = N` produce bitwise-identical reports.
//!
//! # The catalog
//!
//! | Name | Distribution |
//! |---|---|
//! | `uniform` | the paper's workload: fixed-width ranges, uniform placement |
//! | `zipf-hot` | Zipf-weighted hot cells — a few slices of the domain absorb most queries |
//! | `clustered` | narrow ranges packed around a handful of cluster centers |
//! | `wide-scan` | scans covering 10–30 % of the domain |
//! | `rect-correlated` | multi-attribute rectangles whose per-attribute positions correlate |
//! | `mixed` | a production-style blend of all of the above |

use crate::scheme::SchemeError;
use rand::rngs::SmallRng;
use rand::Rng;

/// Workload names accepted by [`WorkloadGen::named`], in catalog order.
pub const WORKLOAD_NAMES: [&str; 6] =
    ["uniform", "zipf-hot", "clustered", "wide-scan", "rect-correlated", "mixed"];

/// The distribution a [`WorkloadGen`] draws queries from.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadKind {
    /// Fixed-width ranges placed uniformly over the domain (the paper's
    /// §4.3.3 workload).
    Uniform {
        /// Range width in attribute units.
        width: f64,
    },
    /// Hot-spot traffic: the domain is cut into `cells` equal slices and a
    /// query lands in slice of Zipf rank `r` with probability ∝ `r^-s`
    /// (ranks are scattered over the domain, not sorted by position).
    ZipfHot {
        /// Number of equal domain slices.
        cells: usize,
        /// Zipf exponent `s` (≈ 1 for classic web-like skew).
        exponent: f64,
        /// Range width in attribute units.
        width: f64,
    },
    /// Narrow ranges packed around `clusters` fixed pseudo-random centers
    /// (triangular jitter of half-width `spread` around each center).
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Jitter half-width around a center, attribute units.
        spread: f64,
        /// Range width in attribute units.
        width: f64,
    },
    /// Wide scans: width drawn uniformly from `[min_frac, max_frac]` of the
    /// domain span, placed uniformly.
    WideScan {
        /// Smallest width as a fraction of the domain span.
        min_frac: f64,
        /// Largest width as a fraction of the domain span.
        max_frac: f64,
    },
    /// Correlated multi-attribute rectangles: attribute 0 is placed
    /// uniformly and every further attribute sits at the same *relative*
    /// domain position ± `jitter_frac` (grid-style "CPU high ⇒ memory
    /// high" correlation). Degrades to a uniform range in 1-D use.
    CorrelatedRect {
        /// Per-attribute width as a fraction of that attribute's span.
        width_frac: f64,
        /// Positional jitter as a fraction of the span.
        jitter_frac: f64,
    },
    /// Production-style blend: 55 % narrow uniform, 20 % `zipf-hot`, 15 %
    /// `clustered`, 10 % `wide-scan`, re-drawn independently per query.
    Mixed,
}

/// A seeded, named query-mix generator over an attribute domain.
///
/// Construct via [`WorkloadGen::named`] (the catalog) or
/// [`WorkloadGen::uniform`] (explicit width, e.g. a sweep's range size),
/// then draw with [`range`](WorkloadGen::range) or
/// [`rect`](WorkloadGen::rect).
///
/// # Example
///
/// ```
/// use dht_api::WorkloadGen;
///
/// let wl = WorkloadGen::named("zipf-hot", (0.0, 1000.0)).unwrap();
/// let (lo, hi) = wl.range(7, 0);
/// assert!(lo >= 0.0 && hi <= 1000.0 && lo <= hi);
/// // Index-addressed: query 0 is the same whenever it is drawn.
/// assert_eq!(wl.range(7, 0), (lo, hi));
/// // Different indices give different queries.
/// assert_ne!(wl.range(7, 1), (lo, hi));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadGen {
    name: String,
    domain: (f64, f64),
    kind: WorkloadKind,
}

impl WorkloadGen {
    /// The paper's uniform workload with an explicit range width — what the
    /// figure sweeps use, with `width` set to the swept range size.
    pub fn uniform(domain: (f64, f64), width: f64) -> WorkloadGen {
        WorkloadGen { name: "uniform".into(), domain, kind: WorkloadKind::Uniform { width } }
    }

    /// Builds a cataloged workload by name over `domain` (see the module
    /// docs for the catalog). Widths scale with the domain span so the
    /// catalog is meaningful over any `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::UnknownWorkload`] for names outside
    /// [`WORKLOAD_NAMES`].
    pub fn named(name: &str, domain: (f64, f64)) -> Result<WorkloadGen, SchemeError> {
        let span = domain.1 - domain.0;
        let kind = match name {
            "uniform" => WorkloadKind::Uniform { width: 0.02 * span },
            "zipf-hot" => WorkloadKind::ZipfHot { cells: 16, exponent: 1.1, width: 0.01 * span },
            "clustered" => {
                WorkloadKind::Clustered { clusters: 5, spread: 0.015 * span, width: 0.002 * span }
            }
            "wide-scan" => WorkloadKind::WideScan { min_frac: 0.10, max_frac: 0.30 },
            "rect-correlated" => {
                WorkloadKind::CorrelatedRect { width_frac: 0.05, jitter_frac: 0.02 }
            }
            "mixed" => WorkloadKind::Mixed,
            other => return Err(SchemeError::UnknownWorkload { name: other.to_string() }),
        };
        Ok(WorkloadGen { name: name.to_string(), domain, kind })
    }

    /// A custom workload under a caller-chosen name.
    pub fn custom(name: &str, domain: (f64, f64), kind: WorkloadKind) -> WorkloadGen {
        WorkloadGen { name: name.to_string(), domain, kind }
    }

    /// The workload's name (catalog name, or whatever `custom` chose).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute domain queries are drawn over.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// The underlying distribution.
    pub fn kind(&self) -> &WorkloadKind {
        &self.kind
    }

    /// The RNG for query `q`: derived from `(workload name, seed, q)` only,
    /// so a query's value is independent of which thread draws it and of
    /// every other query.
    fn query_rng(&self, seed: u64, q: u64) -> SmallRng {
        let salt = crate::fnv1a(self.name.as_bytes());
        simnet::rng_from_seed(seed ^ salt ^ q.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Draws the single-attribute range for query index `q` under `seed`.
    ///
    /// Always returns `domain.0 <= lo <= hi <= domain.1`.
    pub fn range(&self, seed: u64, q: u64) -> (f64, f64) {
        let mut rng = self.query_rng(seed, q);
        sample_range(&self.kind, self.domain, &mut rng)
    }

    /// Draws the rectangle for query index `q` under `seed`, one `(lo, hi)`
    /// per entry of `domains`. [`CorrelatedRect`](WorkloadKind) correlates
    /// the attributes; every other kind draws each attribute independently
    /// (from the same per-query stream).
    pub fn rect(&self, domains: &[(f64, f64)], seed: u64, q: u64) -> Vec<(f64, f64)> {
        let mut rng = self.query_rng(seed, q);
        match self.kind {
            WorkloadKind::CorrelatedRect { width_frac, jitter_frac } => {
                let mut out = Vec::with_capacity(domains.len());
                let first = domains.first().copied().unwrap_or((0.0, 1.0));
                let span0 = first.1 - first.0;
                let w0 = width_frac * span0;
                let lo0 = place(first, w0, &mut rng);
                let rel = if span0 > 0.0 { (lo0 - first.0) / span0 } else { 0.0 };
                for (i, &(dlo, dhi)) in domains.iter().enumerate() {
                    let span = dhi - dlo;
                    let w = width_frac * span;
                    if i == 0 {
                        out.push((lo0, lo0 + w0));
                    } else {
                        let jitter = rng.gen_range(-jitter_frac..=jitter_frac);
                        let lo = (dlo + (rel + jitter) * span).clamp(dlo, (dhi - w).max(dlo));
                        out.push((lo, (lo + w).min(dhi)));
                    }
                }
                out
            }
            _ => domains.iter().map(|&d| sample_range(&self.kind, d, &mut rng)).collect(),
        }
    }
}

/// Places a range of width `w` uniformly inside `domain` (clamping `w` to
/// the span so degenerate domains still yield a valid range).
fn place(domain: (f64, f64), w: f64, rng: &mut SmallRng) -> f64 {
    let (dlo, dhi) = domain;
    let hi_bound = dhi - w;
    if hi_bound <= dlo {
        dlo
    } else {
        rng.gen_range(dlo..hi_bound)
    }
}

/// One draw of `kind` over `domain` from an already-derived per-query RNG.
fn sample_range(kind: &WorkloadKind, domain: (f64, f64), rng: &mut SmallRng) -> (f64, f64) {
    let (dlo, dhi) = domain;
    let span = dhi - dlo;
    match *kind {
        WorkloadKind::Uniform { width } => {
            let w = width.min(span);
            let lo = place(domain, w, rng);
            (lo, lo + w)
        }
        WorkloadKind::ZipfHot { cells, exponent, width } => {
            let cells = cells.max(1);
            let rank = zipf_rank(cells, exponent, rng);
            // Scatter ranks over the domain so hot cells are not adjacent.
            // The multiplier must be coprime with `cells` or the map is
            // not a bijection and ranks collapse onto fewer cells.
            let mult = (7..).step_by(2).find(|&m| gcd(m, cells) == 1).unwrap_or(1);
            let cell = (rank * mult + 3) % cells;
            let cell_span = span / cells as f64;
            let cell_lo = dlo + cell as f64 * cell_span;
            let w = width.min(cell_span);
            let lo = place((cell_lo, cell_lo + cell_span), w, rng);
            (lo, lo + w)
        }
        WorkloadKind::Clustered { clusters, spread, width } => {
            let clusters = clusters.max(1);
            let c = rng.gen_range(0..clusters);
            // Fixed pseudo-random center per cluster index (Knuth hash).
            let frac = (c as u64).wrapping_mul(2_654_435_761) % (1 << 32);
            let center = dlo + span * (0.1 + 0.8 * frac as f64 / (1u64 << 32) as f64);
            // Triangular jitter: sum of two uniforms, centered.
            let jitter = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * spread;
            let w = width.min(span);
            let lo = (center + jitter).clamp(dlo, (dhi - w).max(dlo));
            (lo, (lo + w).min(dhi))
        }
        WorkloadKind::WideScan { min_frac, max_frac } => {
            let w = (span * rng.gen_range(min_frac..=max_frac)).min(span);
            let lo = place(domain, w, rng);
            (lo, lo + w)
        }
        WorkloadKind::CorrelatedRect { width_frac, .. } => {
            // 1-D degradation: a plain uniform range of the same width.
            let w = (width_frac * span).min(span);
            let lo = place(domain, w, rng);
            (lo, lo + w)
        }
        WorkloadKind::Mixed => {
            let u: f64 = rng.gen();
            let sub = if u < 0.55 {
                WorkloadKind::Uniform { width: 0.02 * span }
            } else if u < 0.75 {
                WorkloadKind::ZipfHot { cells: 16, exponent: 1.1, width: 0.01 * span }
            } else if u < 0.90 {
                WorkloadKind::Clustered { clusters: 5, spread: 0.015 * span, width: 0.002 * span }
            } else {
                WorkloadKind::WideScan { min_frac: 0.10, max_frac: 0.30 }
            };
            sample_range(&sub, domain, rng)
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Draws a Zipf(`s`) rank in `0..cells` by inverse-CDF walk over the
/// normalized weights `(r+1)^-s`.
fn zipf_rank(cells: usize, s: f64, rng: &mut SmallRng) -> usize {
    let total: f64 = (1..=cells).map(|r| (r as f64).powf(-s)).sum();
    let mut u = rng.gen::<f64>() * total;
    for r in 0..cells {
        u -= ((r + 1) as f64).powf(-s);
        if u <= 0.0 {
            return r;
        }
    }
    cells - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: (f64, f64) = (0.0, 1000.0);

    #[test]
    fn catalog_builds_every_name_and_rejects_strangers() {
        for name in WORKLOAD_NAMES {
            let wl = WorkloadGen::named(name, DOMAIN).unwrap();
            assert_eq!(wl.name(), name);
        }
        assert!(matches!(
            WorkloadGen::named("bogus", DOMAIN),
            Err(SchemeError::UnknownWorkload { .. })
        ));
    }

    #[test]
    fn ranges_stay_in_domain_and_are_index_addressed() {
        for name in WORKLOAD_NAMES {
            let wl = WorkloadGen::named(name, DOMAIN).unwrap();
            for q in 0..500 {
                let (lo, hi) = wl.range(42, q);
                assert!(lo >= DOMAIN.0 && hi <= DOMAIN.1 && lo <= hi, "{name} q{q}: [{lo},{hi}]");
                // Re-drawing the same index reproduces the query exactly.
                assert_eq!(wl.range(42, q), (lo, hi), "{name} q{q} not index-addressed");
            }
        }
    }

    #[test]
    fn seeds_and_names_decorrelate_streams() {
        let wl = WorkloadGen::named("uniform", DOMAIN).unwrap();
        assert_ne!(wl.range(1, 0), wl.range(2, 0));
        let zipf = WorkloadGen::named("zipf-hot", DOMAIN).unwrap();
        assert_ne!(wl.range(1, 0), zipf.range(1, 0));
    }

    #[test]
    fn zipf_scatter_is_a_bijection_for_any_cell_count() {
        // cells divisible by small multipliers must still spread ranks
        // over every cell (regression: rank*7 % 7 collapsed to one cell).
        for cells in [7, 14, 16, 21, 49] {
            let wl = WorkloadGen::custom(
                "hot7",
                DOMAIN,
                WorkloadKind::ZipfHot { cells, exponent: 0.1, width: 1.0 },
            );
            let mut seen = std::collections::BTreeSet::new();
            for q in 0..4000 {
                let (lo, _) = wl.range(11, q);
                seen.insert(((lo / 1000.0) * cells as f64) as usize);
            }
            // A near-flat Zipf (s = 0.1) over 4000 draws must hit nearly
            // every cell; the broken scatter hit exactly one.
            assert!(seen.len() > cells / 2, "cells={cells}: only {} hit", seen.len());
        }
    }

    #[test]
    fn zipf_hot_concentrates_mass() {
        // The hottest cell must absorb far more than the uniform share.
        let wl = WorkloadGen::named("zipf-hot", DOMAIN).unwrap();
        let mut counts = [0usize; 16];
        for q in 0..4000 {
            let (lo, _) = wl.range(5, q);
            counts[(((lo / 1000.0) * 16.0) as usize).min(15)] += 1;
        }
        let hottest = *counts.iter().max().unwrap();
        assert!(hottest > 4000 / 16 * 3, "hottest cell only {hottest}/4000");
    }

    #[test]
    fn wide_scans_are_wide_and_uniform_is_narrow() {
        let wide = WorkloadGen::named("wide-scan", DOMAIN).unwrap();
        let narrow = WorkloadGen::named("uniform", DOMAIN).unwrap();
        for q in 0..200 {
            let (lo, hi) = wide.range(3, q);
            assert!(hi - lo >= 100.0 - 1e-9 && hi - lo <= 300.0 + 1e-9);
            let (nlo, nhi) = narrow.range(3, q);
            assert!((nhi - nlo - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correlated_rects_correlate_and_others_fill_dims() {
        let domains = [(0.0, 100.0), (0.0, 100.0)];
        let corr = WorkloadGen::named("rect-correlated", DOMAIN).unwrap();
        for q in 0..300 {
            let r = corr.rect(&domains, 9, q);
            assert_eq!(r.len(), 2);
            let rel0 = r[0].0 / 100.0;
            let rel1 = r[1].0 / 100.0;
            assert!((rel0 - rel1).abs() < 0.05 + 0.03, "q{q}: {rel0} vs {rel1}");
        }
        let mixed = WorkloadGen::named("mixed", DOMAIN).unwrap();
        let r = mixed.rect(&domains, 9, 0);
        assert_eq!(r.len(), 2);
        for &(lo, hi) in &r {
            assert!(lo >= 0.0 && hi <= 100.0 && lo <= hi);
        }
    }

    #[test]
    fn uniform_constructor_carries_the_swept_width() {
        let wl = WorkloadGen::uniform(DOMAIN, 50.0);
        for q in 0..100 {
            let (lo, hi) = wl.range(0, q);
            assert!((hi - lo - 50.0).abs() < 1e-9);
        }
    }
}
