//! Runtime scheme selection: build any registered scheme by name.
//!
//! Scheme crates cannot be depended on from here (they depend on `dht-api`),
//! so the registry stores *builder closures*. Each scheme crate exports a
//! `register(&mut SchemeRegistry)` function, and
//! `armada_experiments::standard_registry()` assembles the full set.

use crate::hostile::{parse_hostile_spec, Hostile, RetryPolicy};
use crate::replication::{ReplicaPolicy, Replicated};
use crate::scheme::{MultiRangeScheme, RangeScheme, SchemeError};
use rand::rngs::SmallRng;
use simnet::{FaultPlan, NetModel};
use std::collections::BTreeMap;

/// Construction parameters for a single-attribute scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildParams {
    /// Number of peers (or zones) to build.
    pub n: usize,
    /// Attribute domain `[lo, hi]`.
    pub domain: (f64, f64),
    /// Resolution knob for Kautz-named schemes (FISSIONE ObjectID length;
    /// the paper's default is 100). Schemes without such a knob ignore it.
    pub object_id_len: usize,
    /// Replica placement policy the built scheme is wrapped with
    /// ([`ReplicaPolicy::none`] by default — no wrapper). A `+suffix` on
    /// the scheme name (e.g. `"pira+r3"`) overrides this field.
    pub replication: ReplicaPolicy,
    /// Network cost model the built scheme prices its edges with
    /// ([`NetModel::unit`] by default — latency reproduces hop ticks). An
    /// `@suffix` on the scheme name (e.g. `"pira@wan"`) overrides this
    /// field. Hop metrics are model-invariant by construction; only
    /// [`RangeOutcome::latency`](crate::RangeOutcome) moves.
    pub net: NetModel,
    /// Default retry policy a hostile-wrapped build uses when its `@plan`
    /// suffix carries no `/rN` override ([`RetryPolicy::none`] by
    /// default — one attempt, no waits). Ignored unless the name carries
    /// a hostile suffix.
    pub retry: RetryPolicy,
    /// Whether the caller intends to trace queries on the built scheme
    /// (`false` by default). Construction itself is unchanged — tracing is
    /// a per-query capability — but a build with `trace` set refuses
    /// compositions whose outermost scheme cannot honor
    /// [`RangeScheme::trace_query`], so a `--trace` run fails at build
    /// time instead of on its first query.
    pub trace: bool,
}

impl BuildParams {
    /// Params for `n` peers over `[lo, hi]` with the paper's defaults.
    pub fn new(n: usize, lo: f64, hi: f64) -> Self {
        BuildParams {
            n,
            domain: (lo, hi),
            object_id_len: 100,
            replication: ReplicaPolicy::none(),
            net: NetModel::unit(),
            retry: RetryPolicy::none(),
            trace: false,
        }
    }

    /// Overrides the ObjectID length (tests use shorter IDs for speed).
    pub fn with_object_id_len(mut self, len: usize) -> Self {
        self.object_id_len = len;
        self
    }

    /// Sets the replica placement policy built schemes are wrapped with.
    pub fn with_replication(mut self, policy: ReplicaPolicy) -> Self {
        self.replication = policy;
        self
    }

    /// Sets the network cost model built schemes price their edges with.
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Sets the default retry policy for hostile-wrapped builds.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Declares that the caller intends to trace queries: the build then
    /// refuses schemes that cannot honor
    /// [`RangeScheme::trace_query`](crate::RangeScheme::trace_query).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// Construction parameters for a multi-attribute scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBuildParams {
    /// Number of peers to build.
    pub n: usize,
    /// Per-attribute domains.
    pub domains: Vec<(f64, f64)>,
    /// Resolution knob for Kautz-named schemes (see [`BuildParams`]).
    pub object_id_len: usize,
    /// Network cost model (see [`BuildParams::net`]).
    pub net: NetModel,
}

impl MultiBuildParams {
    /// Params for `n` peers over the given per-attribute domains.
    pub fn new(n: usize, domains: &[(f64, f64)]) -> Self {
        MultiBuildParams { n, domains: domains.to_vec(), object_id_len: 100, net: NetModel::unit() }
    }

    /// Overrides the ObjectID length.
    pub fn with_object_id_len(mut self, len: usize) -> Self {
        self.object_id_len = len;
        self
    }

    /// Sets the network cost model built schemes price their edges with.
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }
}

/// Splits an optional `@net` suffix off a registry name (`"pira@wan"` ⇒
/// `("pira", Some(wan))`), resolving it against the [`NetModel`] catalog.
/// Used by the multi-attribute path, which accepts net suffixes only.
fn split_net_suffix(name: &str) -> Result<(&str, Option<NetModel>), SchemeError> {
    match name.rsplit_once('@') {
        None => Ok((name, None)),
        Some((base, net)) => {
            let model = NetModel::named(net)
                .ok_or_else(|| SchemeError::UnknownNetModel { name: net.to_string() })?;
            Ok((base, Some(model)))
        }
    }
}

/// The `@` suffixes parsed off a single-attribute registry name: an
/// optional net model and an optional hostile `plan[/rN]` spec.
struct ParsedSuffixes {
    net: Option<NetModel>,
    hostile: Option<(FaultPlan, Option<RetryPolicy>, String)>,
}

/// Splits every `@` suffix off a single-attribute registry name
/// (`"pira+r3@wan@lossy-p/r2"` ⇒ base `"pira+r3"`, net `wan`, hostile
/// `lossy-p` with a 2-attempt retry override). Each suffix resolves first
/// against the [`NetModel`] catalog, then as a hostile spec; when both
/// categories repeat, the rightmost spelling wins.
fn split_suffixes(name: &str) -> Result<(&str, ParsedSuffixes), SchemeError> {
    let mut parts = name.split('@');
    let base = parts.next().expect("split yields at least one part");
    let mut parsed = ParsedSuffixes { net: None, hostile: None };
    for s in parts {
        if let Some(net) = NetModel::named(s) {
            parsed.net = Some(net);
        } else if let Some((plan, retry)) = parse_hostile_spec(s) {
            parsed.hostile = Some((plan, retry, s.to_string()));
        } else if s.contains('/') || s.starts_with("lossy-") || s.starts_with("island-") {
            // Clearly hostile-shaped but unparseable: name the right
            // catalog in the error.
            return Err(SchemeError::UnknownHostilePlan { name: s.to_string() });
        } else {
            return Err(SchemeError::UnknownNetModel { name: s.to_string() });
        }
    }
    Ok((base, parsed))
}

/// Builder closure for a single-attribute scheme.
pub type SingleBuilder =
    Box<dyn Fn(&BuildParams, &mut SmallRng) -> Result<Box<dyn RangeScheme>, SchemeError>>;

/// Builder closure for a multi-attribute scheme.
pub type MultiBuilder =
    Box<dyn Fn(&MultiBuildParams, &mut SmallRng) -> Result<Box<dyn MultiRangeScheme>, SchemeError>>;

/// Name → builder tables for both query shapes.
///
/// # Example
///
/// ```
/// use dht_api::{BuildParams, SchemeRegistry};
///
/// let mut reg = SchemeRegistry::new();
/// // Scheme crates register themselves:
/// // armada::register(&mut reg);
/// // dht_can::register(&mut reg);
/// assert!(reg.build_single("pira", &BuildParams::new(100, 0.0, 1.0),
///     &mut simnet::rng_from_seed(1)).is_err()); // nothing registered yet
/// ```
#[derive(Default)]
pub struct SchemeRegistry {
    single: BTreeMap<String, SingleBuilder>,
    multi: BTreeMap<String, MultiBuilder>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemeRegistry::default()
    }

    /// Registers a single-attribute scheme builder under `name`
    /// (overwrites any previous registration of the same name).
    pub fn register_single(&mut self, name: &str, builder: SingleBuilder) {
        self.single.insert(name.to_string(), builder);
    }

    /// Registers a multi-attribute scheme builder under `name`.
    pub fn register_multi(&mut self, name: &str, builder: MultiBuilder) {
        self.multi.insert(name.to_string(), builder);
    }

    /// Builds the single-attribute scheme registered under `name`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::UnknownScheme`] for unregistered names; otherwise
    /// whatever the scheme's own builder returns.
    ///
    /// # Example
    ///
    /// Register a builder, construct by name, publish, query (a toy
    /// local-scan scheme here; with the full workspace the same calls work
    /// on `armada_experiments::standard_registry()` with names like
    /// `"pira"` or `"skipgraph"`):
    ///
    /// ```
    /// use dht_api::{BuildParams, SchemeRegistry};
    ///
    /// # use dht_api::{RangeOutcome, RangeScheme, SchemeError};
    /// # use rand::Rng;
    /// # struct Scan { records: Vec<(f64, u64)>, n: usize }
    /// # impl RangeScheme for Scan {
    /// #     fn scheme_name(&self) -> &'static str { "scan" }
    /// #     fn substrate(&self) -> String { "local".into() }
    /// #     fn degree(&self) -> String { "0".into() }
    /// #     fn node_count(&self) -> usize { self.n }
    /// #     fn publish(&mut self, v: f64, h: u64) -> Result<(), SchemeError> {
    /// #         self.records.push((v, h));
    /// #         Ok(())
    /// #     }
    /// #     fn random_origin(&self, rng: &mut rand::rngs::SmallRng) -> usize {
    /// #         rng.gen_range(0..self.n)
    /// #     }
    /// #     fn range_query(&self, _o: usize, lo: f64, hi: f64, _s: u64)
    /// #         -> Result<RangeOutcome, SchemeError> {
    /// #         let mut results: Vec<u64> = self.records.iter()
    /// #             .filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
    /// #         results.sort_unstable();
    /// #         Ok(RangeOutcome { results, delay: 0, latency: 0, messages: 0, dest_peers: 1,
    /// #             reached_peers: 1, exact: true })
    /// #     }
    /// # }
    /// let mut registry = SchemeRegistry::new();
    /// registry.register_single(
    ///     "scan",
    ///     Box::new(|p, _rng| Ok(Box::new(Scan { records: Vec::new(), n: p.n }))),
    /// );
    ///
    /// let mut rng = simnet::rng_from_seed(7);
    /// let params = BuildParams::new(64, 0.0, 1000.0);
    /// let mut scheme = registry.build_single("scan", &params, &mut rng)?;
    /// scheme.publish(500.0, 42)?;
    /// let origin = scheme.random_origin(&mut rng);
    /// let outcome = scheme.range_query(origin, 499.0, 501.0, 0)?;
    /// assert_eq!(outcome.results, vec![42]);
    /// assert!(outcome.exact);
    /// # Ok::<(), SchemeError>(())
    /// ```
    pub fn build_single(
        &self,
        name: &str,
        params: &BuildParams,
        rng: &mut SmallRng,
    ) -> Result<Box<dyn RangeScheme>, SchemeError> {
        // `"pira+r3@wan@lossy-p/r2"`-style names select a replica policy,
        // a net model, and/or a hostile fault plan inline; each suffix
        // takes precedence over its params field. Composition order is
        // fixed: scheme, then replication, then the hostile wrapper
        // outermost (retries see replica-served answers).
        let (name_sans_suffix, suffixes) = split_suffixes(name)?;
        let (base, suffix_policy) = match name_sans_suffix.split_once('+') {
            Some((base, suffix)) => (base, Some(ReplicaPolicy::named(suffix)?)),
            None => (name_sans_suffix, None),
        };
        let builder = self
            .single
            .get(base)
            .ok_or_else(|| SchemeError::UnknownScheme { name: name.to_string(), kind: "single" })?;
        let overridden;
        let effective = match suffixes.net {
            Some(net) => {
                overridden = params.clone().with_net(net);
                &overridden
            }
            None => params,
        };
        let inner = builder(effective, rng)?;
        let policy = suffix_policy.unwrap_or_else(|| params.replication.clone());
        let scheme: Box<dyn RangeScheme> =
            if policy.is_none() { inner } else { Box::new(Replicated::new(inner, policy)?) };
        let scheme = match suffixes.hostile {
            None => scheme,
            Some((plan, retry, spec)) => {
                let retry = retry.unwrap_or(effective.retry);
                Box::new(Hostile::new(scheme, plan, retry, effective.net, spec)?)
                    as Box<dyn RangeScheme>
            }
        };
        if effective.trace && !scheme.supports_tracing() {
            return Err(SchemeError::Unsupported { scheme: name.to_string(), feature: "tracing" });
        }
        Ok(scheme)
    }

    /// Builds the multi-attribute scheme registered under `name`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::UnknownScheme`] for unregistered names; otherwise
    /// whatever the scheme's own builder returns.
    pub fn build_multi(
        &self,
        name: &str,
        params: &MultiBuildParams,
        rng: &mut SmallRng,
    ) -> Result<Box<dyn MultiRangeScheme>, SchemeError> {
        let (base, suffix_net) = split_net_suffix(name)?;
        let builder = self
            .multi
            .get(base)
            .ok_or_else(|| SchemeError::UnknownScheme { name: name.to_string(), kind: "multi" })?;
        let overridden;
        let effective = match suffix_net {
            Some(net) => {
                overridden = params.clone().with_net(net);
                &overridden
            }
            None => params,
        };
        builder(effective, rng)
    }

    /// Names of all registered single-attribute schemes, sorted.
    pub fn single_names(&self) -> Vec<&str> {
        self.single.keys().map(String::as_str).collect()
    }

    /// Names of all registered multi-attribute schemes, sorted.
    pub fn multi_names(&self) -> Vec<&str> {
        self.multi.keys().map(String::as_str).collect()
    }
}

impl std::fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeRegistry")
            .field("single", &self.single_names())
            .field("multi", &self.multi_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{RangeOutcome, RangeScheme};
    use simnet::NodeId;

    /// A toy in-memory scheme for registry tests.
    struct LocalScan {
        records: Vec<(f64, u64)>,
        n: usize,
    }

    impl RangeScheme for LocalScan {
        fn scheme_name(&self) -> &'static str {
            "local-scan"
        }

        fn substrate(&self) -> String {
            "none".into()
        }

        fn degree(&self) -> String {
            "0".into()
        }

        fn node_count(&self) -> usize {
            self.n
        }

        fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
            self.records.push((value, handle));
            Ok(())
        }

        fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
            use rand::Rng;
            rng.gen_range(0..self.n)
        }

        fn range_query(
            &self,
            _origin: NodeId,
            lo: f64,
            hi: f64,
            _seed: u64,
        ) -> Result<RangeOutcome, SchemeError> {
            if lo > hi {
                return Err(SchemeError::EmptyRange { lo, hi });
            }
            let mut results: Vec<u64> = self
                .records
                .iter()
                .filter(|&&(v, _)| v >= lo && v <= hi)
                .map(|&(_, h)| h)
                .collect();
            results.sort_unstable();
            Ok(RangeOutcome {
                results,
                delay: 0,
                latency: 0,
                messages: 0,
                dest_peers: 1,
                reached_peers: 1,
                exact: true,
            })
        }
    }

    fn toy_registry() -> SchemeRegistry {
        let mut reg = SchemeRegistry::new();
        reg.register_single(
            "local-scan",
            Box::new(|p, _rng| Ok(Box::new(LocalScan { records: Vec::new(), n: p.n }))),
        );
        reg
    }

    #[test]
    fn registry_builds_by_name_and_lists() {
        let reg = toy_registry();
        assert_eq!(reg.single_names(), vec!["local-scan"]);
        assert!(reg.multi_names().is_empty());
        let mut rng = simnet::rng_from_seed(1);
        let mut scheme =
            reg.build_single("local-scan", &BuildParams::new(8, 0.0, 10.0), &mut rng).unwrap();
        scheme.publish(5.0, 42).unwrap();
        scheme.publish(9.0, 43).unwrap();
        let out = scheme.range_query(0, 4.0, 6.0, 0).unwrap();
        assert_eq!(out.results, vec![42]);
    }

    #[test]
    fn unknown_names_error_cleanly() {
        let reg = toy_registry();
        let mut rng = simnet::rng_from_seed(1);
        let err = reg
            .build_single("missing", &BuildParams::new(8, 0.0, 1.0), &mut rng)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SchemeError::UnknownScheme { kind: "single", .. }));
        let err = reg
            .build_multi("missing", &MultiBuildParams::new(8, &[(0.0, 1.0)]), &mut rng)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SchemeError::UnknownScheme { kind: "multi", .. }));
    }

    #[test]
    fn replication_suffixes_wrap_or_refuse() {
        let reg = toy_registry();
        let mut rng = simnet::rng_from_seed(1);
        let params = BuildParams::new(8, 0.0, 10.0);
        // LocalScan exposes no ReplicaRouting: wrapping must refuse.
        let err = reg.build_single("local-scan+r2", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::Unsupported { feature: "replication", .. }), "{err}");
        let err = reg
            .build_single(
                "local-scan",
                &params.clone().with_replication(ReplicaPolicy::successor(2)),
                &mut rng,
            )
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SchemeError::Unsupported { feature: "replication", .. }), "{err}");
        // Factor-1 and `none` policies skip the wrapper entirely.
        assert!(reg.build_single("local-scan+r1", &params, &mut rng).is_ok());
        assert!(reg.build_single("local-scan+none", &params, &mut rng).is_ok());
        // Unknown suffixes fail as policies, unknown bases as schemes.
        let err = reg.build_single("local-scan+bogus", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::UnknownReplicaPolicy { .. }), "{err}");
        let err = reg.build_single("missing+r2", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::UnknownScheme { .. }), "{err}");
    }

    #[test]
    fn net_model_suffixes_parse_and_override() {
        let reg = toy_registry();
        let mut rng = simnet::rng_from_seed(1);
        let params = BuildParams::new(8, 0.0, 10.0);
        // Known models parse (composed with replica suffixes too); the toy
        // scheme ignores the model, but construction must succeed.
        assert!(reg.build_single("local-scan@wan", &params, &mut rng).is_ok());
        assert!(reg.build_single("local-scan@unit", &params, &mut rng).is_ok());
        assert!(reg.build_single("local-scan+r1@straggler", &params, &mut rng).is_ok());
        // Unknown models fail as models, unknown bases as schemes.
        let err = reg.build_single("local-scan@dialup", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::UnknownNetModel { .. }), "{err}");
        assert!(err.to_string().contains("dialup"));
        let err = reg.build_single("missing@wan", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::UnknownScheme { .. }), "{err}");
        // The params field drives the default; the suffix overrides it.
        let p = BuildParams::new(8, 0.0, 10.0).with_net(simnet::NetModel::wan());
        assert_eq!(p.net, simnet::NetModel::wan());
        assert_eq!(BuildParams::new(8, 0.0, 10.0).net, simnet::NetModel::unit());
    }

    #[test]
    fn hostile_suffixes_wrap_and_compose() {
        let reg = toy_registry();
        let mut rng = simnet::rng_from_seed(1);
        let params = BuildParams::new(8, 0.0, 10.0);
        // A hostile suffix wraps; the substrate is annotated.
        let scheme = reg.build_single("local-scan@lossy-p", &params, &mut rng).unwrap();
        assert_eq!(scheme.scheme_name(), "local-scan");
        assert!(scheme.substrate().contains("lossy-p"), "{}", scheme.substrate());
        // Retry spellings parse; composition with net suffixes works in
        // either order, and the parameterized plan spellings parse too.
        for name in [
            "local-scan@lossy-p/r2",
            "local-scan@wan@split-brain",
            "local-scan@bursty@cluster",
            "local-scan@lossy-25/r3",
            "local-scan@island-4",
            "local-scan@throttle",
        ] {
            assert!(reg.build_single(name, &params, &mut rng).is_ok(), "{name}");
        }
        // Unknown hostile-shaped suffixes name the hostile catalog;
        // plain unknown suffixes still fail as net models.
        let err =
            reg.build_single("local-scan@lossy-p/r0", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::UnknownHostilePlan { .. }), "{err}");
        let err =
            reg.build_single("local-scan@island-1", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::UnknownHostilePlan { .. }), "{err}");
        let err = reg.build_single("local-scan@dialup", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::UnknownNetModel { .. }), "{err}");
        // The hostile wrapper sits outermost over replication refusals:
        // the replica error still surfaces.
        let err =
            reg.build_single("local-scan+r2@lossy-p", &params, &mut rng).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchemeError::Unsupported { feature: "replication", .. }), "{err}");
    }

    #[test]
    fn params_retry_is_the_default_for_suffixes_without_override() {
        let reg = toy_registry();
        let mut rng = simnet::rng_from_seed(1);
        let params = BuildParams::new(8, 0.0, 10.0).with_retry(RetryPolicy::with_attempts(3));
        assert_eq!(params.retry.attempts, 3);
        // No hostile suffix: retry field is inert, no wrapper.
        let plain = reg.build_single("local-scan", &params, &mut rng).unwrap();
        assert!(!plain.substrate().contains("hostile"));
        // With a suffix, the field supplies the default attempts; the
        // control surface confirms what was wired.
        let mut wrapped = reg.build_single("local-scan@lossy-p", &params, &mut rng).unwrap();
        assert_eq!(wrapped.as_hostile().unwrap().retry_policy().attempts, 3);
        let mut overridden = reg.build_single("local-scan@lossy-p/r2", &params, &mut rng).unwrap();
        assert_eq!(overridden.as_hostile().unwrap().retry_policy().attempts, 2);
    }

    #[test]
    fn trace_builds_refuse_schemes_without_tracing() {
        let reg = toy_registry();
        let mut rng = simnet::rng_from_seed(1);
        let params = BuildParams::new(8, 0.0, 10.0).with_trace(true);
        // LocalScan has no trace_query; the refusal happens at build time,
        // and propagates honestly through the hostile wrapper (which only
        // supports tracing when its inner scheme does).
        for name in ["local-scan", "local-scan@lossy-p"] {
            let err = reg.build_single(name, &params, &mut rng).map(|_| ()).unwrap_err();
            assert!(
                matches!(err, SchemeError::Unsupported { feature: "tracing", .. }),
                "{name}: {err}"
            );
        }
        // Without the knob the same names build fine.
        assert!(reg
            .build_single("local-scan", &params.clone().with_trace(false), &mut rng)
            .is_ok());
    }

    #[test]
    fn build_params_builders() {
        let p = BuildParams::new(100, 0.0, 1000.0).with_object_id_len(24);
        assert_eq!(p.object_id_len, 24);
        let m = MultiBuildParams::new(50, &[(0.0, 1.0), (0.0, 2.0)]).with_object_id_len(32);
        assert_eq!(m.domains.len(), 2);
        assert_eq!(m.object_id_len, 32);
    }
}
