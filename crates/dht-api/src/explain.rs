//! Per-hop cost explainers: turn a trace event stream into a causal tree
//! whose per-hop sums exactly reproduce a query's reported `delay` and
//! `latency`.
//!
//! A [`QueryTrace`] pairs the raw [`TraceRecord`] stream (for export as
//! JSONL / Chrome trace) with a [`CostNode`] tree (for human-readable
//! explain output). The tree carries the **accounting invariant** this
//! module exists for: [`CostNode::total`] on the root equals the outcome's
//! `(delay, latency, messages)` triple, bit for bit — every virtual
//! millisecond the driver reports is attributable to a specific hop,
//! backoff wait, or replica fetch in the tree.
//!
//! Two builders cover the two kinds of scheme in the workspace:
//!
//! * [`QueryTrace::from_sim_records`] reconstructs critical paths from a
//!   real [`Sim`](simnet::Sim) event stream (PIRA, DCF-CAN): walk back
//!   from the answer that defines each metric, matching each delivery to
//!   the hop event that scheduled it.
//! * [`QueryTrace::modeled`] decomposes an analytic scheme's reported
//!   totals into a synthesized [`HopKind::Modeled`] chain (PHT, Skip
//!   Graph, Squid, SCRAP) — the invariant holds by construction and the
//!   events are honestly labeled as modeled.

use crate::scheme::RangeOutcome;
use simnet::{HopKind, NodeId, TraceEvent, TraceRecord, TraceSink, Verdict};

/// One node of the causal cost tree. A node's own `hops`/`latency`/
/// `messages` are its *direct* contribution; [`total`](Self::total) adds
/// children recursively.
#[derive(Debug, Clone, PartialEq)]
pub struct CostNode {
    /// Human-readable label (e.g. `"hop 3: 17 → 42 (+12 ms)"`).
    pub label: String,
    /// Direct contribution to the outcome's `delay` (overlay hops).
    pub hops: u64,
    /// Direct contribution to the outcome's `latency` (virtual ms).
    pub latency: u64,
    /// Direct contribution to the outcome's `messages`.
    pub messages: u64,
    /// Sub-costs (attempt trees, critical-path hops, fetch phases).
    pub children: Vec<CostNode>,
}

impl CostNode {
    /// A pure grouping node: zero direct contribution.
    pub fn group(label: impl Into<String>) -> CostNode {
        CostNode { label: label.into(), hops: 0, latency: 0, messages: 0, children: Vec::new() }
    }

    /// A leaf with direct contributions.
    pub fn leaf(label: impl Into<String>, hops: u64, latency: u64, messages: u64) -> CostNode {
        CostNode { label: label.into(), hops, latency, messages, children: Vec::new() }
    }

    /// Recursive `(hops, latency, messages)` total — the tree's accounting
    /// invariant is `root.total() == (outcome.delay, outcome.latency,
    /// outcome.messages)`.
    pub fn total(&self) -> (u64, u64, u64) {
        let mut t = (self.hops, self.latency, self.messages);
        for c in &self.children {
            let (h, l, m) = c.total();
            t.0 += h;
            t.1 += l;
            t.2 += m;
        }
        t
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let mut costs = Vec::new();
        if self.hops > 0 {
            costs.push(format!("{} hop{}", self.hops, if self.hops == 1 { "" } else { "s" }));
        }
        if self.latency > 0 {
            costs.push(format!("{} ms", self.latency));
        }
        if self.messages > 0 {
            costs.push(format!("{} msg", self.messages));
        }
        let suffix =
            if costs.is_empty() { String::new() } else { format!("  [{}]", costs.join(", ")) };
        out.push_str(&format!("{pad}{}{suffix}\n", self.label));
        for c in &self.children {
            c.render(out, indent + 1);
        }
    }
}

/// A query's full observability record: the raw event stream plus the
/// causal cost tree derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The structured event stream, in `(time, id)` order.
    pub events: Vec<TraceRecord>,
    /// The causal cost tree; `root.total()` reproduces the outcome.
    pub root: CostNode,
}

impl QueryTrace {
    /// Builds the trace of an analytic (non-simulated) scheme by
    /// decomposing its reported totals into a [`HopKind::Modeled`] chain
    /// from `origin`: `delay` hops carrying `latency` virtual ms, the
    /// remainder spread over the earliest hops so the sum is exact.
    pub fn modeled(label: &str, origin: NodeId, outcome: &RangeOutcome) -> QueryTrace {
        let mut sink = TraceSink::new();
        let mut chain = CostNode::group("critical path (modeled)");
        let d = outcome.delay;
        if let Some(per) = outcome.latency.checked_div(d) {
            let rem = outcome.latency - per * d;
            let mut cum = 0;
            for i in 0..d {
                let edge = per + u64::from(i < rem);
                cum += edge;
                sink.emit(
                    i + 1,
                    TraceEvent::Hop {
                        src: origin,
                        dst: origin,
                        hop: (i + 1) as u32,
                        edge_cost_ms: edge,
                        cost_ms: cum,
                        kind: HopKind::Modeled,
                    },
                );
                chain.children.push(CostNode::leaf(
                    format!("hop {} (+{edge} ms)", i + 1),
                    1,
                    edge,
                    0,
                ));
            }
        } else if outcome.latency > 0 {
            // d == 0 — a purely local answer: any latency is one local charge.
            sink.emit(
                0,
                TraceEvent::Hop {
                    src: origin,
                    dst: origin,
                    hop: 0,
                    edge_cost_ms: outcome.latency,
                    cost_ms: outcome.latency,
                    kind: HopKind::Modeled,
                },
            );
            chain.children.push(CostNode::leaf(
                format!("local (+{} ms)", outcome.latency),
                0,
                outcome.latency,
                0,
            ));
        }
        sink.emit(
            d + 1,
            TraceEvent::Answer { node: origin, hop: d as u32, cost_ms: outcome.latency },
        );
        let mut root = CostNode::leaf(label, 0, 0, outcome.messages);
        root.label = format!("{label}: {} msg total (modeled decomposition)", outcome.messages);
        root.children.push(chain);
        QueryTrace { events: sink.into_records(), root }
    }

    /// Reconstructs critical paths from a real simulator event stream.
    ///
    /// `delay` is defined by the answer with the deepest hop; `latency` by
    /// the last-first-arrival answer (max over answering nodes of their
    /// min chain cost — the same rule as [`simnet::last_first_arrival`]).
    /// Each path is recovered by walking back from its defining answer,
    /// matching `(node, hop, cost)` against the `Hop` event that scheduled
    /// the delivery; candidate event ids must strictly decrease, which
    /// guarantees progress across local hand-offs that preserve both hop
    /// and cost. Any matching chain telescopes to the same sums, so the
    /// accounting invariant does not depend on which equal-cost chain the
    /// walk picks.
    pub fn from_sim_records(
        label: &str,
        records: Vec<TraceRecord>,
        outcome: &RangeOutcome,
    ) -> QueryTrace {
        let mut root = CostNode::leaf(
            format!("{label}: {} msg total", outcome.messages),
            0,
            0,
            outcome.messages,
        );

        // The two defining answers.
        let answers: Vec<&TraceRecord> =
            records.iter().filter(|r| matches!(r.event, TraceEvent::Answer { .. })).collect();
        let delay_answer = answers
            .iter()
            .filter(|r| match r.event {
                TraceEvent::Answer { hop, .. } => u64::from(hop) == outcome.delay,
                _ => false,
            })
            .min_by_key(|r| r.id)
            .copied();
        let latency_answer = {
            // Per-node minimum chain cost, then the node whose minimum is
            // the global maximum — last first arrival.
            let mut per_node: std::collections::BTreeMap<NodeId, (u64, u64)> =
                std::collections::BTreeMap::new();
            for r in &answers {
                if let TraceEvent::Answer { node, cost_ms, .. } = r.event {
                    let e = per_node.entry(node).or_insert((cost_ms, r.id));
                    if cost_ms < e.0 {
                        *e = (cost_ms, r.id);
                    }
                }
            }
            per_node
                .iter()
                .filter(|(_, (c, _))| *c == outcome.latency)
                .map(|(_, &(_, id))| id)
                .min()
                .and_then(|id| answers.iter().find(|r| r.id == id).copied())
        };

        let same = match (delay_answer, latency_answer) {
            (Some(a), Some(b)) => a.id == b.id,
            _ => false,
        };
        if same {
            let a = delay_answer.expect("checked above");
            if let Some(chain) = critical_path(&records, a, true, true) {
                root.children.push(chain);
            }
        } else {
            if let Some(a) = delay_answer {
                if let Some(chain) = critical_path(&records, a, true, false) {
                    root.children.push(chain);
                }
            }
            if let Some(a) = latency_answer {
                if let Some(chain) = critical_path(&records, a, false, true) {
                    root.children.push(chain);
                }
            }
        }

        // Fault-plane summary: what never arrived, and why.
        let mut verdict_counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for r in &records {
            if let TraceEvent::FaultVerdict { verdict, .. } = &r.event {
                *verdict_counts.entry(verdict.label()).or_insert(0) += 1;
            }
        }
        if !verdict_counts.is_empty() {
            let mut faults = CostNode::group("fault verdicts (no cost: refused sends)");
            for (label, n) in verdict_counts {
                faults.children.push(CostNode::leaf(format!("{label}: {n}"), 0, 0, 0));
            }
            root.children.push(faults);
        }

        QueryTrace { events: records, root }
    }

    /// The event stream as JSON Lines, one event per line, trailing
    /// newline included. Byte-identical for byte-identical streams.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.events {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// The event stream as a Chrome trace (`chrome://tracing` /
    /// Perfetto-loadable JSON array). Hops render as complete (`X`) slices
    /// on the destination node's track; verdicts and answers as instants.
    pub fn to_chrome(&self) -> String {
        let mut parts = Vec::with_capacity(self.events.len());
        for r in &self.events {
            let (name, ph, tid, dur, args) = match &r.event {
                TraceEvent::Hop { src, dst, hop, edge_cost_ms, cost_ms, kind } => (
                    format!("hop {hop}: {src}\\u2192{dst}"),
                    "X",
                    *dst,
                    edge_cost_ms.max(&1).to_string(),
                    format!(
                        "\"kind\":\"{}\",\"edge_cost_ms\":{edge_cost_ms},\"cost_ms\":{cost_ms}",
                        kind.label()
                    ),
                ),
                TraceEvent::FaultVerdict { src, dst, verdict, plan } => (
                    format!("{}: {src}\\u2192{dst}", verdict.label()),
                    "i",
                    *dst,
                    String::new(),
                    format!("\"plan\":\"{}\"", chrome_escape(plan)),
                ),
                TraceEvent::Delivery { node, hop, cost_ms } => (
                    format!("deliver hop {hop}"),
                    "i",
                    *node,
                    String::new(),
                    format!("\"cost_ms\":{cost_ms}"),
                ),
                TraceEvent::Answer { node, hop, cost_ms } => (
                    format!("answer hop {hop}"),
                    "i",
                    *node,
                    String::new(),
                    format!("\"cost_ms\":{cost_ms}"),
                ),
                TraceEvent::RetryAttempt { attempt, wait_ms, exact } => (
                    format!("retry attempt {attempt}"),
                    "i",
                    0,
                    String::new(),
                    format!("\"wait_ms\":{wait_ms},\"exact\":{exact}"),
                ),
                TraceEvent::ReplicaFetch { origin, holder, latency_ms, recovered, .. } => (
                    format!("replica fetch {origin}\\u2192{holder}"),
                    "X",
                    *origin,
                    latency_ms.max(&1).to_string(),
                    format!("\"recovered\":{recovered}"),
                ),
            };
            let dur_field = if ph == "X" { format!(",\"dur\":{dur}") } else { String::new() };
            let scope = if ph == "i" { ",\"s\":\"t\"" } else { "" };
            parts.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{tid}{dur_field}{scope},\"args\":{{{args},\"id\":{}}}}}",
                r.time * 1000,
                r.id
            ));
        }
        format!("[{}]", parts.join(","))
    }

    /// The human-readable explain tree, totals first.
    pub fn explain_text(&self) -> String {
        let (hops, latency, messages) = self.root.total();
        let mut out = format!(
            "total: delay {hops} hops, latency {latency} ms, {messages} messages, {} events\n",
            self.events.len()
        );
        self.root.render(&mut out, 0);
        out
    }

    /// Splices `other`'s events after this trace's, shifted to start at
    /// `time_offset`, re-stamping ids monotonically — how retry layers
    /// merge attempt streams onto one timeline.
    pub fn append_events(&mut self, other: Vec<TraceRecord>, time_offset: u64) {
        let mut sink = TraceSink::new();
        let events = std::mem::take(&mut self.events);
        for r in events {
            sink.emit(r.time, r.event);
        }
        sink.append_offset(other, time_offset);
        self.events = sink.into_records();
    }

    /// Count of events carrying a given fault verdict.
    pub fn verdict_count(&self, verdict: Verdict) -> usize {
        self.events
            .iter()
            .filter(|r| matches!(&r.event, TraceEvent::FaultVerdict { verdict: v, .. } if *v == verdict))
            .count()
    }
}

fn chrome_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Walks back from `answer` to the chain seed, producing a critical-path
/// node whose children are the chain's hops. `count_hops` attributes 1 hop
/// per network edge (the delay metric); `count_latency` attributes each
/// edge's cost (the latency metric) — the caller picks which metric(s)
/// this chain explains, so a shared chain explains both without double
/// counting.
fn critical_path(
    records: &[TraceRecord],
    answer: &TraceRecord,
    count_hops: bool,
    count_latency: bool,
) -> Option<CostNode> {
    let TraceEvent::Answer { node, hop, cost_ms } = answer.event else {
        return None;
    };
    let metric = match (count_hops, count_latency) {
        (true, true) => "delay + latency",
        (true, false) => "delay",
        _ => "latency",
    };
    let mut chain = CostNode::group(format!(
        "critical path ({metric}): answer at peer {node}, hop {hop}, {cost_ms} ms"
    ));
    let mut cur_node = node;
    let mut cur_hop = hop;
    let mut cur_cost = cost_ms;
    let mut bound = answer.id;
    let mut hops_rev = Vec::new();
    loop {
        let matched = records.iter().rev().find(|r| {
            r.id < bound
                && matches!(
                    r.event,
                    TraceEvent::Hop { dst, hop: h, cost_ms: c, .. }
                        if dst == cur_node && h == cur_hop && c == cur_cost
                )
        });
        let Some(m) = matched else { break };
        let TraceEvent::Hop { src, dst, hop: h, edge_cost_ms, cost_ms: c, kind } = m.event else {
            unreachable!("matched a Hop above");
        };
        hops_rev.push((src, dst, h, edge_cost_ms, kind));
        bound = m.id;
        cur_node = src;
        cur_hop = if kind == HopKind::Network { h.saturating_sub(1) } else { h };
        cur_cost = c - edge_cost_ms;
        if kind != HopKind::Network && src == dst && h == 0 && cur_cost == 0 {
            break; // the seeding self-delivery — chain complete
        }
    }
    for &(src, dst, h, edge, kind) in hops_rev.iter().rev() {
        let hops = u64::from(count_hops && kind == HopKind::Network);
        let latency = if count_latency { edge } else { 0 };
        let label = match kind {
            HopKind::Network => format!("hop {h}: {src} \u{2192} {dst} (+{edge} ms)"),
            HopKind::Local => format!("hop {h}: local hand-off at {src}"),
            HopKind::Modeled => format!("hop {h}: modeled (+{edge} ms)"),
        };
        chain.children.push(CostNode::leaf(label, hops, latency, 0));
    }
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(delay: u64, latency: u64, messages: u64) -> RangeOutcome {
        RangeOutcome {
            results: vec![],
            delay,
            latency,
            messages,
            dest_peers: 1,
            reached_peers: 1,
            exact: true,
        }
    }

    #[test]
    fn modeled_decomposition_is_exact() {
        for (d, l) in [(0, 0), (0, 9), (1, 7), (3, 10), (7, 3), (5, 5)] {
            let out = outcome(d, l, 11);
            let tr = QueryTrace::modeled("toy", 4, &out);
            assert_eq!(tr.root.total(), (d, l, 11), "delay {d} latency {l}");
        }
    }

    #[test]
    fn sim_chain_reconstruction_reproduces_costs() {
        // Hand-built stream: seed at 0, two network hops 0→1→2 costing
        // 4 + 6 ms, answer at peer 2.
        let mut sink = TraceSink::new();
        sink.emit(
            0,
            TraceEvent::Hop {
                src: 0,
                dst: 0,
                hop: 0,
                edge_cost_ms: 0,
                cost_ms: 0,
                kind: HopKind::Local,
            },
        );
        sink.emit(
            0,
            TraceEvent::Hop {
                src: 0,
                dst: 1,
                hop: 1,
                edge_cost_ms: 4,
                cost_ms: 4,
                kind: HopKind::Network,
            },
        );
        sink.emit(
            1,
            TraceEvent::Hop {
                src: 1,
                dst: 2,
                hop: 2,
                edge_cost_ms: 6,
                cost_ms: 10,
                kind: HopKind::Network,
            },
        );
        sink.emit(2, TraceEvent::Answer { node: 2, hop: 2, cost_ms: 10 });
        let out = outcome(2, 10, 2);
        let tr = QueryTrace::from_sim_records("toy", sink.into_records(), &out);
        assert_eq!(tr.root.total(), (2, 10, 2));
        let text = tr.explain_text();
        assert!(text.contains("critical path (delay + latency)"), "{text}");
        assert!(text.contains("hop 2: 1 \u{2192} 2 (+6 ms)"), "{text}");
    }

    #[test]
    fn split_answers_build_two_chains() {
        // Peer 1: deep but cheap (hop 2, 2 ms). Peer 2: shallow but slow
        // (hop 1, 9 ms) — delay comes from peer 1, latency from peer 2.
        let mut sink = TraceSink::new();
        sink.emit(
            0,
            TraceEvent::Hop {
                src: 0,
                dst: 0,
                hop: 0,
                edge_cost_ms: 0,
                cost_ms: 0,
                kind: HopKind::Local,
            },
        );
        sink.emit(
            0,
            TraceEvent::Hop {
                src: 0,
                dst: 3,
                hop: 1,
                edge_cost_ms: 1,
                cost_ms: 1,
                kind: HopKind::Network,
            },
        );
        sink.emit(
            0,
            TraceEvent::Hop {
                src: 0,
                dst: 2,
                hop: 1,
                edge_cost_ms: 9,
                cost_ms: 9,
                kind: HopKind::Network,
            },
        );
        sink.emit(
            1,
            TraceEvent::Hop {
                src: 3,
                dst: 1,
                hop: 2,
                edge_cost_ms: 1,
                cost_ms: 2,
                kind: HopKind::Network,
            },
        );
        sink.emit(1, TraceEvent::Answer { node: 2, hop: 1, cost_ms: 9 });
        sink.emit(2, TraceEvent::Answer { node: 1, hop: 2, cost_ms: 2 });
        let out = outcome(2, 9, 3);
        let tr = QueryTrace::from_sim_records("toy", sink.into_records(), &out);
        assert_eq!(tr.root.total(), (2, 9, 3));
        let text = tr.explain_text();
        assert!(text.contains("critical path (delay)"), "{text}");
        assert!(text.contains("critical path (latency)"), "{text}");
    }

    #[test]
    fn local_handoff_chains_terminate() {
        // A local hand-off that preserves hop AND cost (dcf's route→flood
        // switch): the strictly-decreasing id bound must step past it.
        let mut sink = TraceSink::new();
        sink.emit(
            0,
            TraceEvent::Hop {
                src: 0,
                dst: 0,
                hop: 0,
                edge_cost_ms: 0,
                cost_ms: 0,
                kind: HopKind::Local,
            },
        );
        sink.emit(
            0,
            TraceEvent::Hop {
                src: 0,
                dst: 5,
                hop: 1,
                edge_cost_ms: 3,
                cost_ms: 3,
                kind: HopKind::Network,
            },
        );
        sink.emit(
            1,
            TraceEvent::Hop {
                src: 5,
                dst: 5,
                hop: 1,
                edge_cost_ms: 0,
                cost_ms: 3,
                kind: HopKind::Local,
            },
        );
        sink.emit(1, TraceEvent::Answer { node: 5, hop: 1, cost_ms: 3 });
        let out = outcome(1, 3, 1);
        let tr = QueryTrace::from_sim_records("toy", sink.into_records(), &out);
        assert_eq!(tr.root.total(), (1, 3, 1));
    }

    #[test]
    fn jsonl_and_chrome_exports_are_deterministic() {
        let out = outcome(3, 12, 5);
        let a = QueryTrace::modeled("toy", 1, &out);
        let b = QueryTrace::modeled("toy", 1, &out);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_chrome(), b.to_chrome());
        assert!(a.to_jsonl().lines().count() == a.events.len());
        assert!(a.to_chrome().starts_with('[') && a.to_chrome().ends_with(']'));
    }

    #[test]
    fn verdict_counts_surface_in_tree() {
        let mut sink = TraceSink::new();
        sink.emit(
            0,
            TraceEvent::FaultVerdict {
                src: 0,
                dst: 1,
                verdict: Verdict::Lost,
                plan: "hash-loss attempt 0".into(),
            },
        );
        let out = outcome(0, 0, 1);
        let tr = QueryTrace::from_sim_records("toy", sink.into_records(), &out);
        assert_eq!(tr.verdict_count(Verdict::Lost), 1);
        assert!(tr.explain_text().contains("lost: 1"));
    }
}
