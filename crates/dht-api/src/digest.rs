//! The runtime half of the determinism contract: a canonical digest over
//! a full [`DriverReport`].
//!
//! The static rules (`cargo run -p detlint`) catch the *patterns* that
//! break bitwise reproducibility; this digest catches whatever the rules
//! miss. [`DigestReport::of`] folds every field of a report — the merged
//! summaries, the scalar rates, and the complete per-epoch series with its
//! churn and repair stats — into one 64-bit FNV-1a value, canonically:
//! floats contribute their exact bit patterns ([`f64::to_bits`]), never a
//! formatted approximation, so two digests are equal **iff** the reports
//! are bitwise identical. The hasher-perturbation canary
//! (`tests/hasher_perturbation.rs` at the workspace root) re-runs drivers
//! on fresh OS threads (fresh `RandomState` hasher keys), under shuffled
//! shard submission orders and different thread counts, and asserts digest
//! equality across all of it.

use crate::driver::{DriverReport, EpochSummary};

/// FNV-1a offset basis (the same constants as [`crate::fnv1a`], restated
/// here so the streaming form cannot drift from the one-shot helper).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A canonical 64-bit digest of a [`DriverReport`]: equal iff the reports
/// are bitwise identical, field for field, epochs included.
///
/// Displays as 16 hex digits, so failures diff legibly:
///
/// ```
/// use dht_api::{DigestReport, DriverReport};
/// let report = DriverReport::default();
/// let d = DigestReport::of(&report);
/// assert_eq!(d, DigestReport::of(&report.clone()));
/// assert_eq!(format!("{d}").len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DigestReport(u64);

impl DigestReport {
    /// Digests every field of `report` in declaration order.
    pub fn of(report: &DriverReport) -> DigestReport {
        let mut h = Fnv::new();
        h.bytes(report.scheme.as_bytes());
        h.u64(report.queries as u64);
        for s in [
            &report.delay,
            &report.latency,
            &report.messages,
            &report.dest_peers,
            &report.mesg_ratio,
            &report.incre_ratio,
            &report.recall,
        ] {
            h.summary(s);
        }
        h.f64(report.exact_rate);
        h.u64(report.results_returned);
        h.u64(report.epochs.len() as u64);
        for e in &report.epochs {
            h.epoch(e);
        }
        // Metrics fold only when present: an empty registry appends zero
        // bytes, so every digest minted before the registry existed (the
        // committed perturbation canary, BENCH history) is unchanged by
        // its introduction.
        if !report.metrics.is_empty() {
            h.bytes(&report.metrics.digest_bytes());
        }
        DigestReport(h.state)
    }

    /// The raw digest value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for DigestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Streaming FNV-1a over length-framed field encodings. Every value is
/// folded as its full fixed-width little-endian encoding (floats via
/// `to_bits`), so field boundaries cannot alias: the stream is injective
/// over the report's field tuple up to hash collisions.
struct Fnv {
    state: u64,
}

impl Fnv {
    fn new() -> Fnv {
        Fnv { state: FNV_OFFSET }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        // Length-framed so "ab" + "c" never collides with "a" + "bc".
        self.u64(bytes.len() as u64);
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    fn summary(&mut self, s: &simnet::Summary) {
        self.u64(s.count as u64);
        self.f64(s.mean);
        self.f64(s.min);
        self.f64(s.max);
        self.f64(s.p50);
        self.f64(s.p95);
        self.f64(s.p99);
        self.f64(s.stddev);
    }

    fn epoch(&mut self, e: &EpochSummary) {
        self.u64(e.epoch as u64);
        self.u64(e.peers as u64);
        self.u64(e.churn.joins as u64);
        self.u64(e.churn.leaves as u64);
        self.u64(e.churn.crashes as u64);
        self.u64(e.churn.skipped as u64);
        self.bool(e.churn.stabilized);
        self.u64(e.churn.stabilize_ops as u64);
        self.u64(e.repair.placed as u64);
        self.u64(e.repair.dropped as u64);
        self.u64(e.repair.messages);
        self.u64(e.repair.latency);
        self.f64(e.delay_mean);
        self.f64(e.latency_mean);
        self.f64(e.exact_rate);
        self.f64(e.recall_mean);
        self.u64(e.results_returned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChurnStats;

    fn sample_report() -> DriverReport {
        DriverReport {
            scheme: "pira".to_string(),
            queries: 60,
            delay: simnet::Summary::from_samples([1.0, 2.0, 3.0]),
            latency: simnet::Summary::from_samples([10.0, 20.0]),
            messages: simnet::Summary::from_samples([5.0]),
            dest_peers: simnet::Summary::from_samples([2.0, 2.0]),
            mesg_ratio: simnet::Summary::from_samples([2.5]),
            incre_ratio: simnet::Summary::from_samples([1.25]),
            recall: simnet::Summary::from_samples([1.0, 1.0]),
            exact_rate: 1.0,
            results_returned: 123,
            epochs: vec![EpochSummary {
                epoch: 0,
                peers: 100,
                churn: ChurnStats { joins: 3, ..Default::default() },
                repair: crate::ReplicaRepair { placed: 2, dropped: 1, messages: 3, latency: 9 },
                delay_mean: 2.0,
                latency_mean: 15.0,
                exact_rate: 1.0,
                recall_mean: 1.0,
                results_returned: 60,
            }],
            metrics: crate::MetricsRegistry::new(),
        }
    }

    #[test]
    fn digest_is_stable_across_clones() {
        let r = sample_report();
        assert_eq!(DigestReport::of(&r), DigestReport::of(&r.clone()));
    }

    #[test]
    fn every_field_perturbs_the_digest() {
        let base = DigestReport::of(&sample_report());
        let variants: Vec<DriverReport> = vec![
            {
                let mut r = sample_report();
                r.scheme = "pirb".to_string();
                r
            },
            {
                let mut r = sample_report();
                r.queries += 1;
                r
            },
            {
                let mut r = sample_report();
                r.delay.mean += 1e-12;
                r
            },
            {
                let mut r = sample_report();
                r.exact_rate -= 1e-12;
                r
            },
            {
                let mut r = sample_report();
                r.results_returned += 1;
                r
            },
            {
                let mut r = sample_report();
                r.epochs[0].churn.stabilized = true;
                r
            },
            {
                let mut r = sample_report();
                r.epochs[0].repair.latency += 1;
                r
            },
            {
                let mut r = sample_report();
                r.epochs.clear();
                r
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(DigestReport::of(v), base, "variant {i} did not move the digest");
        }
    }

    #[test]
    fn metrics_fold_only_when_present() {
        // An empty registry must leave the digest exactly where it was
        // before the metrics field existed…
        let with_empty = sample_report();
        assert!(with_empty.metrics.is_empty());
        let base = DigestReport::of(&with_empty);
        // …and a populated one must move it.
        let mut with_metrics = sample_report();
        with_metrics.metrics.inc("queries", 60);
        with_metrics.metrics.observe("delay_hops", 2);
        with_metrics.metrics.load(7, 1);
        assert_ne!(DigestReport::of(&with_metrics), base);
        // Same samples, different grouping ⇒ same digest.
        let mut regrouped = sample_report();
        regrouped.metrics.load(7, 1);
        regrouped.metrics.observe("delay_hops", 2);
        regrouped.metrics.inc("queries", 30);
        regrouped.metrics.inc("queries", 30);
        assert_eq!(DigestReport::of(&regrouped), DigestReport::of(&with_metrics));
    }

    #[test]
    fn float_bit_patterns_matter_not_formatting() {
        // -0.0 formats like 0.0 but is a different bit pattern; the digest
        // must see the difference (that is the "canonical" in canonical
        // hash — no round-trip through Display).
        let mut a = sample_report();
        let mut b = sample_report();
        a.recall.min = 0.0;
        b.recall.min = -0.0;
        assert_ne!(DigestReport::of(&a), DigestReport::of(&b));
    }

    #[test]
    fn swapping_epoch_order_changes_the_digest() {
        let mut r = sample_report();
        let mut e1 = r.epochs[0].clone();
        e1.epoch = 1;
        e1.peers = 97;
        r.epochs.push(e1);
        let forward = DigestReport::of(&r);
        r.epochs.reverse();
        assert_ne!(DigestReport::of(&r), forward);
    }
}
