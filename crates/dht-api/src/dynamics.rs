//! The dynamics contract: membership change as a first-class, scheme-generic
//! capability.
//!
//! The paper's premise is range queries over a *dynamic* P2P system — Armada
//! rides FissionE precisely because FissionE absorbs joins and departures
//! with constant-cost maintenance — yet a query API alone only ever measures
//! frozen networks. This module adds the second half of the contract:
//!
//! * [`DynamicScheme`] — what a scheme exposes when its substrate has churn
//!   primitives: `join`, `leave`, `crash`, `stabilize`, `live_peers`.
//!   Schemes opt in through [`RangeScheme::as_dynamic`], so drivers and
//!   experiments discover support at runtime instead of hard-coding scheme
//!   lists.
//! * [`DynamicDht`] — the same primitives at the substrate level, for
//!   layered schemes (PHT) that inherit dynamics from whatever [`Dht`] they
//!   run over.
//!
//! The key contract is the **stabilize guarantee**: after
//! [`stabilize`](DynamicScheme::stabilize) returns, every query must again
//! be answered exactly (`exact == true`, `peer_recall == 1.0`), whatever
//! sequence of joins, graceful leaves, and crashes preceded it. Graceful
//! leaves hand their records over synchronously; crashes lose locally stored
//! records, and `stabilize` is where the scheme repairs them (schemes keep
//! the published data, so restoration is a re-publish of whatever the
//! crashed peers took down). The workspace-level
//! `tests/scheme_differential.rs` pins this cross-scheme.
//!
//! [`RangeScheme::as_dynamic`]: crate::RangeScheme::as_dynamic
//! [`Dht`]: crate::Dht

use crate::scheme::SchemeError;
use rand::rngs::SmallRng;
use simnet::NodeId;

/// Churn primitives of a range-query scheme whose substrate supports
/// membership change.
///
/// All methods take `&mut self`: membership events are serial, unlike
/// queries. [`ParallelDriver::run_epochs`](crate::ParallelDriver::run_epochs)
/// applies them between query epochs, single-threaded, so the epoch
/// determinism guarantee never depends on event interleaving.
pub trait DynamicScheme {
    /// A new peer joins; placement randomness comes from `rng`. Returns the
    /// newcomer's node id.
    ///
    /// # Errors
    ///
    /// Scheme-specific build-time limits (e.g. a region cannot split below
    /// its resolution floor).
    fn join(&mut self, rng: &mut SmallRng) -> Result<NodeId, SchemeError>;

    /// A peer departs gracefully: its region and records are handed over to
    /// the remaining peers before it goes.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadOrigin`] for dead ids; [`SchemeError::Query`] when
    /// the network is already at its minimum size.
    fn leave(&mut self, node: NodeId) -> Result<(), SchemeError>;

    /// A peer fails abruptly: its region is reclaimed but its locally
    /// stored records are lost until [`stabilize`](Self::stabilize) repairs
    /// them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`leave`](Self::leave).
    fn crash(&mut self, node: NodeId) -> Result<(), SchemeError>;

    /// Restores the scheme to a fully-converged state: overlay invariant
    /// repair (substrate migrations) plus re-publication of records lost to
    /// crashes. Returns the number of repair operations performed.
    ///
    /// After this returns, every query must be exact again — the contract
    /// the workspace differential tests enforce.
    fn stabilize(&mut self) -> usize;

    /// All live peers, in a deterministic order (churn plans pick leave and
    /// crash victims by index into this list).
    fn live_peers(&self) -> Vec<NodeId>;
}

/// Churn primitives of a DHT substrate, mirroring [`DynamicScheme`] one
/// layer down.
///
/// Layered schemes (PHT) forward their own [`DynamicScheme`] impl to the
/// substrate's `DynamicDht`; the substrate owns membership, the layer owns
/// the index structure. Implemented by `fissione::FissioneNet` and
/// `chord::ChordNet`.
pub trait DynamicDht: crate::Dht {
    /// A new node joins; returns its id.
    fn join(&mut self, rng: &mut SmallRng) -> NodeId;

    /// Graceful departure.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadOrigin`] for dead ids; [`SchemeError::Query`] at
    /// the minimum network size.
    fn leave(&mut self, node: NodeId) -> Result<(), SchemeError>;

    /// Abrupt failure (locally stored substrate state is lost).
    ///
    /// # Errors
    ///
    /// Same conditions as [`leave`](Self::leave).
    fn crash(&mut self, node: NodeId) -> Result<(), SchemeError>;

    /// Repairs overlay invariants; returns the number of operations.
    fn stabilize(&mut self) -> usize;

    /// All live nodes, in a deterministic order.
    fn live_nodes(&self) -> Vec<NodeId>;
}
