//! The metrics registry: named counters, fixed-bucket histograms, and
//! per-peer load — merged shard-order-deterministically by the drivers.
//!
//! Everything is a `BTreeMap` keyed by name (or peer id), so iteration,
//! merging, JSON rendering, and digest folding are all independent of
//! insertion order and hasher state — the same discipline the rest of the
//! workspace follows (detlint rule D1). Collection is **opt-in** per
//! driver run ([`QueryDriver::with_metrics`](crate::QueryDriver),
//! [`ParallelDriver::with_metrics`](crate::ParallelDriver)); a report with
//! an empty registry digests exactly as it did before the registry
//! existed, which is what keeps the committed canaries bit-for-bit.
//!
//! Per-peer load directly answers ROADMAP item 4's question — *who absorbs
//! the traffic* — via [`MetricsRegistry::load_skew`]: max/mean and the
//! Gini coefficient of the per-peer query-origin distribution.

use simnet::NodeId;
use std::collections::BTreeMap;

/// Upper bucket edges (inclusive) of every histogram: powers of two from
/// 1 to 2²⁰, plus an overflow bucket. Fixed — never derived from data —
/// so histograms merge bucket-by-bucket across shards and runs.
pub const HISTOGRAM_BOUNDS: [u64; 21] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    262144, 524288, 1048576,
];

/// A fixed-bucket histogram over [`HISTOGRAM_BOUNDS`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// `counts[i]` = samples `≤ HISTOGRAM_BOUNDS[i]` (and above the
    /// previous bound); the final slot counts overflow samples.
    counts: [u64; HISTOGRAM_BOUNDS.len() + 1],
    /// Sum of all recorded values.
    sum: u64,
    /// Number of recorded values.
    count: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx =
            HISTOGRAM_BOUNDS.iter().position(|&b| value <= b).unwrap_or(HISTOGRAM_BOUNDS.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Adds another histogram bucket-by-bucket (both share
    /// [`HISTOGRAM_BOUNDS`], so merging commutes and associates — shard
    /// order cannot change the result).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket counts (last slot = overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            buckets.join(",")
        )
    }
}

/// Per-peer load skew statistics — ROADMAP item 4's max/mean and Gini.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSkew {
    /// Heaviest single peer's load.
    pub max: u64,
    /// Mean load over peers that appear in the map.
    pub mean: f64,
    /// Gini coefficient of the load distribution (0 = perfectly even,
    /// → 1 = one peer absorbs everything).
    pub gini: f64,
}

/// Named counters, fixed-bucket histograms, and per-peer load counts.
///
/// All maps are ordered, so two registries built from the same samples in
/// any grouping merge to identical contents — the property the sharded
/// drivers rely on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    peer_load: BTreeMap<NodeId, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// True when nothing has been recorded — the state in which digest
    /// folding contributes zero bytes.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.peer_load.is_empty()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records a sample into the named histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Adds `by` to a peer's load count.
    pub fn load(&mut self, peer: NodeId, by: u64) {
        *self.peer_load.entry(peer).or_insert(0) += by;
    }

    /// The named counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All per-peer loads in peer order.
    pub fn peer_loads(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.peer_load.iter().map(|(&p, &v)| (p, v))
    }

    /// Folds `other` into `self`. Merging is commutative and associative,
    /// so any shard grouping produces the same registry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (&p, v) in &other.peer_load {
            *self.peer_load.entry(p).or_insert(0) += v;
        }
    }

    /// Max/mean/Gini over the per-peer load map; `None` when no load was
    /// recorded. Peers with zero recorded load don't appear in the map and
    /// are not part of the statistic (the drivers record every query's
    /// origin, so absence means the peer genuinely absorbed nothing —
    /// callers wanting population-wide Gini can pre-seed zeros).
    pub fn load_skew(&self) -> Option<LoadSkew> {
        if self.peer_load.is_empty() {
            return None;
        }
        let loads: Vec<u64> = self.peer_load.values().copied().collect();
        let n = loads.len() as f64;
        let total: u64 = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / n;
        // Gini via the sorted-rank formula: G = (2·Σ i·xᵢ)/(n·Σ xᵢ) − (n+1)/n
        // with xᵢ ascending, i 1-based.
        let gini = if total == 0 {
            0.0
        } else {
            let mut sorted = loads;
            sorted.sort_unstable();
            let weighted: f64 =
                sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
            (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
        };
        Some(LoadSkew { max, mean, gini })
    }

    /// Deterministic JSON rendering (hand-rolled, like every artifact in
    /// the workspace): counters, histograms, per-peer load, and the load
    /// skew summary, all in key order.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        let hists: Vec<String> =
            self.histograms.iter().map(|(k, h)| format!("\"{k}\":{}", h.to_json())).collect();
        let loads: Vec<String> =
            self.peer_load.iter().map(|(p, v)| format!("\"{p}\":{v}")).collect();
        let skew = match self.load_skew() {
            Some(s) => format!(
                "{{\"max\":{},\"mean\":{},\"gini\":{}}}",
                s.max,
                fmt_f64(s.mean),
                fmt_f64(s.gini)
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"counters\":{{{}}},\"histograms\":{{{}}},\"peer_load\":{{{}}},\"load_skew\":{skew}}}",
            counters.join(","),
            hists.join(","),
            loads.join(",")
        )
    }

    /// A flat, deterministic byte rendering for digest folding: every
    /// counter, bucket, and load cell in key order. Empty registry ⇒ empty
    /// bytes, so pre-metrics digests are unchanged.
    pub fn digest_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        for (k, h) in &self.histograms {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&h.count.to_le_bytes());
            for c in &h.counts {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        for (&p, v) in &self.peer_load {
            out.extend_from_slice(&(p as u64).to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

fn fmt_f64(v: f64) -> String {
    // Shortest round-trip float formatting, matching the baseline artifact.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1_048_577] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_048_583);
        assert_eq!(h.buckets()[0], 2, "0 and 1 land in the ≤1 bucket");
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1, "3 lands in ≤4");
        assert_eq!(h.buckets()[HISTOGRAM_BOUNDS.len()], 1, "overflow bucket");
    }

    #[test]
    fn merge_is_grouping_invariant() {
        let samples: Vec<u64> = (0..100).map(|i| (i * 37) % 512).collect();
        let mut whole = MetricsRegistry::new();
        for &s in &samples {
            whole.observe("x", s);
            whole.inc("n", 1);
            whole.load((s % 7) as usize, 1);
        }
        // Split into odd-sized shards, merge in a different order.
        let mut parts: Vec<MetricsRegistry> = Vec::new();
        for chunk in samples.chunks(13) {
            let mut m = MetricsRegistry::new();
            for &s in chunk {
                m.observe("x", s);
                m.inc("n", 1);
                m.load((s % 7) as usize, 1);
            }
            parts.push(m);
        }
        parts.reverse();
        let mut merged = MetricsRegistry::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(whole, merged);
        assert_eq!(whole.digest_bytes(), merged.digest_bytes());
        assert_eq!(whole.to_json(), merged.to_json());
    }

    #[test]
    fn empty_registry_digests_to_nothing() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert!(m.digest_bytes().is_empty());
        assert_eq!(m.load_skew(), None);
    }

    #[test]
    fn load_skew_matches_hand_computation() {
        let mut m = MetricsRegistry::new();
        for (peer, n) in [(0usize, 1u64), (1, 1), (2, 6)] {
            m.load(peer, n);
        }
        let s = m.load_skew().expect("non-empty");
        assert_eq!(s.max, 6);
        assert!((s.mean - 8.0 / 3.0).abs() < 1e-12);
        // Sorted loads [1,1,6]: G = 2(1·1+2·1+3·6)/(3·8) − 4/3 = 42/24 − 4/3.
        assert!((s.gini - (42.0 / 24.0 - 4.0 / 3.0)).abs() < 1e-12, "gini = {}", s.gini);
    }

    #[test]
    fn even_load_has_zero_gini() {
        let mut m = MetricsRegistry::new();
        for p in 0..8 {
            m.load(p, 5);
        }
        let s = m.load_skew().expect("non-empty");
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.max, 5);
    }
}
