//! A sharded workload driver: fan a batch of queries across OS threads
//! against one shared scheme instance, with a determinism guarantee.
//!
//! [`QueryDriver`](crate::QueryDriver) runs its workload serially and
//! threads one RNG through the loop, so its results depend on execution
//! order. [`ParallelDriver`] removes that dependence: every query `q` is
//! fully determined by `(workload, seed, q)` — the range comes from
//! [`WorkloadGen::range`](crate::WorkloadGen::range) and the origin from an
//! RNG derived from `(seed, q)` — so the work can be cut into contiguous
//! index shards, one per thread, and merged back in shard order. The merged
//! [`DriverReport`] is **bitwise identical** for any thread count,
//! `threads = 1` included (enforced by `tests/parallel_determinism.rs` at
//! the workspace root).
//!
//! Scheme instances are shared by reference across the scoped threads —
//! queries take `&self`, and `Send + Sync` are supertraits of
//! [`RangeScheme`] — so no per-thread rebuilds are paid.

use crate::churn::{ChurnPlan, ChurnStats};
use crate::driver::{Accumulator, EpochSummary};
use crate::scheme::{MultiRangeScheme, RangeScheme, SchemeError};
use crate::workload::WorkloadGen;
use crate::DriverReport;

/// Salt separating origin-selection RNG streams from workload streams.
const ORIGIN_SALT: u64 = 0x0419_0419_0419_0419;

/// The default worker thread count: one per available CPU (1 if the
/// parallelism cannot be determined). The single source of truth for
/// every driver and experiment config in the workspace.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A sharded, workload-driven query driver.
///
/// # Example
///
/// Drive any registered scheme over a named workload (here a toy registry;
/// `armada_experiments::standard_registry()` provides the real one):
///
/// ```
/// use dht_api::{ParallelDriver, WorkloadGen};
///
/// # use dht_api::{RangeOutcome, RangeScheme, SchemeError};
/// # use rand::Rng;
/// # struct Scan(Vec<(f64, u64)>);
/// # impl RangeScheme for Scan {
/// #     fn scheme_name(&self) -> &'static str { "scan" }
/// #     fn substrate(&self) -> String { "local".into() }
/// #     fn degree(&self) -> String { "0".into() }
/// #     fn node_count(&self) -> usize { 64 }
/// #     fn publish(&mut self, v: f64, h: u64) -> Result<(), SchemeError> {
/// #         self.0.push((v, h));
/// #         Ok(())
/// #     }
/// #     fn random_origin(&self, rng: &mut rand::rngs::SmallRng) -> usize {
/// #         rng.gen_range(0..64)
/// #     }
/// #     fn range_query(&self, _o: usize, lo: f64, hi: f64, _s: u64)
/// #         -> Result<RangeOutcome, SchemeError> {
/// #         let mut results: Vec<u64> = self.0.iter()
/// #             .filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
/// #         results.sort_unstable();
/// #         Ok(RangeOutcome { results, delay: 1, latency: 1, messages: 1, dest_peers: 1,
/// #             reached_peers: 1, exact: true })
/// #     }
/// # }
/// # let mut scheme = Scan(Vec::new());
/// # for h in 0..100 { scheme.publish(h as f64 * 10.0, h).unwrap(); }
/// let workload = WorkloadGen::named("mixed", (0.0, 1000.0)).unwrap();
/// let driver = ParallelDriver::new(200).with_seed(7).with_threads(4);
/// let report = driver.run(&scheme, &workload).unwrap();
/// assert_eq!(report.queries, 200);
/// // Same seed, any thread count: identical report.
/// let serial = driver.with_threads(1).run(&scheme, &workload).unwrap();
/// assert_eq!(report.delay, serial.delay);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelDriver {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Base seed; query `q` derives all of its randomness from `(seed, q)`.
    pub seed: u64,
    /// Worker thread count (shards are contiguous index chunks).
    pub threads: usize,
    /// Permutes the order shards are *submitted* to worker threads
    /// (0 = natural order). Results always merge in shard-index order, so
    /// the report is identical for every salt — the determinism canary
    /// (`tests/hasher_perturbation.rs`) sweeps this to prove submission
    /// order cannot leak into a report.
    pub shard_salt: u64,
    /// Whether to fill [`DriverReport::metrics`] (off by default, so
    /// existing reports — and their digests — are unchanged).
    pub metrics: bool,
}

impl ParallelDriver {
    /// A driver for `queries` queries with seed 0 and
    /// [`default_threads`] workers.
    pub fn new(queries: usize) -> Self {
        ParallelDriver {
            queries,
            seed: 0,
            threads: default_threads(),
            shard_salt: 0,
            metrics: false,
        }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (clamped to at least 1). The report is
    /// the same for every value; this only tunes wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the shard submission-order salt. The report is the same for
    /// every value; only the order workers are handed their shards moves.
    pub fn with_shard_salt(mut self, salt: u64) -> Self {
        self.shard_salt = salt;
        self
    }

    /// Enables (or disables) metrics collection: counters, histograms, and
    /// per-peer origin load land on [`DriverReport::metrics`], merged in
    /// shard order. All summary statistics are unchanged either way.
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// The origin peer query `q` runs from — the public form of the
    /// driver's origin derivation, so out-of-band tools (the
    /// `trace_explain` bin) can re-run *exactly* the query a report
    /// measured. Pure in `(self.seed, q, scheme membership)`.
    pub fn query_origin(&self, scheme: &dyn RangeScheme, q: usize) -> simnet::NodeId {
        scheme.random_origin(&mut self.origin_rng(q))
    }

    /// The scheme seed query `q` runs with (the `seed + q` convention
    /// shared with [`QueryDriver`](crate::QueryDriver)).
    pub fn query_seed(&self, q: usize) -> u64 {
        self.seed.wrapping_add(q as u64)
    }

    /// The contiguous index shards the batch is cut into.
    fn shards(&self) -> Vec<std::ops::Range<usize>> {
        let threads = self.threads.clamp(1, self.queries.max(1));
        let chunk = self.queries.div_ceil(threads);
        (0..threads)
            .map(|t| (t * chunk).min(self.queries)..((t + 1) * chunk).min(self.queries))
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// Runs one shard's worth of work and hands back its accumulator; the
    /// closure maps a query index to an outcome. Shards are *submitted* in
    /// [`shard_salt`](Self::shard_salt)-permuted order but their results
    /// are re-placed by shard index before merging, so neither scheduling
    /// nor submission order can reach the report.
    fn run_sharded<F>(&self, per_query: F) -> Result<Accumulator, SchemeError>
    where
        F: Fn(
                usize,
                &mut simnet::QueryScratch,
            ) -> Result<(crate::RangeOutcome, usize, simnet::NodeId), SchemeError>
            + Sync,
    {
        let shards = self.shards();
        let mut order: Vec<usize> = (0..shards.len()).collect();
        if self.shard_salt != 0 {
            order.sort_by_key(|&i| splitmix64(self.shard_salt ^ i as u64));
        }
        let metrics = self.metrics;
        let mut shard_results: Vec<Option<Result<Accumulator, SchemeError>>> =
            (0..shards.len()).map(|_| None).collect();
        if shards.len() <= 1 {
            for &i in &order {
                shard_results[i] = Some(run_shard(shards[i].clone(), &per_query, metrics));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = order
                    .iter()
                    .map(|&i| {
                        let shard = shards[i].clone();
                        (i, scope.spawn(|| run_shard(shard, &per_query, metrics)))
                    })
                    .collect();
                for (i, h) in handles {
                    shard_results[i] = Some(h.join().expect("worker panicked"));
                }
            });
        }
        let mut merged = Accumulator::default();
        for r in shard_results {
            merged.merge(r.expect("every shard ran")?);
        }
        Ok(merged)
    }

    /// Runs the batch against a single-attribute scheme: query `q` executes
    /// `workload.range(seed, q)` from an origin drawn via a `(seed, q)`
    /// RNG, with scheme seed `seed + q` (matching [`QueryDriver`]'s
    /// per-query seed convention).
    ///
    /// This is the **streaming** mode: each worker derives its shard's
    /// ranges from the workload generator on the fly, so memory stays
    /// `O(queries / threads)` regardless of batch size — the mode the
    /// scaling sweeps rely on at `N = 10⁶`. Because `workload.range` is a
    /// pure function of `(seed, q)`, the report is bitwise identical to
    /// [`run_materialized`](Self::run_materialized) at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed query error across all shards.
    ///
    /// [`QueryDriver`]: crate::QueryDriver
    pub fn run(
        &self,
        scheme: &dyn RangeScheme,
        workload: &WorkloadGen,
    ) -> Result<DriverReport, SchemeError> {
        self.run_indexed(scheme, |q| workload.range(self.seed, q))
    }

    /// The **materialized** counterpart of [`run`](Self::run): pre-generates
    /// every query range into one `O(queries)` table, then drives the same
    /// sharded execution by table lookup.
    ///
    /// Exists as the oracle for the streaming contract — both modes address
    /// query `q` by the pure function `workload.range(seed, q)`, one eagerly
    /// and one lazily, so their [`DriverReport`]s must be bitwise identical
    /// (pinned by `tests/parallel_determinism.rs`). Prefer
    /// [`run`](Self::run): it has
    /// the same report and does not hold the whole range table in memory.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed query error across all shards.
    pub fn run_materialized(
        &self,
        scheme: &dyn RangeScheme,
        workload: &WorkloadGen,
    ) -> Result<DriverReport, SchemeError> {
        let ranges: Vec<(f64, f64)> =
            (0..self.queries as u64).map(|q| workload.range(self.seed, q)).collect();
        self.run_indexed(scheme, |q| ranges[q as usize])
    }

    /// The general index-addressed form of [`run`](Self::run): `next_range`
    /// maps a query index to its `(lo, hi)` range and must be a pure
    /// function of that index — the determinism guarantee is exactly as
    /// strong as that purity. Useful when the range stream must be decoupled
    /// from the driver's seed (e.g. paired cross-scheme sweeps that share
    /// ranges but not origin streams).
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed query error across all shards.
    pub fn run_indexed<W>(
        &self,
        scheme: &dyn RangeScheme,
        next_range: W,
    ) -> Result<DriverReport, SchemeError>
    where
        W: Fn(u64) -> (f64, f64) + Sync,
    {
        let n_peers = scheme.node_count();
        let retries_before = scheme.retry_attempts();
        let mut acc = self.run_sharded(|q, scratch| {
            let (lo, hi) = next_range(q as u64);
            let origin = scheme.random_origin(&mut self.origin_rng(q));
            let out = scheme.range_query_scratch(
                origin,
                lo,
                hi,
                self.seed.wrapping_add(q as u64),
                scratch,
            )?;
            Ok((out, n_peers, origin))
        })?;
        if let Some(m) = acc.metrics_mut() {
            // The hostile wrapper's cumulative attempt counter: each
            // query's attempt count is deterministic, so the batch delta
            // is too, whatever the interleaving.
            m.inc("retry_attempts", scheme.retry_attempts() - retries_before);
        }
        Ok(acc.report(scheme.scheme_name(), self.queries))
    }

    /// The result-streaming form of [`run`](Self::run): every query's full
    /// outcome — result handles included — is handed to `sink` as soon as
    /// the query completes, then dropped. Combined with the lazily-derived
    /// ranges of streaming mode, this keeps a millions-of-queries sweep at
    /// `O(queries / threads)` memory end to end: neither the range table
    /// nor the result sets are ever materialized batch-wide.
    ///
    /// Determinism contract: the mapping `q → outcome` is a pure function
    /// of `(workload, seed, q)` — identical to what [`run`](Self::run)
    /// measures — and the returned [`DriverReport`] is bitwise identical to
    /// [`run`](Self::run)'s at every thread count. What is *not* specified
    /// is the interleaving of `sink` invocations across worker threads;
    /// `sink` receives the query index precisely so order-sensitive
    /// consumers can reassemble any order they need (an order-insensitive
    /// sink — per-index writes, commutative folds — needs nothing extra).
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed query error across all shards.
    pub fn run_streaming<S>(
        &self,
        scheme: &dyn RangeScheme,
        workload: &WorkloadGen,
        sink: S,
    ) -> Result<DriverReport, SchemeError>
    where
        S: Fn(usize, &crate::RangeOutcome) + Sync,
    {
        let n_peers = scheme.node_count();
        let retries_before = scheme.retry_attempts();
        let mut acc = self.run_sharded(|q, scratch| {
            let (lo, hi) = workload.range(self.seed, q as u64);
            let origin = scheme.random_origin(&mut self.origin_rng(q));
            let out = scheme.range_query_scratch(
                origin,
                lo,
                hi,
                self.seed.wrapping_add(q as u64),
                scratch,
            )?;
            sink(q, &out);
            Ok((out, n_peers, origin))
        })?;
        if let Some(m) = acc.metrics_mut() {
            m.inc("retry_attempts", scheme.retry_attempts() - retries_before);
        }
        Ok(acc.report(scheme.scheme_name(), self.queries))
    }

    /// Runs the batch against a multi-attribute scheme: query `q` executes
    /// `workload.rect(domains, seed, q)`.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed query error across all shards.
    pub fn run_multi(
        &self,
        scheme: &dyn MultiRangeScheme,
        domains: &[(f64, f64)],
        workload: &WorkloadGen,
    ) -> Result<DriverReport, SchemeError> {
        let n_peers = scheme.node_count();
        let acc = self.run_sharded(|q, scratch| {
            let rect = workload.rect(domains, self.seed, q as u64);
            let origin = scheme.random_origin(&mut self.origin_rng(q));
            let out =
                scheme.rect_query_scratch(origin, &rect, self.seed.wrapping_add(q as u64), scratch)?;
            Ok((out, n_peers, origin))
        })?;
        Ok(acc.report(scheme.scheme_name(), self.queries))
    }

    /// Runs an epoch-driven batch under a churn plan: `epochs` epochs of
    /// `self.queries` queries each, with the plan's membership events (and
    /// its stabilization policy) applied between epochs.
    ///
    /// Within an epoch the batch shards across threads against
    /// `&dyn RangeScheme` exactly like [`run`](Self::run) — query `q` of
    /// epoch `e` is addressed by the *global* index `e·queries + q`, so
    /// ranges, origins, and scheme seeds are all pure functions of that
    /// index and the report stays **bitwise identical for any thread
    /// count**. Membership events apply between epochs under `&mut`,
    /// single-threaded, from an RNG derived from `(plan, seed, epoch)`
    /// alone. The merged [`DriverReport`] covers all epochs and carries the
    /// per-epoch recall/exactness/delay series in
    /// [`DriverReport::epochs`].
    ///
    /// # Errors
    ///
    /// [`SchemeError::Unsupported`] when the scheme's
    /// [`as_dynamic`](RangeScheme::as_dynamic) hook returns `None`;
    /// otherwise the lowest-indexed query error of the failing epoch.
    pub fn run_epochs(
        &self,
        scheme: &mut dyn RangeScheme,
        workload: &WorkloadGen,
        plan: &ChurnPlan,
        epochs: usize,
    ) -> Result<DriverReport, SchemeError> {
        if scheme.as_dynamic().is_none() {
            return Err(SchemeError::Unsupported {
                scheme: scheme.scheme_name().to_string(),
                feature: "dynamics",
            });
        }
        let name = scheme.scheme_name().to_string();
        let mut total = Accumulator::default();
        let mut series = Vec::with_capacity(epochs);
        let mut pending_churn = ChurnStats::default();
        let mut pending_repair = crate::ReplicaRepair::default();
        for epoch in 0..epochs {
            // Hostile-wrapped schemes observe the epoch through their
            // fault plan (partition open/heal schedules). Advanced here,
            // serially, before the sharded batch: the epoch a query sees
            // is a pure function of its global index.
            if let Some(hostile) = scheme.as_hostile() {
                hostile.set_epoch(epoch as u64);
            }
            let n_peers = scheme.node_count();
            let base = epoch * self.queries;
            let acc = {
                let shared: &dyn RangeScheme = &*scheme;
                self.run_sharded(|q, scratch| {
                    let g = (base + q) as u64;
                    let (lo, hi) = workload.range(self.seed, g);
                    let origin = shared.random_origin(&mut self.origin_rng(base + q));
                    let out = shared.range_query_scratch(
                        origin,
                        lo,
                        hi,
                        self.seed.wrapping_add(g),
                        scratch,
                    )?;
                    Ok((out, n_peers, origin))
                })?
            };
            let epoch_report = acc.clone().report(&name, self.queries);
            series.push(EpochSummary {
                epoch,
                peers: n_peers,
                churn: std::mem::take(&mut pending_churn),
                repair: std::mem::take(&mut pending_repair),
                delay_mean: epoch_report.delay.mean,
                latency_mean: epoch_report.latency.mean,
                exact_rate: epoch_report.exact_rate,
                recall_mean: epoch_report.recall.mean,
                results_returned: epoch_report.results_returned,
            });
            total.merge(acc);
            if epoch + 1 < epochs {
                let dynamic = scheme.as_dynamic().expect("checked above");
                pending_churn = plan.apply(dynamic, self.seed, epoch as u64)?;
                // Replicated schemes re-replicate after membership events;
                // when the plan already stabilized (which repairs replicas
                // too), this pass finds nothing left to do and reports the
                // delta honestly.
                pending_repair =
                    scheme.as_replicated().map_or_else(Default::default, |c| c.re_replicate());
            }
        }
        let mut report = total.report(&name, epochs * self.queries);
        if self.metrics {
            // Epoch-level traffic that is not per-outcome: repair and churn
            // totals, folded serially in epoch order.
            for e in &series {
                report.metrics.inc("repair_placed", e.repair.placed as u64);
                report.metrics.inc("repair_dropped", e.repair.dropped as u64);
                report.metrics.inc("repair_messages", e.repair.messages);
                report.metrics.inc("repair_latency_ms", e.repair.latency);
                report.metrics.inc("churn_joins", e.churn.joins as u64);
                report.metrics.inc("churn_leaves", e.churn.leaves as u64);
                report.metrics.inc("churn_crashes", e.churn.crashes as u64);
            }
        }
        report.epochs = series;
        Ok(report)
    }

    /// Runs one query of the batch with tracing: the exact `(range,
    /// origin, seed)` triple [`run`](Self::run) would use for index `q`,
    /// through the scheme's [`trace_query`](RangeScheme::trace_query) path.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Unsupported`] when the scheme does not support
    /// tracing; otherwise as [`run`](Self::run).
    pub fn trace_one(
        &self,
        scheme: &dyn RangeScheme,
        workload: &WorkloadGen,
        q: usize,
    ) -> Result<(crate::RangeOutcome, crate::QueryTrace), SchemeError> {
        let (lo, hi) = workload.range(self.seed, q as u64);
        let origin = self.query_origin(scheme, q);
        scheme.trace_query(origin, lo, hi, self.query_seed(q))
    }

    /// The traced form of [`run`](Self::run): the same sharded execution,
    /// additionally collecting every query's [`QueryTrace`]. Traces come
    /// back in **query-index order** whatever the thread count or shard
    /// salt — shards are contiguous ascending index ranges re-placed by
    /// shard index before concatenation, so the serialized event stream is
    /// byte-identical across `{1, n}` threads and every submission order
    /// (pinned by `tests/parallel_determinism.rs`).
    ///
    /// The report's summary statistics are **not** derived from the traced
    /// path's outcomes being special in any way: `trace_query` returns the
    /// same outcome `range_query` would, so the report matches an untraced
    /// [`run`](Self::run) field for field.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed query error across all shards.
    ///
    /// [`QueryTrace`]: crate::QueryTrace
    pub fn run_traced(
        &self,
        scheme: &dyn RangeScheme,
        workload: &WorkloadGen,
    ) -> Result<(DriverReport, Vec<crate::QueryTrace>), SchemeError> {
        type ShardOut = Result<(Accumulator, Vec<crate::QueryTrace>), SchemeError>;
        let n_peers = scheme.node_count();
        let shards = self.shards();
        let mut order: Vec<usize> = (0..shards.len()).collect();
        if self.shard_salt != 0 {
            order.sort_by_key(|&i| splitmix64(self.shard_salt ^ i as u64));
        }
        let run_one = |shard: std::ops::Range<usize>| -> ShardOut {
            let mut acc =
                if self.metrics { Accumulator::with_metrics() } else { Accumulator::default() };
            let mut traces = Vec::with_capacity(shard.len());
            for q in shard {
                let (out, tr) = self.trace_one(scheme, workload, q)?;
                acc.push(&out, n_peers, self.query_origin(scheme, q));
                traces.push(tr);
            }
            Ok((acc, traces))
        };
        let mut shard_results: Vec<Option<ShardOut>> = (0..shards.len()).map(|_| None).collect();
        if shards.len() <= 1 {
            for &i in &order {
                shard_results[i] = Some(run_one(shards[i].clone()));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = order
                    .iter()
                    .map(|&i| {
                        let shard = shards[i].clone();
                        (i, scope.spawn(|| run_one(shard)))
                    })
                    .collect();
                for (i, h) in handles {
                    shard_results[i] = Some(h.join().expect("worker panicked"));
                }
            });
        }
        let mut merged = Accumulator::default();
        let mut all = Vec::with_capacity(self.queries);
        for r in shard_results {
            let (acc, traces) = r.expect("every shard ran")?;
            merged.merge(acc);
            all.extend(traces);
        }
        Ok((merged.report(scheme.scheme_name(), self.queries), all))
    }

    /// Origin-selection RNG for query `q`: index-derived, like the
    /// workload's, so origins are shard-invariant too.
    fn origin_rng(&self, q: usize) -> rand::rngs::SmallRng {
        simnet::rng_from_seed(
            self.seed ^ ORIGIN_SALT ^ (q as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
        )
    }
}

/// SplitMix64 finalizer: the permutation key behind
/// [`ParallelDriver::shard_salt`].
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Executes one contiguous shard serially, in index order, with one
/// [`QueryScratch`](simnet::QueryScratch) for the whole shard — per-query
/// setup allocations are paid once per worker thread, and the scratch
/// contract (bit-identical outcomes) keeps the shard-invariance guarantee
/// intact.
fn run_shard<F>(
    shard: std::ops::Range<usize>,
    per_query: &F,
    metrics: bool,
) -> Result<Accumulator, SchemeError>
where
    F: Fn(
        usize,
        &mut simnet::QueryScratch,
    ) -> Result<(crate::RangeOutcome, usize, simnet::NodeId), SchemeError>,
{
    let mut acc = if metrics { Accumulator::with_metrics() } else { Accumulator::default() };
    let mut scratch = simnet::QueryScratch::new();
    for q in shard {
        let (out, n_peers, origin) = per_query(q, &mut scratch)?;
        acc.push(&out, n_peers, origin);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{RangeOutcome, RangeScheme};
    use rand::Rng;

    /// Deterministic synthetic scheme: cost fields are pure functions of
    /// the query, so any cross-thread nondeterminism shows up as a report
    /// mismatch.
    struct Synth;

    impl RangeScheme for Synth {
        fn scheme_name(&self) -> &'static str {
            "synth"
        }
        fn substrate(&self) -> String {
            "test".into()
        }
        fn degree(&self) -> String {
            "1".into()
        }
        fn node_count(&self) -> usize {
            128
        }
        fn publish(&mut self, _: f64, _: u64) -> Result<(), SchemeError> {
            Ok(())
        }
        fn random_origin(&self, rng: &mut rand::rngs::SmallRng) -> usize {
            rng.gen_range(0..128)
        }
        fn range_query(
            &self,
            origin: usize,
            lo: f64,
            hi: f64,
            seed: u64,
        ) -> Result<RangeOutcome, SchemeError> {
            let width = hi - lo;
            Ok(RangeOutcome {
                results: vec![seed],
                delay: (width as u64 % 17) + (origin as u64 % 3),
                latency: (width as u64 % 29) + (origin as u64 % 5),
                messages: (lo as u64 % 23) + 1,
                dest_peers: (width as usize / 10) + 1,
                reached_peers: (width as usize / 10) + 1,
                exact: true,
            })
        }
    }

    #[test]
    fn shards_cover_exactly_once() {
        for (queries, threads) in [(100, 8), (7, 8), (8, 3), (1, 4), (0, 4), (64, 1)] {
            let d = ParallelDriver { queries, seed: 0, threads, shard_salt: 0, metrics: false };
            let mut seen = vec![0usize; queries];
            for shard in d.shards() {
                for q in shard {
                    seen[q] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "q={queries} t={threads}: {seen:?}");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let wl = WorkloadGen::named("mixed", (0.0, 1000.0)).unwrap();
        let base = ParallelDriver::new(257).with_seed(99);
        let serial = base.with_threads(1).run(&Synth, &wl).unwrap();
        for threads in [2, 3, 8, 64] {
            let sharded = base.with_threads(threads).run(&Synth, &wl).unwrap();
            assert_eq!(sharded.delay, serial.delay, "threads={threads}");
            assert_eq!(sharded.messages, serial.messages);
            assert_eq!(sharded.dest_peers, serial.dest_peers);
            assert_eq!(sharded.mesg_ratio, serial.mesg_ratio);
            assert_eq!(sharded.incre_ratio, serial.incre_ratio);
            assert_eq!(sharded.exact_rate, serial.exact_rate);
            assert_eq!(sharded.results_returned, serial.results_returned);
        }
    }

    #[test]
    fn shard_salt_permutes_submission_without_touching_the_report() {
        let wl = WorkloadGen::named("mixed", (0.0, 1000.0)).unwrap();
        let base = ParallelDriver::new(257).with_seed(99).with_threads(8);
        let reference = base.run(&Synth, &wl).unwrap();
        for salt in [1u64, 0x5eed, u64::MAX] {
            let permuted = base.with_shard_salt(salt).run(&Synth, &wl).unwrap();
            assert_eq!(
                crate::DigestReport::of(&permuted),
                crate::DigestReport::of(&reference),
                "salt {salt:#x} leaked into the report"
            );
        }
    }

    #[test]
    fn per_query_seed_convention_matches_query_driver() {
        // results carry the scheme seed in Synth; with base seed 10 and 4
        // queries the batch must have used seeds 10..14.
        let wl = WorkloadGen::named("uniform", (0.0, 1000.0)).unwrap();
        let d = ParallelDriver { queries: 4, seed: 10, threads: 2, shard_salt: 0, metrics: false };
        let report = d.run(&Synth, &wl).unwrap();
        // One result per query; sum of seeds 10+11+12+13 = 46 is invisible
        // through the report, but the count is exact.
        assert_eq!(report.results_returned, 4);
        assert_eq!(report.queries, 4);
    }

    #[test]
    fn errors_propagate_from_any_shard() {
        struct FailAbove(usize);
        impl RangeScheme for FailAbove {
            fn scheme_name(&self) -> &'static str {
                "fail"
            }
            fn substrate(&self) -> String {
                "test".into()
            }
            fn degree(&self) -> String {
                "0".into()
            }
            fn node_count(&self) -> usize {
                4
            }
            fn publish(&mut self, _: f64, _: u64) -> Result<(), SchemeError> {
                Ok(())
            }
            fn random_origin(&self, _: &mut rand::rngs::SmallRng) -> usize {
                0
            }
            fn range_query(
                &self,
                _: usize,
                _: f64,
                _: f64,
                seed: u64,
            ) -> Result<RangeOutcome, SchemeError> {
                if seed as usize >= self.0 {
                    return Err(SchemeError::Query("boom".into()));
                }
                Ok(RangeOutcome {
                    results: vec![],
                    delay: 0,
                    latency: 0,
                    messages: 0,
                    dest_peers: 0,
                    reached_peers: 0,
                    exact: true,
                })
            }
        }
        let wl = WorkloadGen::named("uniform", (0.0, 10.0)).unwrap();
        // Failure lands in the last shard; the driver must still report it.
        let d = ParallelDriver { queries: 40, seed: 0, threads: 4, shard_salt: 0, metrics: false };
        assert!(d.run(&FailAbove(35), &wl).is_err());
        assert!(d.run(&FailAbove(1000), &wl).is_ok());
    }

    #[test]
    fn streaming_sees_every_outcome_once_and_matches_run() {
        use std::sync::Mutex;
        let wl = WorkloadGen::named("mixed", (0.0, 1000.0)).unwrap();
        let base = ParallelDriver::new(257).with_seed(99);
        let reference = base.with_threads(1).run(&Synth, &wl).unwrap();
        for threads in [1, 4, 8] {
            let streamed: Mutex<Vec<Option<Vec<u64>>>> = Mutex::new(vec![None; 257]);
            let report = base
                .with_threads(threads)
                .run_streaming(&Synth, &wl, |q, out| {
                    let prev = streamed.lock().unwrap()[q].replace(out.results.clone());
                    assert!(prev.is_none(), "query {q} streamed twice");
                })
                .unwrap();
            assert_eq!(
                crate::DigestReport::of(&report),
                crate::DigestReport::of(&reference),
                "threads={threads}: streaming perturbed the report"
            );
            // Synth returns its per-query scheme seed as the sole result, so
            // slot q must hold exactly [seed + q] — the pure q → outcome map.
            let got = streamed.into_inner().unwrap();
            for (q, slot) in got.iter().enumerate() {
                assert_eq!(
                    slot.as_deref(),
                    Some(&[99 + q as u64][..]),
                    "threads={threads}: query {q} missing or wrong"
                );
            }
        }
    }
}
