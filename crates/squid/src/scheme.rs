//! Squid behind the unified [`dht_api`] query interfaces.
//!
//! Squid natively answers hyper-rectangles ([`MultiRangeScheme`]); built
//! over a single attribute it also serves the single-attribute
//! [`RangeScheme`] contract, which is how it joins the cross-scheme
//! differential workload. Both impls query through `&self` (cluster
//! refinement allocates per call), so a built net is `Send + Sync` and
//! shards across parallel-driver threads; [`register`] exposes both
//! shapes under `"squid"`.
//!
//! Squid does **not** opt into the dynamics layer: its SFC cluster tables
//! are derived from a fixed Chord snapshot at build time (the native code
//! has no churn path for them), so [`RangeScheme::as_dynamic`] honestly
//! stays `None` and epoch-driven churn runs skip it at runtime.

use crate::{SquidError, SquidNet, SquidOutcome};
use dht_api::{
    BuildParams, MultiBuildParams, MultiRangeScheme, OutcomeCosts, RangeOutcome, RangeScheme,
    SchemeError, SchemeRegistry,
};
use rand::rngs::SmallRng;
use simnet::NodeId;

impl From<SquidError> for SchemeError {
    fn from(e: SquidError) -> Self {
        match e {
            SquidError::WrongArity { expected, got } => SchemeError::WrongArity { expected, got },
            SquidError::EmptyRange { .. } => SchemeError::Query(e.to_string()),
        }
    }
}

impl SquidOutcome {
    /// Converts into the scheme-generic outcome. Squid's destination unit
    /// is the curve cluster; refinement visits every overlapping cluster,
    /// so queries are exact by construction.
    pub fn into_outcome(self) -> RangeOutcome {
        RangeOutcome::from_native(
            self.results,
            OutcomeCosts { hops: self.delay, latency: self.latency, messages: self.messages },
            self.clusters,
            self.clusters,
            true,
        )
    }
}

impl From<SquidOutcome> for RangeOutcome {
    fn from(out: SquidOutcome) -> Self {
        out.into_outcome()
    }
}

impl RangeScheme for SquidNet {
    fn scheme_name(&self) -> &'static str {
        "squid"
    }

    fn substrate(&self) -> String {
        if self.net_model().is_unit() {
            "Chord".into()
        } else {
            format!("Chord @ {}", self.net_model().name())
        }
    }

    fn degree(&self) -> String {
        "O(logN)".into()
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn supports_rect(&self) -> bool {
        true
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        if self.dims() != 1 {
            return Err(SchemeError::WrongArity { expected: self.dims(), got: 1 });
        }
        SquidNet::publish(self, &[value], handle)?;
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.random_node(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if self.dims() != 1 {
            return Err(SchemeError::WrongArity { expected: self.dims(), got: 1 });
        }
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        Ok(SquidNet::range_query(self, origin, &[(lo, hi)])?.into_outcome())
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        // Squid's costs come from the analytic cluster-refinement model,
        // not a per-message simulation, so the trace is an honestly-labeled
        // modeled decomposition of the reported totals.
        let out = RangeScheme::range_query(self, origin, lo, hi, seed)?;
        let trace = dht_api::QueryTrace::modeled(RangeScheme::scheme_name(self), origin, &out);
        Ok((out, trace))
    }
}

impl MultiRangeScheme for SquidNet {
    fn scheme_name(&self) -> &'static str {
        "squid"
    }

    fn substrate(&self) -> String {
        if self.net_model().is_unit() {
            "Chord".into()
        } else {
            format!("Chord @ {}", self.net_model().name())
        }
    }

    fn degree(&self) -> String {
        "O(logN)".into()
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn dims(&self) -> usize {
        SquidNet::dims(self)
    }

    fn publish_point(&mut self, point: &[f64], handle: u64) -> Result<(), SchemeError> {
        SquidNet::publish(self, point, handle)?;
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.random_node(rng)
    }

    fn rect_query(
        &self,
        origin: NodeId,
        rect: &[(f64, f64)],
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if let Some(&(lo, hi)) = rect.iter().find(|&&(lo, hi)| lo > hi) {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        Ok(SquidNet::range_query(self, origin, rect)?.into_outcome())
    }
}

/// Registers `"squid"` as both a single-attribute scheme (1-D build) and a
/// multi-attribute scheme.
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_single(
        "squid",
        Box::new(|p: &BuildParams, rng| {
            let mut net = SquidNet::build(p.n, &[p.domain], rng)
                .map_err(|e| SchemeError::Build(e.to_string()))?;
            net.set_net_model(p.net);
            Ok(Box::new(net))
        }),
    );
    reg.register_multi(
        "squid",
        Box::new(|p: &MultiBuildParams, rng| {
            let mut net = SquidNet::build(p.n, &p.domains, rng)
                .map_err(|e| SchemeError::Build(e.to_string()))?;
            net.set_net_model(p.net);
            Ok(Box::new(net))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn one_dimensional_build_serves_the_single_attr_contract() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        let mut rng = simnet::rng_from_seed(930);
        let mut scheme =
            reg.build_single("squid", &BuildParams::new(70, 0.0, 1000.0), &mut rng).unwrap();
        let mut data = Vec::new();
        for h in 0..200u64 {
            let v = rng.gen_range(0.0..=1000.0);
            scheme.publish(v, h).unwrap();
            data.push((v, h));
        }
        for _ in 0..15 {
            let lo = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.5..80.0);
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query(origin, lo, hi, 0).unwrap();
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
        }
    }

    #[test]
    fn multi_build_rejects_single_attr_calls() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        let mut rng = simnet::rng_from_seed(931);
        let params = MultiBuildParams::new(40, &[(0.0, 1.0), (0.0, 1.0)]);
        let multi = reg.build_multi("squid", &params, &mut rng).unwrap();
        assert_eq!(multi.dims(), 2);
        // The same network viewed through the single-attribute trait must
        // refuse, not silently mis-query.
        let mut rng2 = simnet::rng_from_seed(931);
        let net = SquidNet::build(40, &[(0.0, 1.0), (0.0, 1.0)], &mut rng2).unwrap();
        assert!(matches!(
            RangeScheme::range_query(&net, 0, 0.1, 0.2, 0),
            Err(SchemeError::WrongArity { .. })
        ));
    }
}
