//! Squid (Schmidt & Parashar, IEEE Internet Computing 2004): multi-attribute
//! range queries over Chord via space-filling-curve clusters — the
//! `O(h·logN)` row of the Armada paper's Table 1.
//!
//! Squid maps `m`-attribute keys onto the Chord ring with an SFC (z-order
//! here) and answers a rectangle query by *recursive cluster refinement*:
//! starting from coarse curve clusters that overlap the query, each
//! refinement step routes the sub-cluster through Chord to the node owning
//! its first key — so **every refinement level costs a full `O(log N)`
//! routing**, giving the `O(h·logN)` delay the Armada paper contrasts with
//! PIRA's single-`logN` bound.
//!
//! # Example
//!
//! ```
//! use squid::SquidNet;
//!
//! let mut rng = simnet::rng_from_seed(9);
//! let mut net = SquidNet::build(64, &[(0.0, 100.0), (0.0, 100.0)], &mut rng)?;
//! net.publish(&[50.0, 50.0], 1)?;
//! net.publish(&[90.0, 10.0], 2)?;
//! let origin = net.random_node(&mut rng);
//! let out = net.range_query(origin, &[(40.0, 60.0), (40.0, 60.0)])?;
//! assert_eq!(out.results, vec![1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheme;

pub use scheme::register;

use chord::ChordNet;
use dht_api::Dht;
use rand::rngs::SmallRng;
use sfc::{merge_ranges, ZSpace};
use simnet::NodeId;

/// Default bits per attribute for the SFC quantisation.
pub const DEFAULT_BITS: u32 = 10;

/// Errors returned by Squid operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SquidError {
    /// Wrong number of attributes.
    WrongArity {
        /// Expected attribute count.
        expected: usize,
        /// Supplied attribute count.
        got: usize,
    },
    /// An attribute domain or query range was empty.
    EmptyRange {
        /// Index of the offending attribute.
        attribute: usize,
    },
}

impl std::fmt::Display for SquidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SquidError::WrongArity { expected, got } => {
                write!(f, "expected {expected} attributes, got {got}")
            }
            SquidError::EmptyRange { attribute } => {
                write!(f, "empty range for attribute {attribute}")
            }
        }
    }
}

impl std::error::Error for SquidError {}

/// Result of a Squid range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquidOutcome {
    /// Matching record handles, ascending.
    pub results: Vec<u64>,
    /// Critical-path delay: per refinement level, the slowest routing, plus
    /// the ring-segment walks that collect cluster contents.
    pub delay: u64,
    /// The same per-level critical path priced in virtual milliseconds
    /// under the deployment's [`NetModel`](simnet::NetModel): each Chord
    /// routing charges its real finger path's edges plus the direct
    /// response edge, each segment-walk step its successor edge.
    /// `latency ≤ delay` under `unit` (an origin-owned cluster head pays
    /// the response-message hop charge but no wire time).
    pub latency: u64,
    /// Total messages.
    pub messages: u64,
    /// Clusters visited (each costs one Chord routing).
    pub clusters: usize,
}

/// A Squid deployment: Chord ring + SFC mapping + per-node storage.
#[derive(Debug, Clone)]
pub struct SquidNet {
    chord: ChordNet,
    zspace: ZSpace,
    domains: Vec<(f64, f64)>,
    /// Network cost model pricing routings and segment walks.
    net_model: simnet::NetModel,
    /// Per-node stored records `(zkey, point, handle)`.
    records: Vec<Vec<(u64, Vec<f64>, u64)>>,
}

impl SquidNet {
    /// Builds an `n`-node Squid system over the given attribute domains.
    ///
    /// # Errors
    ///
    /// Returns [`SquidError::EmptyRange`] for an empty domain.
    pub fn build(n: usize, domains: &[(f64, f64)], rng: &mut SmallRng) -> Result<Self, SquidError> {
        for (i, &(lo, hi)) in domains.iter().enumerate() {
            if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
                return Err(SquidError::EmptyRange { attribute: i });
            }
        }
        let chord = ChordNet::build(n, rng);
        let zspace = ZSpace::new(domains.len() as u32, DEFAULT_BITS);
        Ok(SquidNet {
            chord,
            zspace,
            domains: domains.to_vec(),
            net_model: simnet::NetModel::unit(),
            records: vec![Vec::new(); n],
        })
    }

    /// Replaces the network cost model queries price their edges with
    /// (`unit` by default). Hop and message metrics are model-invariant;
    /// only [`SquidOutcome::latency`] moves.
    pub fn set_net_model(&mut self, model: simnet::NetModel) {
        self.net_model = model;
    }

    /// The network cost model in force.
    pub fn net_model(&self) -> &simnet::NetModel {
        &self.net_model
    }

    /// The underlying Chord ring.
    pub fn chord(&self) -> &ChordNet {
        &self.chord
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.chord.node_count()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of attributes the system was built with.
    pub fn dims(&self) -> usize {
        self.domains.len()
    }

    /// A uniformly random node.
    pub fn random_node(&self, rng: &mut SmallRng) -> NodeId {
        self.chord.random_node(rng)
    }

    /// Maps a z-order key onto the Chord ring (keys use the top bits so
    /// curve order equals ring order).
    fn ring_point(&self, zkey: u64) -> u64 {
        zkey << (64 - self.zspace.key_bits())
    }

    fn quantize_point(&self, values: &[f64]) -> Result<Vec<u32>, SquidError> {
        if values.len() != self.domains.len() {
            return Err(SquidError::WrongArity { expected: self.domains.len(), got: values.len() });
        }
        Ok(values
            .iter()
            .zip(self.domains.iter())
            .map(|(&v, &(lo, hi))| self.zspace.quantize((v - lo) / (hi - lo)))
            .collect())
    }

    /// Publishes a record at the Chord node owning its curve position.
    ///
    /// # Errors
    ///
    /// Returns [`SquidError::WrongArity`] on arity mismatch.
    pub fn publish(&mut self, values: &[f64], handle: u64) -> Result<NodeId, SquidError> {
        let coords = self.quantize_point(values)?;
        let zkey = self.zspace.interleave(&coords);
        let owner = self.chord.successor_of(self.ring_point(zkey));
        self.records[owner].push((zkey, values.to_vec(), handle));
        Ok(owner)
    }

    /// Executes a rectangle query from `origin` via recursive cluster
    /// refinement.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or an empty per-attribute range.
    pub fn range_query(
        &self,
        origin: NodeId,
        query: &[(f64, f64)],
    ) -> Result<SquidOutcome, SquidError> {
        if query.len() != self.domains.len() {
            return Err(SquidError::WrongArity { expected: self.domains.len(), got: query.len() });
        }
        let mut qranges = Vec::with_capacity(query.len());
        for (i, (&(lo, hi), &(dlo, dhi))) in query.iter().zip(self.domains.iter()).enumerate() {
            if lo > hi {
                return Err(SquidError::EmptyRange { attribute: i });
            }
            let a = self.zspace.quantize((lo - dlo) / (dhi - dlo));
            let b = self.zspace.quantize((hi - dlo) / (dhi - dlo));
            qranges.push((a, b));
        }

        // The SFC clusters overlapping the query, as contiguous key ranges
        // annotated with the refinement depth that produced them. Squid
        // refines clusters level by level, each level routed through Chord;
        // the per-level cost is the slowest routing of that level and a
        // cluster emitted at depth `d` has paid `d/dims` refinement rounds.
        let clusters = merge_ranges(self.zspace.decompose(&qranges));
        let model = &self.net_model;
        let mut delay = 0u64;
        let mut latency = 0u64;
        let mut messages = 0u64;
        let mut results = Vec::new();

        // Refinement levels: group clusters by depth (in interleaved bits ⇒
        // one "level" per dims bits). Every level contributes one parallel
        // round of Chord routings.
        let dims = self.zspace.dims().max(1);
        let mut per_level: std::collections::BTreeMap<u32, Vec<&sfc::ZRange>> =
            std::collections::BTreeMap::new();
        for c in &clusters {
            per_level.entry(c.depth.div_ceil(dims)).or_default().push(c);
        }
        for (_, level_clusters) in per_level {
            let mut level_delay = 0u64;
            let mut level_latency = 0u64;
            for cluster in level_clusters {
                // Route to the cluster's first key: the real finger path,
                // priced edge by edge, plus the direct response edge.
                let (lookup, path) =
                    self.chord.route_point_path(origin, self.ring_point(cluster.lo));
                let rtt = lookup.hops as u64 + 1;
                let rtt_latency = model.path_cost(&path) + model.edge_cost(lookup.owner, origin);
                level_delay = level_delay.max(rtt);
                messages += rtt;
                // Walk the successor chain of nodes owning keys in
                // [lo, hi]. A node with ring id `i` owns the keys in
                // `(pred, i]`, so the segment ends at the first node whose
                // id reaches `ring_point(hi)` — possibly wrapping past 0.
                let mut node = lookup.owner;
                let mut walked = 0u64;
                let mut walk_latency = 0u64;
                let mut prev_id: Option<u64> = None;
                loop {
                    for (zkey, point, handle) in &self.records[node] {
                        let inside = *zkey >= cluster.lo
                            && *zkey <= cluster.hi
                            && point
                                .iter()
                                .zip(query.iter())
                                .all(|(&v, &(lo, hi))| v >= lo && v <= hi);
                        if inside {
                            results.push(*handle);
                        }
                    }
                    let nid = self.chord.id_of(node);
                    if nid >= self.ring_point(cluster.hi) {
                        break; // this node's bucket covers through the top
                    }
                    if prev_id.is_some_and(|p| nid < p) {
                        break; // wrapped: this node owns the ring tail
                    }
                    prev_id = Some(nid);
                    let succ = self.chord.successor_of(nid.wrapping_add(1));
                    if succ == node {
                        break; // single-node ring
                    }
                    walk_latency += model.edge_cost(node, succ);
                    node = succ;
                    walked += 1;
                    messages += 1;
                }
                level_delay = level_delay.max(rtt + walked);
                level_latency = level_latency.max(rtt_latency + walk_latency);
            }
            delay += level_delay;
            latency += level_latency;
        }

        results.sort_unstable();
        results.dedup();
        Ok(SquidOutcome { results, delay, latency, messages, clusters: clusters.len() })
    }

    /// Ground truth for tests: a direct scan over all stored records.
    pub fn expected_results(&self, query: &[(f64, f64)]) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .records
            .iter()
            .flatten()
            .filter(|(_, point, _)| {
                point.iter().zip(query.iter()).all(|(&v, &(lo, hi))| v >= lo && v <= hi)
            })
            .map(|&(_, _, h)| h)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn build2(n: usize, records: usize, seed: u64) -> SquidNet {
        let mut rng = simnet::rng_from_seed(seed);
        let mut net = SquidNet::build(n, &[(0.0, 100.0), (0.0, 100.0)], &mut rng).unwrap();
        for h in 0..records as u64 {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            net.publish(&p, h).unwrap();
        }
        net
    }

    #[test]
    fn squid_is_exact_on_random_queries() {
        let net = build2(80, 300, 1);
        let mut rng = simnet::rng_from_seed(10);
        for _ in 0..40 {
            let q: Vec<(f64, f64)> = (0..2)
                .map(|_| {
                    let lo = rng.gen_range(0.0..80.0);
                    (lo, lo + rng.gen_range(0.5..20.0))
                })
                .collect();
            let origin = net.random_node(&mut rng);
            let out = net.range_query(origin, &q).unwrap();
            assert_eq!(out.results, net.expected_results(&q), "query {q:?}");
        }
    }

    #[test]
    fn squid_delay_is_multiple_of_log_n() {
        let net = build2(256, 500, 2);
        let mut rng = simnet::rng_from_seed(20);
        let origin = net.random_node(&mut rng);
        let out = net.range_query(origin, &[(20.0, 45.0), (30.0, 70.0)]).unwrap();
        let log_n = (256f64).log2();
        assert!(
            out.delay as f64 > 2.0 * log_n,
            "Squid delay {} should exceed 2·logN {}",
            out.delay,
            2.0 * log_n
        );
        assert!(out.clusters > 1, "a fat rectangle spans multiple clusters");
    }

    #[test]
    fn squid_whole_space_returns_everything() {
        let net = build2(50, 120, 3);
        let mut rng = simnet::rng_from_seed(30);
        let origin = net.random_node(&mut rng);
        let out = net.range_query(origin, &[(0.0, 100.0), (0.0, 100.0)]).unwrap();
        assert_eq!(out.results.len(), 120);
    }

    #[test]
    fn squid_rejects_bad_queries() {
        let net = build2(20, 0, 4);
        assert!(matches!(net.range_query(0, &[(0.0, 1.0)]), Err(SquidError::WrongArity { .. })));
        assert!(matches!(
            net.range_query(0, &[(5.0, 1.0), (0.0, 1.0)]),
            Err(SquidError::EmptyRange { .. })
        ));
    }

    #[test]
    fn squid_three_attributes() {
        let mut rng = simnet::rng_from_seed(5);
        let mut net = SquidNet::build(60, &[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &mut rng).unwrap();
        for h in 0..200u64 {
            let p = [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()];
            net.publish(&p, h).unwrap();
        }
        let q = [(0.2, 0.6), (0.1, 0.9), (0.4, 0.5)];
        let out = net.range_query(0, &q).unwrap();
        assert_eq!(out.results, net.expected_results(&q));
    }
}
