//! Property tests: the PHT trie against a flat-model oracle under arbitrary
//! insert/query schedules, over both substrates.

use dht_api::Dht;
use pht::Pht;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pht_agrees_with_flat_model(
        seed in 0u64..10_000,
        values in prop::collection::vec(0f64..=1000.0, 0..150),
        queries in prop::collection::vec((0f64..=1000.0, 0f64..=1000.0), 1..12),
    ) {
        let mut rng = simnet::rng_from_seed(seed);
        let dht = chord::ChordNet::build(48, &mut rng);
        let mut pht = Pht::new(dht, 0.0, 1000.0);
        for (h, &v) in values.iter().enumerate() {
            pht.insert(v, h as u64);
        }
        prop_assert_eq!(pht.record_count(), values.len());
        for &(a, b) in &queries {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let out = pht.range_query(0, lo, hi);
            let mut expect: Vec<u64> = values
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v >= lo && v <= hi)
                .map(|(h, _)| h as u64)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(out.results, expect, "query [{}, {}]", lo, hi);
        }
    }

    #[test]
    fn pht_depth_respects_capacity(
        seed in 0u64..1000,
        values in prop::collection::vec(0f64..=1.0, 1..120),
        capacity in 1usize..8,
    ) {
        let mut rng = simnet::rng_from_seed(seed);
        let dht = chord::ChordNet::build(16, &mut rng);
        let width = 12;
        let mut pht = Pht::with_params(dht, 0.0, 1.0, width, capacity);
        for (h, &v) in values.iter().enumerate() {
            pht.insert(v, h as u64);
        }
        prop_assert!(pht.depth() <= width);
        // Everything is still retrievable.
        let out = pht.range_query(0, 0.0, 1.0);
        prop_assert_eq!(out.results.len(), values.len());
    }

    #[test]
    fn pht_over_fissione_substrate(
        seed in 0u64..1000,
        values in prop::collection::vec(0f64..=100.0, 1..60),
    ) {
        let cfg = fissione::FissioneConfig {
            object_id_len: 24,
            ..fissione::FissioneConfig::default()
        };
        let mut rng = simnet::rng_from_seed(seed);
        let dht = fissione::FissioneNet::build(cfg, 40, &mut rng).unwrap();
        let mut pht = Pht::new(dht, 0.0, 100.0);
        for (h, &v) in values.iter().enumerate() {
            pht.insert(v, h as u64);
        }
        let from = pht.dht().any_node();
        let out = pht.range_query(from, 25.0, 75.0);
        let mut expect: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|&(_, &v)| (25.0..=75.0).contains(&v))
            .map(|(h, _)| h as u64)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(out.results, expect);
    }
}
