//! PHT behind the unified [`dht_api`] query interface.
//!
//! [`PhtScheme`] is generic over the substrate [`Dht`], mirroring PHT's
//! "runs on any DHT" design — a static substrate still makes a full
//! [`RangeScheme`] whose [`as_dynamic`](RangeScheme::as_dynamic) honestly
//! stays `None`. [`DynamicPhtScheme`] wraps it for substrates that also
//! implement [`DynamicDht`], inheriting the dynamics capability the same
//! way the thread-safety contract is inherited: churn forwards to the
//! substrate, while the trie (modeled as DHT-replicated, as in the PHT
//! paper) loses nothing to crashes. [`register`] wires up the two
//! substrates the paper compares (`"pht-fissione"` and `"pht-chord"`),
//! both dynamic.

use crate::{Pht, PhtOutcome};
use dht_api::{
    BuildParams, Dht, DynamicDht, DynamicScheme, FetchCost, OutcomeCosts, RangeOutcome,
    RangeScheme, ReplicaRouting, SchemeError, SchemeRegistry,
};
use rand::rngs::SmallRng;
use simnet::NodeId;

impl PhtOutcome {
    /// Converts into the scheme-generic outcome. PHT's destination unit is
    /// the trie leaf; the trie is authoritative, so queries are exact by
    /// construction.
    pub fn into_outcome(self) -> RangeOutcome {
        RangeOutcome::from_native(
            self.results,
            OutcomeCosts { hops: self.delay, latency: self.latency, messages: self.messages },
            self.dest_leaves,
            self.dest_leaves,
            true,
        )
    }
}

impl From<PhtOutcome> for RangeOutcome {
    fn from(out: PhtOutcome) -> Self {
        out.into_outcome()
    }
}

/// A Prefix Hash Tree over any [`Dht`] as a [`RangeScheme`].
#[derive(Debug, Clone)]
pub struct PhtScheme<D: Dht> {
    pht: Pht<D>,
    scheme_name: &'static str,
    degree: String,
}

impl<D: Dht> PhtScheme<D> {
    /// Wraps a substrate with a registry name and degree label.
    pub fn new(dht: D, params: &BuildParams, scheme_name: &'static str, degree: String) -> Self {
        let mut pht = Pht::new(dht, params.domain.0, params.domain.1);
        pht.set_net_model(params.net);
        PhtScheme { pht, scheme_name, degree }
    }

    /// The wrapped trie (and through it, the substrate).
    pub fn pht(&self) -> &Pht<D> {
        &self.pht
    }
}

impl<D: Dht> RangeScheme for PhtScheme<D> {
    fn scheme_name(&self) -> &'static str {
        self.scheme_name
    }

    fn substrate(&self) -> String {
        let model = self.pht.net_model();
        if model.is_unit() {
            self.pht.dht().name().into()
        } else {
            format!("{} @ {}", self.pht.dht().name(), model.name())
        }
    }

    fn degree(&self) -> String {
        self.degree.clone()
    }

    fn node_count(&self) -> usize {
        self.pht.dht().node_count()
    }

    fn supports_rect(&self) -> bool {
        true // the PHT paper answers rectangles via SFC linearisation
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.pht.insert(value, handle);
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.pht.dht().random_node(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        Ok(self.pht.range_query(origin, lo, hi).into_outcome())
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        // PHT's costs come from the analytic trie/lookup model, not a
        // per-message simulation, so the trace is an honestly-labeled
        // modeled decomposition of the reported totals.
        let out = self.range_query(origin, lo, hi, seed)?;
        let trace = dht_api::QueryTrace::modeled(self.scheme_name(), origin, &out);
        Ok((out, trace))
    }
}

/// [`PhtScheme`] over a churn-capable substrate: the same queries, plus
/// the dynamics capability forwarded to the substrate's [`DynamicDht`].
///
/// A separate wrapper (rather than a `DynamicDht` bound on [`PhtScheme`]
/// itself) keeps the "runs on any DHT" promise: a static substrate still
/// builds a full [`RangeScheme`] whose `as_dynamic` returns `None`.
#[derive(Debug, Clone)]
pub struct DynamicPhtScheme<D: DynamicDht>(PhtScheme<D>);

impl<D: DynamicDht> DynamicPhtScheme<D> {
    /// Wraps a churn-capable substrate; parameters as [`PhtScheme::new`].
    pub fn new(dht: D, params: &BuildParams, scheme_name: &'static str, degree: String) -> Self {
        DynamicPhtScheme(PhtScheme::new(dht, params, scheme_name, degree))
    }

    /// The wrapped static scheme (and through it, the trie and substrate).
    pub fn inner(&self) -> &PhtScheme<D> {
        &self.0
    }
}

impl<D: DynamicDht> RangeScheme for DynamicPhtScheme<D> {
    fn scheme_name(&self) -> &'static str {
        self.0.scheme_name()
    }

    fn substrate(&self) -> String {
        self.0.substrate()
    }

    fn degree(&self) -> String {
        self.0.degree()
    }

    fn node_count(&self) -> usize {
        self.0.node_count()
    }

    fn supports_rect(&self) -> bool {
        self.0.supports_rect()
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.0.publish(value, handle)
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.0.random_origin(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        self.0.range_query(origin, lo, hi, seed)
    }

    fn supports_tracing(&self) -> bool {
        self.0.supports_tracing()
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        self.0.trace_query(origin, lo, hi, seed)
    }

    fn as_dynamic(&mut self) -> Option<&mut dyn DynamicScheme> {
        Some(self)
    }

    fn as_replica_routing(&self) -> Option<&dyn ReplicaRouting> {
        Some(self)
    }
}

impl<D: DynamicDht> ReplicaRouting for DynamicPhtScheme<D> {
    fn live_peers(&self) -> Vec<NodeId> {
        self.0.pht.dht().live_nodes()
    }

    fn close_group(&self, value: f64, r: usize) -> Vec<NodeId> {
        self.0.pht.dht().replica_owners(dht_api::value_key(value), r)
    }

    fn fetch_cost(&self, origin: NodeId, holder: NodeId) -> FetchCost {
        if origin == holder {
            return FetchCost::default(); // the copy is local
        }
        // The generic substrate can route to a *key* but not to a node, so
        // the fetch is priced with the `O(log N)` point-lookup model every
        // PHT trie operation already uses, plus one direct response hop —
        // each modeled hop priced at the direct origin→holder edge.
        let model = self.0.pht.net_model();
        let hops = (self.node_count().max(2) as f64).log2().ceil() as u64;
        FetchCost {
            hops: hops + 1,
            latency: (hops + 1) * model.edge_cost(origin, holder),
            messages: hops + 1,
        }
    }
}

impl<D: DynamicDht> DynamicScheme for DynamicPhtScheme<D> {
    fn join(&mut self, rng: &mut SmallRng) -> Result<NodeId, SchemeError> {
        Ok(self.0.pht.dht_mut().join(rng))
    }

    fn leave(&mut self, node: NodeId) -> Result<(), SchemeError> {
        self.0.pht.dht_mut().leave(node)
    }

    fn crash(&mut self, node: NodeId) -> Result<(), SchemeError> {
        self.0.pht.dht_mut().crash(node)
    }

    fn stabilize(&mut self) -> usize {
        // The trie is DHT-replicated (see `Pht::dht_mut`); only the
        // substrate's overlay invariants need repair.
        self.0.pht.dht_mut().stabilize()
    }

    fn live_peers(&self) -> Vec<NodeId> {
        self.0.pht.dht().live_nodes()
    }
}

/// Registers `"pht-fissione"` (constant-degree substrate, measured degree)
/// and `"pht-chord"` (`O(log N)`-degree substrate).
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_single(
        "pht-fissione",
        Box::new(|p, rng| {
            let cfg = fissione::FissioneConfig {
                object_id_len: p.object_id_len,
                ..fissione::FissioneConfig::default()
            };
            let dht = fissione::FissioneNet::build(cfg, p.n, rng)
                .map_err(|e| SchemeError::Build(e.to_string()))?;
            let degree = format!("{:.1}", dht.degree_stats().total.mean);
            Ok(Box::new(DynamicPhtScheme::new(dht, p, "pht-fissione", degree)))
        }),
    );
    reg.register_single(
        "pht-chord",
        Box::new(|p, rng| {
            let dht = chord::ChordNet::build(p.n, rng);
            let degree = format!("O(logN) = {:.0}", (p.n as f64).log2());
            Ok(Box::new(DynamicPhtScheme::new(dht, p, "pht-chord", degree)))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn pht_scheme_over_both_substrates_is_exact() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        assert_eq!(reg.single_names(), vec!["pht-chord", "pht-fissione"]);
        for name in ["pht-chord", "pht-fissione"] {
            let mut rng = simnet::rng_from_seed(910);
            let params = BuildParams::new(80, 0.0, 1000.0).with_object_id_len(24);
            let mut scheme = reg.build_single(name, &params, &mut rng).unwrap();
            let mut data = Vec::new();
            for h in 0..250u64 {
                let v = rng.gen_range(0.0..=1000.0);
                scheme.publish(v, h).unwrap();
                data.push((v, h));
            }
            for _ in 0..10 {
                let lo = rng.gen_range(0.0..900.0);
                let hi = lo + rng.gen_range(0.5..100.0);
                let origin = scheme.random_origin(&mut rng);
                let out = scheme.range_query(origin, lo, hi, 0).unwrap();
                let mut expect: Vec<u64> =
                    data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
                expect.sort_unstable();
                assert_eq!(out.results, expect, "{name} on [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn dynamics_churn_then_stabilize_keeps_queries_exact_on_both_substrates() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        for name in ["pht-chord", "pht-fissione"] {
            let mut rng = simnet::rng_from_seed(912);
            let params = BuildParams::new(70, 0.0, 1000.0).with_object_id_len(24);
            let mut scheme = reg.build_single(name, &params, &mut rng).unwrap();
            let mut data = Vec::new();
            for h in 0..200u64 {
                let v = rng.gen_range(0.0..=1000.0);
                scheme.publish(v, h).unwrap();
                data.push((v, h));
            }
            let dynamic = scheme.as_dynamic().expect("pht schemes are dynamic");
            for _ in 0..20 {
                dynamic.join(&mut rng).unwrap();
            }
            for _ in 0..25 {
                let live = dynamic.live_peers();
                dynamic.crash(live[live.len() / 2]).unwrap();
            }
            dynamic.stabilize();
            assert_eq!(dynamic.live_peers().len(), 65, "{name}");
            for q in 0..8 {
                let lo = rng.gen_range(0.0..850.0);
                let hi = lo + 120.0;
                let origin = scheme.random_origin(&mut rng);
                let out = scheme.range_query(origin, lo, hi, q).unwrap();
                let mut expect: Vec<u64> =
                    data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
                expect.sort_unstable();
                assert_eq!(out.results, expect, "{name} post-churn [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn pht_over_a_static_only_dht_is_still_a_range_scheme() {
        /// A substrate with no churn primitives at all — `Dht` only.
        struct OneNode;
        impl Dht for OneNode {
            fn route_key(&self, _: NodeId, _: u64) -> dht_api::Lookup {
                dht_api::Lookup { owner: 0, hops: 0 }
            }
            fn any_node(&self) -> NodeId {
                0
            }
            fn random_node(&self, _: &mut SmallRng) -> NodeId {
                0
            }
            fn node_count(&self) -> usize {
                1
            }
            fn name(&self) -> &'static str {
                "static"
            }
        }
        // PHT's "runs on any DHT" promise: a static substrate still makes
        // a full RangeScheme whose dynamics hook honestly returns None.
        let params = BuildParams::new(1, 0.0, 10.0);
        let mut scheme = PhtScheme::new(OneNode, &params, "pht-static", "0".into());
        scheme.publish(5.0, 1).unwrap();
        let out = scheme.range_query(0, 4.0, 6.0, 0).unwrap();
        assert_eq!(out.results, vec![1]);
        assert!(scheme.as_dynamic().is_none());
    }

    #[test]
    fn empty_range_is_rejected_uniformly() {
        let mut rng = simnet::rng_from_seed(911);
        let dht = chord::ChordNet::build(16, &mut rng);
        let params = BuildParams::new(16, 0.0, 10.0);
        let scheme = PhtScheme::new(dht, &params, "pht-chord", "x".into());
        assert!(matches!(scheme.range_query(0, 5.0, 1.0, 0), Err(SchemeError::EmptyRange { .. })));
    }
}
