//! PHT behind the unified [`dht_api`] query interface.
//!
//! [`PhtScheme`] is generic over the substrate [`Dht`], mirroring PHT's
//! "runs on any DHT" design; [`register`] wires up the two substrates the
//! paper compares (`"pht-fissione"` and `"pht-chord"`). `Dht` requires
//! `Send + Sync`, so the layered scheme inherits the thread-safety the
//! parallel driver needs directly from its substrate.

use crate::{Pht, PhtOutcome};
use dht_api::{BuildParams, Dht, RangeOutcome, RangeScheme, SchemeError, SchemeRegistry};
use rand::rngs::SmallRng;
use simnet::NodeId;

impl PhtOutcome {
    /// Converts into the scheme-generic outcome. PHT's destination unit is
    /// the trie leaf; the trie is authoritative, so queries are exact by
    /// construction.
    pub fn into_outcome(self) -> RangeOutcome {
        RangeOutcome {
            results: self.results,
            delay: self.delay,
            messages: self.messages,
            dest_peers: self.dest_leaves,
            reached_peers: self.dest_leaves,
            exact: true,
        }
    }
}

impl From<PhtOutcome> for RangeOutcome {
    fn from(out: PhtOutcome) -> Self {
        out.into_outcome()
    }
}

/// A Prefix Hash Tree over any [`Dht`] as a [`RangeScheme`].
#[derive(Debug, Clone)]
pub struct PhtScheme<D: Dht> {
    pht: Pht<D>,
    scheme_name: &'static str,
    degree: String,
}

impl<D: Dht> PhtScheme<D> {
    /// Wraps a substrate with a registry name and degree label.
    pub fn new(dht: D, params: &BuildParams, scheme_name: &'static str, degree: String) -> Self {
        let pht = Pht::new(dht, params.domain.0, params.domain.1);
        PhtScheme { pht, scheme_name, degree }
    }

    /// The wrapped trie (and through it, the substrate).
    pub fn pht(&self) -> &Pht<D> {
        &self.pht
    }
}

impl<D: Dht> RangeScheme for PhtScheme<D> {
    fn scheme_name(&self) -> &'static str {
        self.scheme_name
    }

    fn substrate(&self) -> String {
        self.pht.dht().name().into()
    }

    fn degree(&self) -> String {
        self.degree.clone()
    }

    fn node_count(&self) -> usize {
        self.pht.dht().node_count()
    }

    fn supports_rect(&self) -> bool {
        true // the PHT paper answers rectangles via SFC linearisation
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.pht.insert(value, handle);
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.pht.dht().random_node(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        Ok(self.pht.range_query(origin, lo, hi).into_outcome())
    }
}

/// Registers `"pht-fissione"` (constant-degree substrate, measured degree)
/// and `"pht-chord"` (`O(log N)`-degree substrate).
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_single(
        "pht-fissione",
        Box::new(|p, rng| {
            let cfg = fissione::FissioneConfig {
                object_id_len: p.object_id_len,
                ..fissione::FissioneConfig::default()
            };
            let dht = fissione::FissioneNet::build(cfg, p.n, rng)
                .map_err(|e| SchemeError::Build(e.to_string()))?;
            let degree = format!("{:.1}", dht.degree_stats().total.mean);
            Ok(Box::new(PhtScheme::new(dht, p, "pht-fissione", degree)))
        }),
    );
    reg.register_single(
        "pht-chord",
        Box::new(|p, rng| {
            let dht = chord::ChordNet::build(p.n, rng);
            let degree = format!("O(logN) = {:.0}", (p.n as f64).log2());
            Ok(Box::new(PhtScheme::new(dht, p, "pht-chord", degree)))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn pht_scheme_over_both_substrates_is_exact() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        assert_eq!(reg.single_names(), vec!["pht-chord", "pht-fissione"]);
        for name in ["pht-chord", "pht-fissione"] {
            let mut rng = simnet::rng_from_seed(910);
            let params = BuildParams::new(80, 0.0, 1000.0).with_object_id_len(24);
            let mut scheme = reg.build_single(name, &params, &mut rng).unwrap();
            let mut data = Vec::new();
            for h in 0..250u64 {
                let v = rng.gen_range(0.0..=1000.0);
                scheme.publish(v, h).unwrap();
                data.push((v, h));
            }
            for _ in 0..10 {
                let lo = rng.gen_range(0.0..900.0);
                let hi = lo + rng.gen_range(0.5..100.0);
                let origin = scheme.random_origin(&mut rng);
                let out = scheme.range_query(origin, lo, hi, 0).unwrap();
                let mut expect: Vec<u64> =
                    data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
                expect.sort_unstable();
                assert_eq!(out.results, expect, "{name} on [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn empty_range_is_rejected_uniformly() {
        let mut rng = simnet::rng_from_seed(911);
        let dht = chord::ChordNet::build(16, &mut rng);
        let params = BuildParams::new(16, 0.0, 10.0);
        let scheme = PhtScheme::new(dht, &params, "pht-chord", "x".into());
        assert!(matches!(scheme.range_query(0, 5.0, 1.0, 0), Err(SchemeError::EmptyRange { .. })));
    }
}
