//! PHT — the Prefix Hash Tree (Chawathe, Ramabhadran et al., SIGCOMM 2005):
//! range queries layered over *any* DHT, reproduced as the second baseline
//! of the Armada paper (Table 1).
//!
//! A PHT stores keys (here: `width`-bit quantised attribute values) in the
//! leaves of a binary trie whose node labels are hashed onto DHT peers, so
//! every trie-node access costs one full DHT routing. A range query
//!
//! 1. binary-searches prefix lengths to find the deepest existing trie node
//!    on the query's common prefix (`O(log width)` sequential DHT gets), and
//! 2. descends in parallel into every child overlapping the range, one DHT
//!    get per visited node, collecting overlapping leaves.
//!
//! Delay is therefore `Θ(depth · routing)` — `O(b·log N)` in the paper's
//! notation — growing with both the trie depth (data/range dependent) and
//! the substrate's routing cost. This is the behaviour Table 1 contrasts
//! with Armada's `< log N` bound; the `ablation_pht` experiment additionally
//! compares the constant-degree (FISSIONE) and `O(log N)`-degree (Chord)
//! substrates under the same PHT.
//!
//! # Example
//!
//! ```
//! use pht::Pht;
//!
//! let mut rng = simnet::rng_from_seed(11);
//! let dht = chord::ChordNet::build(64, &mut rng);
//! let mut pht = Pht::new(dht, 0.0, 1000.0);
//! pht.insert(120.5, 1);
//! pht.insert(130.0, 2);
//! pht.insert(800.0, 3);
//! let out = pht.range_query(0, 100.0, 200.0);
//! assert_eq!(out.results, vec![1, 2]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheme;

pub use scheme::{register, DynamicPhtScheme, PhtScheme};

use dht_api::Dht;
use simnet::NodeId;
use std::collections::BTreeMap;

/// Default key width in bits (quantisation of the attribute domain).
pub const DEFAULT_WIDTH: u32 = 16;

/// Default leaf capacity `B` before a split.
pub const DEFAULT_LEAF_CAPACITY: usize = 4;

/// A binary trie label: the first `len` bits of `bits` (MSB-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    bits: u32,
    len: u32,
}

impl Label {
    /// The root label (empty).
    pub const ROOT: Label = Label { bits: 0, len: 0 };

    /// Extends the label with one bit.
    pub fn child(self, bit: u32) -> Label {
        debug_assert!(bit <= 1);
        Label { bits: (self.bits << 1) | bit, len: self.len + 1 }
    }

    /// The label's depth.
    pub fn len(self) -> u32 {
        self.len
    }

    /// Whether the label is the root.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The first `n ≤ len` bits as a new label.
    pub fn prefix(self, n: u32) -> Label {
        debug_assert!(n <= self.len);
        Label { bits: self.bits >> (self.len - n), len: n }
    }

    /// Smallest `width`-bit key under this label.
    pub fn key_lo(self, width: u32) -> u32 {
        self.bits << (width - self.len)
    }

    /// Largest `width`-bit key under this label.
    pub fn key_hi(self, width: u32) -> u32 {
        (self.bits << (width - self.len)) | ((1u32 << (width - self.len)) - 1)
    }

    /// Whether the label's key interval overlaps `[a, b]`.
    pub fn overlaps(self, width: u32, a: u32, b: u32) -> bool {
        self.key_lo(width) <= b && self.key_hi(width) >= a
    }

    /// Stable bytes for hashing onto the DHT.
    fn hash_key(self) -> u64 {
        let mut buf = [0u8; 8];
        buf[..4].copy_from_slice(&self.bits.to_be_bytes());
        buf[4..].copy_from_slice(&self.len.to_be_bytes());
        dht_api::fnv1a(&buf)
    }
}

#[derive(Debug, Clone)]
enum Node {
    /// Internal node: both children exist (PHT tries are complete).
    Internal,
    /// Leaf bucket: `(key, value, handle)` entries.
    Leaf(Vec<(u32, f64, u64)>),
}

/// Result of a PHT range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhtOutcome {
    /// Handles of matching records, ascending.
    pub results: Vec<u64>,
    /// Critical-path delay in overlay hops: sequential binary-search probes
    /// plus, per descent level, the slowest parallel get.
    pub delay: u64,
    /// Critical-path virtual milliseconds under the trie's
    /// [`NetModel`](simnet::NetModel): the same probe/descent structure
    /// with each get priced by its substrate routing path's edge costs
    /// plus the direct response edge. `latency ≤ delay` under the `unit`
    /// model (a get whose trie node hashes onto the querying peer still
    /// pays the response-message hop charge but no wire time).
    pub latency: u64,
    /// Total overlay messages (each trie-node get = routing hops + 1 direct
    /// response).
    pub messages: u64,
    /// Trie nodes visited (each one costs a DHT get).
    pub nodes_visited: usize,
    /// Leaves whose bucket overlapped the range.
    pub dest_leaves: usize,
}

/// A Prefix Hash Tree over a generic DHT substrate.
///
/// The trie's node table is held here for simulation (its *placement* is
/// what the DHT determines; every access is charged the full routing cost
/// from the querying client, exactly as the layered scheme would pay).
#[derive(Debug, Clone)]
pub struct Pht<D: Dht> {
    dht: D,
    width: u32,
    leaf_capacity: usize,
    domain_lo: f64,
    domain_hi: f64,
    net: simnet::NetModel,
    nodes: BTreeMap<Label, Node>,
}

impl<D: Dht> Pht<D> {
    /// Creates an empty PHT with default width/capacity over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn new(dht: D, lo: f64, hi: f64) -> Self {
        Self::with_params(dht, lo, hi, DEFAULT_WIDTH, DEFAULT_LEAF_CAPACITY)
    }

    /// Creates an empty PHT with explicit key width and leaf capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`, `1 ≤ width ≤ 30` and `capacity ≥ 1`.
    pub fn with_params(dht: D, lo: f64, hi: f64, width: u32, capacity: usize) -> Self {
        assert!(lo < hi, "empty attribute domain");
        assert!((1..=30).contains(&width), "width out of range");
        assert!(capacity >= 1, "leaf capacity must be positive");
        let mut nodes = BTreeMap::new();
        nodes.insert(Label::ROOT, Node::Leaf(Vec::new()));
        Pht {
            dht,
            width,
            leaf_capacity: capacity,
            domain_lo: lo,
            domain_hi: hi,
            net: simnet::NetModel::unit(),
            nodes,
        }
    }

    /// Replaces the network cost model trie-node gets are priced with
    /// (`unit` by default). Hop and message metrics are model-invariant;
    /// only [`PhtOutcome::latency`] moves.
    pub fn set_net_model(&mut self, model: simnet::NetModel) {
        self.net = model;
    }

    /// The network cost model in force.
    pub fn net_model(&self) -> &simnet::NetModel {
        &self.net
    }

    /// The substrate.
    pub fn dht(&self) -> &D {
        &self.dht
    }

    /// The substrate, mutably (churn drives membership through here).
    ///
    /// The trie's node table itself is unaffected by substrate membership:
    /// PHT assumes DHT-level replication of trie nodes (the original paper
    /// stores each node under a replicated put/get interface), so a peer
    /// crash changes routing costs and origins but loses no index state.
    pub fn dht_mut(&mut self) -> &mut D {
        &mut self.dht
    }

    /// Quantises an attribute value to a `width`-bit key.
    pub fn quantize(&self, value: f64) -> u32 {
        let t = ((value - self.domain_lo) / (self.domain_hi - self.domain_lo)).clamp(0.0, 1.0);
        let max = (1u64 << self.width) - 1;
        ((t * max as f64) as u64).min(max) as u32
    }

    /// Inserts a record; splits overflowing leaves (cascading if needed).
    pub fn insert(&mut self, value: f64, handle: u64) {
        let key = self.quantize(value);
        let leaf = self.find_leaf(key);
        match self.nodes.get_mut(&leaf).expect("trie is complete") {
            Node::Leaf(entries) => entries.push((key, value, handle)),
            Node::Internal => unreachable!("find_leaf returns leaves"),
        }
        self.split_while_overflowing(leaf);
    }

    /// Number of stored records.
    pub fn record_count(&self) -> usize {
        self.nodes
            .values()
            .map(|n| match n {
                Node::Leaf(e) => e.len(),
                Node::Internal => 0,
            })
            .sum()
    }

    /// Depth of the deepest leaf (the paper's `b`).
    pub fn depth(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|(_, n)| matches!(n, Node::Leaf(_)))
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(0)
    }

    fn find_leaf(&self, key: u32) -> Label {
        let mut label = Label::ROOT;
        loop {
            match self.nodes.get(&label).expect("trie is complete") {
                Node::Leaf(_) => return label,
                Node::Internal => {
                    let bit = (key >> (self.width - label.len() - 1)) & 1;
                    label = label.child(bit);
                }
            }
        }
    }

    fn split_while_overflowing(&mut self, mut label: Label) {
        loop {
            let needs_split = match self.nodes.get(&label) {
                Some(Node::Leaf(e)) => e.len() > self.leaf_capacity && label.len() < self.width,
                _ => false,
            };
            if !needs_split {
                return;
            }
            let entries = match self.nodes.insert(label, Node::Internal) {
                Some(Node::Leaf(e)) => e,
                _ => unreachable!("checked leaf above"),
            };
            let bit_pos = self.width - label.len() - 1;
            let (ones, zeros): (Vec<_>, Vec<_>) =
                entries.into_iter().partition(|&(k, _, _)| (k >> bit_pos) & 1 == 1);
            let left = label.child(0);
            let right = label.child(1);
            self.nodes.insert(left, Node::Leaf(zeros));
            self.nodes.insert(right, Node::Leaf(ones));
            // At most one child can still overflow; recurse into it.
            for child in [left, right] {
                if let Some(Node::Leaf(e)) = self.nodes.get(&child) {
                    if e.len() > self.leaf_capacity {
                        label = child;
                    }
                }
            }
            if matches!(self.nodes.get(&label), Some(Node::Internal)) {
                return;
            }
        }
    }

    /// One DHT get of a trie node from the client: returns `(hops_rtt,
    /// latency_rtt, messages)` — request routing plus a one-hop direct
    /// response, in hops, cost-model virtual milliseconds, and messages.
    fn get_cost(&self, from: NodeId, label: Label) -> (u64, u64, u64) {
        let (lookup, route_latency) = self.dht.route_key_latency(from, label.hash_key(), &self.net);
        let rtt = lookup.hops as u64 + 1;
        let latency = route_latency + self.net.edge_cost(lookup.owner, from);
        (rtt, latency, rtt)
    }

    /// Executes a range query from the client peer `from`.
    ///
    /// Follows the PHT paper's parallel algorithm: binary search for the
    /// deepest existing node on `lcp(lo_key, hi_key)`, then parallel descent
    /// over range-overlapping children.
    pub fn range_query(&self, from: NodeId, lo: f64, hi: f64) -> PhtOutcome {
        let (a, b) = (self.quantize(lo.min(hi)), self.quantize(hi.max(lo)));
        let mut delay = 0u64;
        let mut latency = 0u64;
        let mut messages = 0u64;
        let mut visited = 0usize;

        // Longest common prefix of the range endpoints.
        let lcp_len = (a ^ b).leading_zeros().saturating_sub(32 - self.width);
        let lcp = Label { bits: a >> (self.width - lcp_len), len: lcp_len };

        // Binary search over prefix lengths for the deepest existing node on
        // the lcp path (sequential DHT gets).
        let (mut lo_len, mut hi_len) = (0u32, lcp.len());
        let mut start = Label::ROOT;
        while lo_len <= hi_len {
            let mid = (lo_len + hi_len).div_ceil(2);
            let probe = lcp.prefix(mid);
            let (rtt, lat, msg) = self.get_cost(from, probe);
            delay += rtt;
            latency += lat; // binary-search probes are sequential
            messages += msg;
            visited += 1;
            if self.nodes.contains_key(&probe) {
                start = probe;
                if mid == hi_len {
                    break;
                }
                lo_len = mid;
            } else {
                if mid == 0 {
                    break;
                }
                hi_len = mid - 1;
            }
        }

        // Parallel descent from `start`.
        let mut results = Vec::new();
        let mut dest_leaves = 0usize;
        let mut frontier = vec![start];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            let mut level_delay = 0u64;
            let mut level_latency = 0u64;
            for label in frontier {
                let (rtt, lat, msg) = self.get_cost(from, label);
                level_delay = level_delay.max(rtt);
                level_latency = level_latency.max(lat); // parallel gets
                messages += msg;
                visited += 1;
                match self.nodes.get(&label).expect("descent stays inside the trie") {
                    Node::Leaf(entries) => {
                        let mut hit = false;
                        for &(k, v, h) in entries {
                            if k >= a && k <= b && v >= lo && v <= hi {
                                results.push(h);
                                hit = true;
                            }
                        }
                        if hit || label.overlaps(self.width, a, b) {
                            dest_leaves += 1;
                        }
                    }
                    Node::Internal => {
                        for bit in 0..2 {
                            let c = label.child(bit);
                            if c.overlaps(self.width, a, b) {
                                next.push(c);
                            }
                        }
                    }
                }
            }
            delay += level_delay;
            latency += level_latency;
            frontier = next;
        }

        results.sort_unstable();
        PhtOutcome { results, delay, latency, messages, nodes_visited: visited, dest_leaves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn chord_pht(n: usize, seed: u64) -> Pht<chord::ChordNet> {
        let mut rng = simnet::rng_from_seed(seed);
        let dht = chord::ChordNet::build(n, &mut rng);
        Pht::new(dht, 0.0, 1000.0)
    }

    #[test]
    fn label_arithmetic() {
        let l = Label::ROOT.child(1).child(0).child(1); // 101
        assert_eq!(l.len(), 3);
        assert_eq!(l.key_lo(8), 0b1010_0000);
        assert_eq!(l.key_hi(8), 0b1011_1111);
        assert!(l.overlaps(8, 0b1010_0000, 0b1010_0001));
        assert!(!l.overlaps(8, 0, 0b1001_1111));
        assert_eq!(l.prefix(2), Label::ROOT.child(1).child(0));
    }

    #[test]
    fn inserts_split_leaves() {
        let mut pht = chord_pht(32, 1);
        for i in 0..50 {
            pht.insert(i as f64 * 20.0, i);
        }
        assert_eq!(pht.record_count(), 50);
        assert!(pht.depth() > 1, "leaves must have split");
    }

    #[test]
    fn range_query_returns_exactly_matching_records() {
        let mut pht = chord_pht(64, 2);
        let mut rng = simnet::rng_from_seed(20);
        let mut data = Vec::new();
        for h in 0..300u64 {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            pht.insert(v, h);
            data.push((v, h));
        }
        for _ in 0..50 {
            let lo: f64 = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.1..150.0);
            let from = 0;
            let out = pht.range_query(from, lo, hi);
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
        }
    }

    #[test]
    fn duplicate_keys_beyond_capacity_stay_at_max_depth() {
        let mut rng = simnet::rng_from_seed(3);
        let dht = chord::ChordNet::build(16, &mut rng);
        let mut pht = Pht::with_params(dht, 0.0, 1.0, 4, 2);
        for h in 0..20 {
            pht.insert(0.5, h); // identical key every time
        }
        assert_eq!(pht.record_count(), 20);
        let out = pht.range_query(0, 0.4, 0.6);
        assert_eq!(out.results.len(), 20);
    }

    #[test]
    fn delay_is_multiple_of_substrate_routing() {
        // PHT pays Θ(depth · logN): substantially more than one routing.
        let mut pht = chord_pht(256, 4);
        let mut rng = simnet::rng_from_seed(40);
        for h in 0..500u64 {
            pht.insert(rng.gen_range(0.0..=1000.0), h);
        }
        let out = pht.range_query(0, 200.0, 400.0);
        let log_n = (256f64).log2();
        assert!(
            out.delay as f64 > 2.0 * log_n,
            "PHT delay {} should exceed 2·logN {}",
            out.delay,
            2.0 * log_n
        );
        assert!(out.nodes_visited >= 3);
    }

    #[test]
    fn works_over_fissione_too() {
        let cfg =
            fissione::FissioneConfig { object_id_len: 24, ..fissione::FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(5);
        let dht = fissione::FissioneNet::build(cfg, 100, &mut rng).unwrap();
        let mut pht = Pht::new(dht, 0.0, 1000.0);
        let mut rng2 = simnet::rng_from_seed(50);
        let mut data = Vec::new();
        for h in 0..200u64 {
            let v: f64 = rng2.gen_range(0.0..=1000.0);
            pht.insert(v, h);
            data.push((v, h));
        }
        let from = pht.dht().any_node();
        let out = pht.range_query(from, 300.0, 500.0);
        let mut expect: Vec<u64> =
            data.iter().filter(|&&(v, _)| (300.0..=500.0).contains(&v)).map(|&(_, h)| h).collect();
        expect.sort_unstable();
        assert_eq!(out.results, expect);
    }

    #[test]
    fn empty_tree_query_is_cheap_and_empty() {
        let pht = chord_pht(32, 6);
        let out = pht.range_query(0, 10.0, 20.0);
        assert!(out.results.is_empty());
        assert_eq!(out.dest_leaves, 1); // the root leaf overlaps everything
    }

    #[test]
    fn point_query_visits_one_path() {
        let mut pht = chord_pht(64, 7);
        let mut rng = simnet::rng_from_seed(70);
        for h in 0..200u64 {
            pht.insert(rng.gen_range(0.0..=1000.0), h);
        }
        let out = pht.range_query(0, 500.0, 500.0);
        // A point query's descent touches exactly one path below the lcp.
        assert!(out.nodes_visited <= 2 * pht.depth() as usize + 4);
    }
}
