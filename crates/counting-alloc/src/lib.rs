//! A counting wrapper around the system allocator, used by the
//! `bench-alloc` feature of `armada-experiments` to report heap
//! allocations per query in the scaling section of `BENCH_baseline.json`.
//!
//! The counters are process-wide relaxed atomics: cheap enough to leave in
//! the hot path of a benchmark run, and exact when the measured region is
//! single-threaded (the baseline's allocation probe drives queries on one
//! thread for precisely this reason). This crate is the workspace's only
//! `unsafe` surface — the [`GlobalAlloc`] trait requires it — and the
//! wrapper adds no behavior beyond counting: every call forwards to
//! [`System`] untouched, so enabling the feature cannot change any
//! simulated metric.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts calls.
///
/// Install it with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

/// Total heap allocations (alloc + realloc + alloc_zeroed calls) since
/// process start. Monotone; diff two reads to meter a region.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start
/// (requests, not live bytes — frees are not subtracted).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// True when [`CountingAlloc`] is actually installed as the global
/// allocator in this process: a probe allocation must move the counter.
/// Callers use this to emit `null` instead of a misleading zero when the
/// library was built with counting support but the binary never installed
/// the allocator.
pub fn is_installed() -> bool {
    let before = allocation_count();
    // `black_box` keeps the probe observable: Rust allocations are
    // removable, and in release LLVM elides an unobserved Vec entirely —
    // counter side effects included — which would misreport "not
    // installed" forever.
    let probe = std::hint::black_box(vec![0u8; 1]);
    let moved = allocation_count() != before;
    drop(std::hint::black_box(probe));
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary for this crate installs the allocator so the
    // counters are live here even though the workspace default is off.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn counters_move_and_probe_detects_installation() {
        assert!(is_installed());
        let (a0, b0) = (allocation_count(), allocated_bytes());
        let v: Vec<u64> = (0..1000).collect();
        assert_eq!(v.len(), 1000);
        assert!(allocation_count() > a0, "allocation uncounted");
        assert!(allocated_bytes() >= b0 + 8000, "bytes uncounted");
    }
}
