//! Property tests: the FISSIONE cover, storage and routing survive arbitrary
//! churn schedules.

use fissione::{BalanceRule, FissioneConfig, FissioneNet};
use kautz::KautzStr;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Join,
    Leave(usize),
    Crash(usize),
    Publish(u64),
    Stabilize,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Join),
        2 => any::<usize>().prop_map(Op::Leave),
        1 => any::<usize>().prop_map(Op::Crash),
        3 => any::<u64>().prop_map(Op::Publish),
        1 => Just(Op::Stabilize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_arbitrary_churn(
        seed in 0u64..1000,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        let mut net = FissioneNet::build(cfg, 12, &mut rng).unwrap();
        let mut published: u64 = 0;
        let mut lost: u64 = 0;
        for op in ops {
            match op {
                Op::Join => {
                    net.join(&mut rng);
                }
                Op::Leave(raw) => {
                    let peers: Vec<_> = net.live_peers().collect();
                    let victim = peers[raw % peers.len()];
                    match net.leave(victim) {
                        Ok(()) => {}
                        Err(fissione::FissioneError::TooSmall) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("leave: {e}"))),
                    }
                }
                Op::Crash(raw) => {
                    let peers: Vec<_> = net.live_peers().collect();
                    let victim = peers[raw % peers.len()];
                    match net.crash(victim) {
                        Ok(n) => lost += n as u64,
                        Err(fissione::FissioneError::TooSmall) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("crash: {e}"))),
                    }
                }
                Op::Publish(h) => {
                    let obj = KautzStr::random(2, 24, &mut rng);
                    net.publish(obj, h).unwrap();
                    published += 1;
                }
                Op::Stabilize => {
                    net.stabilize();
                }
            }
            let report = net.check_invariants()
                .map_err(|e| TestCaseError::fail(format!("invariants: {e}")))?;
            prop_assert_eq!(report.total_objects as u64 + lost, published);
        }
        // Routing still works after the churn storm.
        for _ in 0..20 {
            let target = KautzStr::random(2, 24, &mut rng);
            let from = net.random_peer(&mut rng);
            let route = net.route(from, &target).unwrap();
            prop_assert_eq!(route.dest(), net.owner_of(&target).unwrap());
        }
    }

    #[test]
    fn lookup_finds_every_published_object(
        seed in 0u64..1000,
        n in 10usize..80,
        objects in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        let mut net = FissioneNet::build(cfg, n, &mut rng).unwrap();
        let mut placed = Vec::new();
        for &h in &objects {
            let obj = KautzStr::random(2, 24, &mut rng);
            net.publish(obj.clone(), h).unwrap();
            placed.push((obj, h));
        }
        // Grow some more, then every object must still be resolvable.
        for _ in 0..10 {
            net.join(&mut rng);
        }
        for (obj, h) in placed {
            let (_owner, handles) = net.lookup(&obj).unwrap();
            prop_assert!(handles.contains(&h));
        }
    }

    #[test]
    fn random_owner_rule_still_satisfies_hard_invariants(
        seed in 0u64..500,
        n in 10usize..150,
    ) {
        let cfg = FissioneConfig {
            object_id_len: 24,
            balance: BalanceRule::RandomOwner,
            ..FissioneConfig::default()
        };
        let mut rng = simnet::rng_from_seed(seed);
        let net = FissioneNet::build(cfg, n, &mut rng).unwrap();
        net.check_invariants()
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}
