//! FISSIONE: a constant-degree DHT on Kautz graphs `K(2,k)` (Li, Lu & Wu,
//! INFOCOM 2005), reproduced as the substrate of the Armada range-query
//! scheme (ICDCS 2006, §3).
//!
//! # Model
//!
//! * **PeerIDs** are variable-length base-2 Kautz strings forming a
//!   *maximal prefix-free cover* of the Kautz namespace: every ObjectID
//!   (length-`k`, default 100) has exactly one peer whose PeerID prefixes it.
//!   Equivalently, live peers are the leaf frontier of a pruned partition
//!   tree [`kautz::partition`].
//! * **Topology**: peer `U = u1…ul` links to every peer whose PeerID is
//!   prefix-compatible with `u2…ul` (the left shift). Under the paper's
//!   *neighborhood invariant* (neighbor depths differ by ≤ 1) this is exactly
//!   the `u2…ul·q1…qm`, `0 ≤ m ≤ 2` rule of §3; our implementation is the
//!   generic closure of that rule, so routing and range queries remain
//!   **correct** even when balance drifts — the invariant is a performance
//!   property, which the test-suite and the `fissione_props` experiment
//!   verify statistically (average degree ≈ 4, diameter < 2·log₂N, average
//!   routing < log₂N).
//! * **Join** ("fission"): route to a random point in the namespace, descend
//!   to a locally minimal-depth peer, and split its leaf; the joiner adopts
//!   one child label. **Leave/crash**: the sibling leaf (or, if the sibling
//!   region is subdivided, a peer freed by merging its deepest sibling-leaf
//!   pair) takes over; [`FissioneNet::stabilize`] repairs neighborhood
//!   violations after churn.
//! * **Routing** (long-path Kautz routing): toward target `T`, a peer `C`
//!   computes the longest suffix of its ID that prefixes `T` and forwards to
//!   the out-neighbor owning `C.id[1..] ++ T[j..]`; every hop makes strict
//!   progress, so delivery takes at most `len(source.id)` hops — under
//!   balance `< 2·log₂N`, average `< log₂N`.
//!
//! # Example
//!
//! ```
//! use fissione::{FissioneConfig, FissioneNet};
//! use kautz::KautzStr;
//!
//! let mut rng = simnet::rng_from_seed(7);
//! let mut net = FissioneNet::build(FissioneConfig::default(), 200, &mut rng)?;
//! assert_eq!(net.len(), 200);
//! net.check_invariants()?;
//!
//! // Exact-match lookup: route from a random peer to an object's owner.
//! let object = KautzStr::random(2, net.config().object_id_len, &mut rng);
//! let from = net.random_peer(&mut rng);
//! let route = net.route(from, &object)?;
//! assert_eq!(route.dest(), net.owner_of(&object)?);
//! assert!((route.hops() as f64) <= 2.0 * (net.len() as f64).log2());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dht_impl;
mod net;
pub mod proto;
mod routing;
mod stats;

pub use net::{FissioneNet, InvariantReport, Peer};
pub use routing::Route;
pub use stats::{DegreeStats, DepthStats, RoutingSample};

use simnet::NodeId;

/// How a joining peer picks the leaf to split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceRule {
    /// Split the owner of a uniformly random namespace point directly
    /// (CAN-style). Simple but lets depth spread grow — kept for the
    /// `ablation_balance` experiment.
    RandomOwner,
    /// From the random owner, hill-descend to a peer whose depth is locally
    /// minimal before splitting (the paper's fission balancing). `max_steps`
    /// bounds the descent.
    LocalMin {
        /// Maximum hill-descent steps before splitting anyway.
        max_steps: usize,
    },
}

impl Default for BalanceRule {
    fn default() -> Self {
        BalanceRule::LocalMin { max_steps: 32 }
    }
}

/// Static configuration of a FISSIONE network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FissioneConfig {
    /// Kautz base `d` (the paper uses 2 throughout).
    pub base: u8,
    /// ObjectID length `k` (the paper uses 100).
    pub object_id_len: usize,
    /// Leaf-split balancing rule for joins.
    pub balance: BalanceRule,
}

impl Default for FissioneConfig {
    fn default() -> Self {
        FissioneConfig { base: 2, object_id_len: 100, balance: BalanceRule::default() }
    }
}

/// Errors returned by FISSIONE operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FissioneError {
    /// The referenced peer does not exist or has left.
    NoSuchPeer {
        /// The offending node id.
        node: NodeId,
    },
    /// The network would drop below its minimum size (the `base+1` root
    /// peers).
    TooSmall,
    /// A routing target was shorter than the deepest PeerID, so ownership
    /// is ambiguous.
    TargetTooShort {
        /// Length of the supplied target.
        target_len: usize,
        /// Maximum live PeerID length.
        max_depth: usize,
    },
    /// An invariant check failed (see [`InvariantReport`]).
    InvariantViolated(InvariantReport),
    /// No live route exists (everything usable is crashed).
    Unroutable,
}

impl std::fmt::Display for FissioneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FissioneError::NoSuchPeer { node } => write!(f, "no live peer with id {node}"),
            FissioneError::TooSmall => {
                write!(f, "network cannot shrink below its root peers")
            }
            FissioneError::TargetTooShort { target_len, max_depth } => write!(
                f,
                "target of length {target_len} shorter than deepest peer id ({max_depth})"
            ),
            FissioneError::InvariantViolated(report) => {
                write!(f, "invariant violated: {report:?}")
            }
            FissioneError::Unroutable => write!(f, "no live route to the target"),
        }
    }
}

impl std::error::Error for FissioneError {}
