//! Long-path Kautz routing on variable-length PeerIDs (§3).
//!
//! Toward a target string `T`, a peer `C` finds the longest suffix `j` of its
//! ID that prefixes `T`, forms the ideal continuation
//! `I = C.id[1..] ++ T[j..]`, and forwards to the out-neighbor owning `I`.
//! Every hop strictly decreases `len(id) − j`, so delivery needs at most
//! `len(source.id)` hops: `< 2·log₂N` worst case, `< log₂N` on average under
//! the neighborhood invariant.

use crate::{FissioneError, FissioneNet};
use kautz::KautzStr;
use simnet::{FaultPlan, NodeId};

/// A completed route through the overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    path: Vec<NodeId>,
}

impl Route {
    /// The traversed peers, source first, owner last.
    pub fn path(&self) -> &[NodeId] {
        &self.path
    }

    /// The source peer.
    pub fn source(&self) -> NodeId {
        self.path[0]
    }

    /// The destination (owning) peer.
    pub fn dest(&self) -> NodeId {
        *self.path.last().expect("route paths are non-empty")
    }

    /// Number of overlay hops (edges traversed).
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

impl FissioneNet {
    /// The next hop from `node` toward `target`, or `None` if `node` already
    /// owns it.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::NoSuchPeer`] for dead nodes and
    /// [`FissioneError::TargetTooShort`] when ownership of the ideal
    /// continuation is unresolvable.
    pub fn next_hop(
        &self,
        node: NodeId,
        target: &KautzStr,
    ) -> Result<Option<NodeId>, FissioneError> {
        let id = self.peer_id(node)?;
        if id.is_prefix_of(target) {
            return Ok(None);
        }
        let j = id.longest_suffix_prefix(target);
        let ideal = id
            .drop_front(1)
            .concat(&target.drop_front(j))
            .expect("suffix match makes the junction legal");
        let next = self.owner_of(&ideal)?;
        debug_assert_ne!(next, node, "Kautz shift cannot map a peer to itself");
        Ok(Some(next))
    }

    /// Routes from `from` to the owner of `target` (an ObjectID-length Kautz
    /// string), returning the full path.
    ///
    /// # Errors
    ///
    /// Propagates [`FissioneNet::next_hop`] errors.
    pub fn route(&self, from: NodeId, target: &KautzStr) -> Result<Route, FissioneError> {
        let mut path = vec![from];
        let mut cur = from;
        // `len(id) − j` strictly decreases each hop; the initial ID length
        // bounds the loop. Guard with a generous cap for defence in depth.
        let cap = self.max_depth() + 2;
        for _ in 0..=cap {
            match self.next_hop(cur, target)? {
                None => return Ok(Route { path }),
                Some(next) => {
                    path.push(next);
                    cur = next;
                }
            }
        }
        unreachable!("routing exceeded its progress bound");
    }

    /// Fault-tolerant routing: greedy Kautz routing with depth-first
    /// backtracking around crashed peers. The message is modelled as
    /// carrying its walk and visited set, which a real implementation can do
    /// (the walk is `O(log N)` in the common case); Kautz graphs are
    /// `d`-connected (§3), so any crash set smaller than `d` leaves the
    /// owner reachable and this search finds it.
    ///
    /// The returned [`Route`] is the full walk *including backtrack steps*,
    /// so `hops()` honestly counts every traversed edge.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::Unroutable`] when the source is crashed or
    /// the owner is unreachable in the residual overlay.
    pub fn route_avoiding(
        &self,
        from: NodeId,
        target: &KautzStr,
        faults: &FaultPlan,
    ) -> Result<Route, FissioneError> {
        if faults.is_crashed(from) {
            return Err(FissioneError::Unroutable);
        }
        let mut visited = std::collections::BTreeSet::new();
        visited.insert(from);
        let mut stack = vec![from];
        let mut walk = vec![from];
        while let Some(&cur) = stack.last() {
            if self.peer_id(cur)?.is_prefix_of(target) {
                return Ok(Route { path: walk });
            }
            // Candidate order: the ideal greedy hop first, then the other
            // out-neighbors, then in-neighbors (overlay links are
            // bidirectional connections, so a detour may traverse one
            // backwards — the approximate topology has out-degree-1 peers
            // that would otherwise be stranded by a single crash).
            let ideal = self.next_hop(cur, target)?;
            let mut cands = self.out_neighbors(cur);
            cands.extend(self.in_neighbors(cur));
            cands.dedup();
            if let Some(i) = ideal {
                cands.sort_by_key(|&n| n != i);
            }
            let next = cands.into_iter().find(|&n| !faults.is_crashed(n) && !visited.contains(&n));
            match next {
                Some(n) => {
                    visited.insert(n);
                    stack.push(n);
                    walk.push(n);
                }
                None => {
                    stack.pop();
                    if let Some(&back) = stack.last() {
                        walk.push(back);
                    }
                }
            }
        }
        Err(FissioneError::Unroutable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FissioneConfig;
    use kautz::KautzStr;

    fn build(n: usize, seed: u64) -> FissioneNet {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        FissioneNet::build(cfg, n, &mut rng).unwrap()
    }

    #[test]
    fn route_reaches_owner_from_everywhere() {
        let net = build(200, 21);
        let mut rng = simnet::rng_from_seed(210);
        for _ in 0..100 {
            let target = KautzStr::random(2, 24, &mut rng);
            let owner = net.owner_of(&target).unwrap();
            let from = net.random_peer(&mut rng);
            let route = net.route(from, &target).unwrap();
            assert_eq!(route.dest(), owner);
            assert_eq!(route.source(), from);
        }
    }

    #[test]
    fn hops_are_bounded_by_source_depth() {
        let net = build(500, 22);
        let mut rng = simnet::rng_from_seed(220);
        for _ in 0..200 {
            let target = KautzStr::random(2, 24, &mut rng);
            let from = net.random_peer(&mut rng);
            let route = net.route(from, &target).unwrap();
            let depth = net.peer(from).unwrap().depth();
            assert!(route.hops() <= depth, "{} hops from depth-{} peer", route.hops(), depth);
        }
    }

    #[test]
    fn average_hops_below_log_n() {
        let net = build(1000, 23);
        let mut rng = simnet::rng_from_seed(230);
        let mut total = 0usize;
        let queries = 500;
        for _ in 0..queries {
            let target = KautzStr::random(2, 24, &mut rng);
            let from = net.random_peer(&mut rng);
            total += net.route(from, &target).unwrap().hops();
        }
        let avg = total as f64 / queries as f64;
        assert!(avg < (1000f64).log2(), "avg hops {avg}");
    }

    #[test]
    fn each_hop_is_an_out_neighbor_edge() {
        let net = build(150, 24);
        let mut rng = simnet::rng_from_seed(240);
        for _ in 0..50 {
            let target = KautzStr::random(2, 24, &mut rng);
            let from = net.random_peer(&mut rng);
            let route = net.route(from, &target).unwrap();
            for w in route.path().windows(2) {
                assert!(
                    net.out_neighbors(w[0]).contains(&w[1]),
                    "hop {} -> {} is not an edge",
                    net.peer_id(w[0]).unwrap(),
                    net.peer_id(w[1]).unwrap()
                );
            }
        }
    }

    #[test]
    fn self_route_when_source_owns_target() {
        let net = build(100, 25);
        let mut rng = simnet::rng_from_seed(250);
        let target = KautzStr::random(2, 24, &mut rng);
        let owner = net.owner_of(&target).unwrap();
        let route = net.route(owner, &target).unwrap();
        assert_eq!(route.hops(), 0);
        assert_eq!(route.path(), &[owner]);
    }

    #[test]
    fn route_avoiding_detours_around_crashes() {
        let net = build(300, 26);
        let mut rng = simnet::rng_from_seed(260);
        let mut successes = 0;
        let mut attempts = 0;
        for _ in 0..100 {
            let target = KautzStr::random(2, 24, &mut rng);
            let owner = net.owner_of(&target).unwrap();
            let from = net.random_peer(&mut rng);
            if from == owner {
                continue;
            }
            // Crash the ideal first hop.
            let Ok(Some(first)) = net.next_hop(from, &target) else { continue };
            if first == owner {
                continue; // crashing the owner makes the target unreachable
            }
            let mut faults = FaultPlan::new();
            faults.crash(first);
            attempts += 1;
            if let Ok(route) = net.route_avoiding(from, &target, &faults) {
                assert_eq!(route.dest(), owner);
                assert!(route.path().iter().all(|&n| n != first));
                successes += 1;
            }
        }
        assert!(attempts > 20, "test must exercise detours");
        let rate = successes as f64 / attempts as f64;
        assert!(rate > 0.9, "detour success rate {rate}");
    }
}
