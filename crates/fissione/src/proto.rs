//! Message-level lookup protocol: exact-match lookups executed through the
//! discrete-event simulator rather than the analytic graph walk.
//!
//! [`FissioneNet::route`] computes the hop count of a lookup directly on the
//! topology. This module runs the same greedy protocol as actual messages
//! through [`simnet::Sim`] — requests forwarded hop by hop, the owner
//! replying with a direct response — which (a) demonstrates the protocol is
//! implementable with purely local per-peer decisions, (b) lets fault plans
//! act on individual messages, and (c) pins the simulator and the analytic
//! walk to identical hop counts (tested below).

use crate::{FissioneError, FissioneNet};
use kautz::KautzStr;
use simnet::{Envelope, FaultPlan, NodeId, Sim};

/// Messages of the simulated lookup protocol.
#[derive(Debug, Clone)]
enum LookupMsg {
    /// A lookup request traveling toward the owner.
    Request { target: KautzStr, client: NodeId },
    /// The owner's reply, carrying the handles stored under the target.
    Response { handles: Vec<u64> },
}

/// Result of a simulated lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimLookup {
    /// The owning peer, if the request arrived.
    pub owner: Option<NodeId>,
    /// Handles stored under the target at the owner (empty if lost).
    pub handles: Vec<u64>,
    /// Hops the request traveled (delivery depth at the owner).
    pub request_hops: u32,
    /// Total messages (request forwards + the response).
    pub messages: u64,
    /// Whether the response made it back to the client.
    pub completed: bool,
}

impl FissioneNet {
    /// Runs an exact-match lookup as a message protocol under `faults`.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::NoSuchPeer`] if `from` is dead.
    pub fn lookup_via_sim(
        &self,
        from: NodeId,
        target: &KautzStr,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<SimLookup, FissioneError> {
        self.peer(from)?;
        let mut sim: Sim<LookupMsg> = Sim::new(seed).with_faults_ref(faults);
        sim.send(from, from, 0, LookupMsg::Request { target: target.clone(), client: from });

        let mut result = SimLookup {
            owner: None,
            handles: Vec::new(),
            request_hops: 0,
            messages: 0,
            completed: false,
        };
        sim.run(|sim, env: Envelope<LookupMsg>| match &env.payload {
            LookupMsg::Request { target, client } => {
                let node = env.to;
                match self.next_hop(node, target) {
                    Ok(None) => {
                        // This peer owns the target: answer directly.
                        result.owner = Some(node);
                        result.request_hops = env.hop;
                        let handles = self.peer(node).expect("live").handles_for(target).to_vec();
                        result.handles = handles.clone();
                        sim.forward(&env, *client, LookupMsg::Response { handles });
                    }
                    Ok(Some(next)) => {
                        sim.forward(
                            &env,
                            next,
                            LookupMsg::Request { target: target.clone(), client: *client },
                        );
                    }
                    Err(_) => { /* drop: unroutable under this fault plan */ }
                }
            }
            LookupMsg::Response { handles } => {
                // The client-side view of the answer; it must match what the
                // owner recorded when it replied.
                debug_assert_eq!(handles, &result.handles);
                result.completed = true;
            }
        });
        result.messages = sim.stats().messages_sent;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FissioneConfig;

    fn build(n: usize, seed: u64) -> FissioneNet {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        FissioneNet::build(cfg, n, &mut rng).unwrap()
    }

    #[test]
    fn sim_lookup_agrees_with_analytic_walk() {
        let net = build(300, 51);
        let mut rng = simnet::rng_from_seed(510);
        for q in 0..100u64 {
            let target = KautzStr::random(2, 24, &mut rng);
            let from = net.random_peer(&mut rng);
            let walk = net.route(from, &target).unwrap();
            let sim = net.lookup_via_sim(from, &target, q, &FaultPlan::new()).unwrap();
            assert_eq!(sim.owner, Some(walk.dest()));
            assert_eq!(sim.request_hops as usize, walk.hops());
            // Request forwards + one response hop (the self-owned case is
            // free: both legs are local deliveries).
            let expected = if walk.hops() == 0 { 0 } else { walk.hops() as u64 + 1 };
            assert_eq!(sim.messages, expected);
            assert!(sim.completed);
        }
    }

    #[test]
    fn sim_lookup_returns_stored_handles() {
        let mut net = build(100, 52);
        let mut rng = simnet::rng_from_seed(520);
        let obj = KautzStr::random(2, 24, &mut rng);
        net.publish(obj.clone(), 77).unwrap();
        net.publish(obj.clone(), 78).unwrap();
        let from = net.random_peer(&mut rng);
        let out = net.lookup_via_sim(from, &obj, 1, &FaultPlan::new()).unwrap();
        assert_eq!(out.handles, vec![77, 78]);
        assert!(out.completed);
    }

    #[test]
    fn sim_lookup_loses_messages_under_faults() {
        let net = build(200, 53);
        let mut rng = simnet::rng_from_seed(530);
        let faults = FaultPlan::with_drop_prob(0.3);
        let mut completed = 0;
        let trials = 100;
        for q in 0..trials {
            let target = KautzStr::random(2, 24, &mut rng);
            let from = net.random_peer(&mut rng);
            let out = net.lookup_via_sim(from, &target, q, &faults).unwrap();
            if out.completed {
                completed += 1;
            }
        }
        assert!(completed < trials, "30% loss must break some lookups");
        assert!(completed > 0, "but not all of them");
    }

    #[test]
    fn sim_lookup_to_crashed_owner_never_completes() {
        let net = build(150, 54);
        let mut rng = simnet::rng_from_seed(540);
        let target = KautzStr::random(2, 24, &mut rng);
        let owner = net.owner_of(&target).unwrap();
        let from = net.live_peers().find(|&n| n != owner).expect("another peer exists");
        let mut faults = FaultPlan::new();
        faults.crash(owner);
        let out = net.lookup_via_sim(from, &target, 1, &faults).unwrap();
        assert!(!out.completed);
        assert_eq!(out.owner, None);
    }
}
