//! FISSIONE as a generic [`dht_api::Dht`]: the exact-match interface layered
//! schemes (PHT) consume — plus its [`DynamicDht`] churn capability.

use crate::{FissioneError, FissioneNet};
use dht_api::{Dht, DynamicDht, Lookup, SchemeError};
use kautz::KautzStr;
use rand::rngs::SmallRng;
use simnet::NodeId;

impl From<FissioneError> for SchemeError {
    fn from(e: FissioneError) -> Self {
        match e {
            FissioneError::NoSuchPeer { node } => SchemeError::BadOrigin { origin: node },
            other => SchemeError::Query(other.to_string()),
        }
    }
}

impl FissioneNet {
    /// Maps an opaque 64-bit key deterministically onto an ObjectID-length
    /// Kautz string (uniform over the namespace).
    pub fn key_to_kautz(&self, key: u64) -> KautzStr {
        let k = self.config().object_id_len;
        let count = KautzStr::count(self.config().base, k);
        // Spread the 64-bit key over the (much larger) u128 rank space by
        // Fibonacci-hash style mixing, then reduce.
        let spread = (key as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
        KautzStr::unrank(self.config().base, k, spread % count).expect("rank reduced into range")
    }
}

impl Dht for FissioneNet {
    fn route_key(&self, from: NodeId, key: u64) -> Lookup {
        let target = self.key_to_kautz(key);
        let route = self.route(from, &target).expect("routing on a complete cover succeeds");
        Lookup { owner: route.dest(), hops: route.hops() }
    }

    fn route_key_latency(&self, from: NodeId, key: u64, net: &simnet::NetModel) -> (Lookup, u64) {
        // The real Kautz long path, priced edge by edge.
        let target = self.key_to_kautz(key);
        let route = self.route(from, &target).expect("routing on a complete cover succeeds");
        (Lookup { owner: route.dest(), hops: route.hops() }, net.path_cost(route.path()))
    }

    fn owner_of_key(&self, key: u64) -> NodeId {
        self.owner_of(&self.key_to_kautz(key)).expect("cover is complete")
    }

    fn replica_owners(&self, key: u64, r: usize) -> Vec<NodeId> {
        // The Kautz close group: the owner plus its nearest overlay
        // neighbors, breadth-first — all local table reads, no routing
        // (the maidsafe close-group discipline on a constant-degree graph).
        let want = r.max(1).min(self.len());
        let primary = Dht::owner_of_key(self, key);
        let mut owners = vec![primary];
        let mut frontier = vec![primary];
        while owners.len() < want && !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                for neighbor in self.neighbors(node) {
                    if owners.len() >= want {
                        break;
                    }
                    if !owners.contains(&neighbor) {
                        owners.push(neighbor);
                        next.push(neighbor);
                    }
                }
            }
            frontier = next;
        }
        owners
    }

    fn any_node(&self) -> NodeId {
        self.live_peers().next().expect("network is never empty")
    }

    fn random_node(&self, rng: &mut SmallRng) -> NodeId {
        self.random_peer(rng)
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn name(&self) -> &'static str {
        "fissione"
    }
}

impl DynamicDht for FissioneNet {
    fn join(&mut self, rng: &mut SmallRng) -> NodeId {
        FissioneNet::join(self, rng)
    }

    fn leave(&mut self, node: NodeId) -> Result<(), SchemeError> {
        FissioneNet::leave(self, node).map_err(SchemeError::from)
    }

    fn crash(&mut self, node: NodeId) -> Result<(), SchemeError> {
        FissioneNet::crash(self, node).map(|_lost| ()).map_err(SchemeError::from)
    }

    fn stabilize(&mut self) -> usize {
        FissioneNet::stabilize(self)
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.live_peers().collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{FissioneConfig, FissioneNet};
    use dht_api::Dht;

    #[test]
    fn dht_interface_routes_to_owner() {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(41);
        let net = FissioneNet::build(cfg, 150, &mut rng).unwrap();
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            let from = net.random_node(&mut rng);
            let lookup = net.route_key(from, key);
            assert_eq!(lookup.owner, net.owner_of_key(key));
            assert!(lookup.hops as f64 <= 2.0 * (150f64).log2());
        }
    }

    #[test]
    fn dynamic_dht_churns_with_invariants_intact() {
        use dht_api::DynamicDht;
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(43);
        let mut net = FissioneNet::build(cfg, 60, &mut rng).unwrap();
        for _ in 0..20 {
            DynamicDht::join(&mut net, &mut rng);
        }
        for _ in 0..15 {
            let live = net.live_nodes();
            DynamicDht::leave(&mut net, live[7]).unwrap();
        }
        for _ in 0..5 {
            let live = net.live_nodes();
            DynamicDht::crash(&mut net, live[3]).unwrap();
        }
        DynamicDht::stabilize(&mut net);
        net.check_invariants().unwrap();
        assert_eq!(net.live_nodes().len(), 60);
        // Dead ids map to the unified error vocabulary.
        let dead = usize::MAX;
        assert!(matches!(
            DynamicDht::leave(&mut net, dead),
            Err(dht_api::SchemeError::BadOrigin { .. })
        ));
    }

    #[test]
    fn replica_owners_form_the_kautz_close_group() {
        use dht_api::Dht;
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(44);
        let net = FissioneNet::build(cfg, 80, &mut rng).unwrap();
        for key in [0u64, 9, 0xfeed, u64::MAX] {
            let owners = net.replica_owners(key, 4);
            assert_eq!(owners.len(), 4);
            assert_eq!(owners[0], net.owner_of_key(key), "primary is the key's owner");
            let distinct: std::collections::BTreeSet<_> = owners.iter().collect();
            assert_eq!(distinct.len(), 4);
            assert!(owners.iter().all(|&o| net.is_live(o)));
            // The first replica is an overlay neighbor of the primary —
            // the close-group property.
            assert!(net.neighbors(owners[0]).contains(&owners[1]));
            // Deterministic.
            assert_eq!(owners, net.replica_owners(key, 4));
        }
    }

    #[test]
    fn key_mapping_is_deterministic_and_spread() {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(42);
        let net = FissioneNet::build(cfg, 50, &mut rng).unwrap();
        assert_eq!(net.key_to_kautz(7), net.key_to_kautz(7));
        // Sequential keys spread across distinct owners reasonably often.
        let owners: std::collections::BTreeSet<_> =
            (0..100u64).map(|k| net.owner_of_key(k)).collect();
        assert!(owners.len() > 25, "only {} distinct owners", owners.len());
    }
}
