//! The FISSIONE peer table: prefix-free cover, churn, neighbors, storage.

use crate::{BalanceRule, FissioneConfig, FissioneError};
use kautz::KautzStr;
use rand::rngs::SmallRng;
use rand::Rng;
use simnet::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::ops::Bound;

/// A live FISSIONE peer: its PeerID and the objects it stores.
#[derive(Debug, Clone)]
pub struct Peer {
    id: KautzStr,
    objects: BTreeMap<KautzStr, Vec<u64>>,
}

impl Peer {
    /// The peer's Kautz-string identifier (its depth is `id().len()`).
    pub fn id(&self) -> &KautzStr {
        &self.id
    }

    /// The peer's depth in the partition tree.
    pub fn depth(&self) -> usize {
        self.id.len()
    }

    /// Objects stored at this peer: `(ObjectID, handles)` in ObjectID order.
    pub fn objects(&self) -> impl Iterator<Item = (&KautzStr, &[u64])> {
        self.objects.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Handles published under one exact ObjectID.
    pub fn handles_for(&self, object: &KautzStr) -> &[u64] {
        self.objects.get(object).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Stored objects whose ObjectIDs fall in the closed lexicographic range
    /// `[low, high]` — the local scan a destination peer performs to answer
    /// a range query.
    pub fn objects_in_range<'a>(
        &'a self,
        low: &KautzStr,
        high: &KautzStr,
    ) -> impl Iterator<Item = (&'a KautzStr, &'a [u64])> {
        self.objects
            .range::<KautzStr, _>((Bound::Included(low), Bound::Included(high)))
            .map(|(k, v)| (k, v.as_slice()))
    }

    /// Number of stored handles.
    pub fn object_count(&self) -> usize {
        self.objects.values().map(Vec::len).sum()
    }
}

/// Soft-property report produced by [`FissioneNet::check_invariants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// Live peer count.
    pub peers: usize,
    /// Maximum PeerID length.
    pub max_depth: usize,
    /// Minimum PeerID length.
    pub min_depth: usize,
    /// Directed neighbor pairs whose depths differ by more than one (the
    /// paper's neighborhood invariant counts these as violations).
    pub neighborhood_violations: usize,
    /// Total stored object handles.
    pub total_objects: usize,
}

/// Symbol capacity of an encoded PeerID key (2 bits per symbol in a
/// `u128`). Live depths stay far below this: a depth-64 cover would need
/// on the order of 2⁶³ peers.
const ENC_SYMS: usize = 64;

/// Order-preserving fixed-width key for a PeerID: symbol `s` becomes the
/// 2-bit group `s + 1`, packed MSB-first and zero-padded. Integer order on
/// keys coincides with lexicographic order on ids (a proper prefix sorts
/// before its extensions because its padding groups are zero), and the
/// subtree below a prefix is the contiguous key interval
/// `[enc_id(p), enc_subtree_end(enc_id(p)))` — so every ordered-map probe
/// on the cover is a `u128` comparison instead of a heap-indirected
/// symbol-by-symbol compare. This is what keeps `build` and routing fast
/// at N = 10⁶.
///
/// # Panics
///
/// Panics if `id` is deeper than [`ENC_SYMS`].
fn enc_id(id: &KautzStr) -> u128 {
    assert!(id.len() <= ENC_SYMS, "PeerID depth {} exceeds key capacity", id.len());
    let mut k = 0u128;
    for (i, &s) in id.symbols().iter().enumerate() {
        k |= (u128::from(s) + 1) << (126 - 2 * i);
    }
    k
}

/// Key of the first [`ENC_SYMS`] symbols of an arbitrary-length string.
/// Probes (ObjectIDs, typically length ~100) compare against peer keys
/// exactly within that window, and live peer depths never approach it, so
/// every order/prefix relation between a peer id and a probe is decided
/// inside the window.
fn enc_probe(s: &KautzStr) -> u128 {
    let mut k = 0u128;
    for (i, &sym) in s.symbols().iter().take(ENC_SYMS).enumerate() {
        k |= (u128::from(sym) + 1) << (126 - 2 * i);
    }
    k
}

/// Symbol count encoded in a nonzero key (the position of its lowest
/// nonzero 2-bit group).
fn enc_len(k: u128) -> usize {
    debug_assert_ne!(k, 0, "the empty string is never a PeerID");
    (129 - k.trailing_zeros() as usize) / 2
}

/// Exclusive upper key of the subtree below nonzero key `k`; `None` means
/// the subtree extends to the end of the keyspace.
fn enc_subtree_end(k: u128) -> Option<u128> {
    k.checked_add(1u128 << (128 - 2 * enc_len(k)))
}

/// Whether the id encoded by nonzero `k` is a (non-strict) prefix of the
/// string encoded by `probe`.
fn enc_is_prefix(k: u128, probe: u128) -> bool {
    k <= probe && enc_subtree_end(k).is_none_or(|end| probe < end)
}

/// The FISSIONE network: a prefix-free cover of the Kautz namespace under
/// churn, with object storage and neighbor computation.
///
/// `NodeId`s are stable: a peer keeps its id for its lifetime, and slots of
/// departed peers are reused only by [`FissioneNet::stabilize`]'s internal
/// migrations or new joins.
#[derive(Debug, Clone)]
pub struct FissioneNet {
    cfg: FissioneConfig,
    slots: Vec<Option<Peer>>,
    /// Live peers by [`enc_id`] key — iteration order is PeerID order.
    by_id: BTreeMap<u128, NodeId>,
    live: usize,
    /// `depth_hist[d]` = number of live peers with depth `d`.
    depth_hist: Vec<usize>,
    /// Free slots as a min-heap: allocation recycles the lowest free index,
    /// matching the old slot scan without its O(N) cost.
    free_slots: BinaryHeap<Reverse<usize>>,
}

impl FissioneNet {
    /// Creates the minimal network: the `base + 1` root peers `0, 1, …, d`.
    pub fn new(cfg: FissioneConfig) -> Self {
        let mut net = FissioneNet {
            cfg,
            slots: Vec::new(),
            by_id: BTreeMap::new(),
            live: 0,
            depth_hist: Vec::new(),
            free_slots: BinaryHeap::new(),
        };
        for sym in 0..=cfg.base {
            let id = KautzStr::new(cfg.base, vec![sym]).expect("single symbol is valid");
            net.insert_peer(id);
        }
        net
    }

    /// Builds a network of `n ≥ base + 1` peers by repeated joins.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::TooSmall`] if `n` is below the root count.
    pub fn build(cfg: FissioneConfig, n: usize, rng: &mut SmallRng) -> Result<Self, FissioneError> {
        if n < cfg.base as usize + 1 {
            return Err(FissioneError::TooSmall);
        }
        let mut net = FissioneNet::new(cfg);
        while net.len() < n {
            net.join(rng);
        }
        Ok(net)
    }

    /// The static configuration.
    pub fn config(&self) -> &FissioneConfig {
        &self.cfg
    }

    /// Number of live peers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Always `false`: the root peers cannot leave.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `node` refers to a live peer.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.slots.get(node).is_some_and(Option::is_some)
    }

    /// The peer behind a node id.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::NoSuchPeer`] for dead or unknown ids.
    pub fn peer(&self, node: NodeId) -> Result<&Peer, FissioneError> {
        self.slots.get(node).and_then(Option::as_ref).ok_or(FissioneError::NoSuchPeer { node })
    }

    /// The PeerID behind a node id.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::NoSuchPeer`] for dead or unknown ids.
    pub fn peer_id(&self, node: NodeId) -> Result<&KautzStr, FissioneError> {
        self.peer(node).map(Peer::id)
    }

    /// Iterates over live peers in PeerID order.
    pub fn live_peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_id.values().copied()
    }

    /// A uniformly random live peer.
    ///
    /// # Panics
    ///
    /// Panics if the slot table is empty (cannot happen: roots are
    /// permanent).
    pub fn random_peer(&self, rng: &mut SmallRng) -> NodeId {
        loop {
            let i = rng.gen_range(0..self.slots.len());
            if self.slots[i].is_some() {
                return i;
            }
        }
    }

    /// Deepest live PeerID length.
    pub fn max_depth(&self) -> usize {
        self.depth_hist.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Shallowest live PeerID length.
    pub fn min_depth(&self) -> usize {
        self.depth_hist.iter().position(|&c| c > 0).unwrap_or(0)
    }

    /// The unique live peer whose PeerID is a prefix of `s`.
    ///
    /// Because live PeerIDs form a prefix-free cover, this is the peer with
    /// the greatest PeerID `≤ s` — a single ordered-map probe.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::TargetTooShort`] if `s` is shorter than the
    /// owning region's depth (no PeerID prefixes it).
    pub fn owner_of(&self, s: &KautzStr) -> Result<NodeId, FissioneError> {
        let key = enc_probe(s);
        let candidate = self.by_id.range((Bound::Unbounded, Bound::Included(key))).next_back();
        match candidate {
            Some((&k, &node)) if enc_is_prefix(k, key) => Ok(node),
            _ => Err(FissioneError::TargetTooShort {
                target_len: s.len(),
                max_depth: self.max_depth(),
            }),
        }
    }

    /// Live peers whose PeerIDs start with `prefix` (PeerID order).
    pub fn peers_with_prefix<'a>(
        &'a self,
        prefix: &'a KautzStr,
    ) -> impl Iterator<Item = NodeId> + 'a {
        // The whole subtree is one key interval — the empty prefix (len 0
        // encodes to key 0) covers everything.
        let lo = enc_probe(prefix);
        let hi = if lo == 0 { None } else { enc_subtree_end(lo) };
        let bounds = (Bound::Included(lo), hi.map_or(Bound::Unbounded, Bound::Excluded));
        self.by_id.range(bounds).map(|(_, &n)| n)
    }

    /// Live peers whose regions intersect the lexicographic ObjectID range
    /// `[low, high]` (the query's "destination peers"), in PeerID order.
    ///
    /// Because live PeerIDs partition the namespace in leaf order, the
    /// intersecting peers form a contiguous run starting at `low`'s owner —
    /// `O(log N + answer)` instead of scanning every peer.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::TargetTooShort`] if `low` is shorter than
    /// its owning region's depth.
    pub fn peers_intersecting_range(
        &self,
        low: &KautzStr,
        high: &KautzStr,
    ) -> Result<Vec<NodeId>, FissioneError> {
        let first = self.owner_of(low)?;
        let first_key = enc_id(&self.slots[first].as_ref().expect("live").id);
        let high_key = enc_probe(high);
        let mut out = Vec::new();
        for (&k, &node) in self.by_id.range((Bound::Included(first_key), Bound::Unbounded)) {
            // A peer's region starts above `high` once its minimal
            // extension exceeds it; on encoded keys that is exactly
            // `k > high_key` (a min-extension symbol never exceeds the
            // corresponding symbol of `high` while the two agree, so
            // `Greater` can only come from a real symbol mismatch — which
            // integer order sees identically).
            if k > high_key {
                break;
            }
            out.push(node);
        }
        Ok(out)
    }

    /// Out-neighbors of `node`: every live peer prefix-compatible with the
    /// left shift `u2…ul` of the node's PeerID (§3's `u2…ul·q1…qm` rule,
    /// generalised to arbitrary depth differences).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not live.
    pub fn out_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut shift = KautzStr::empty(self.cfg.base);
        let mut out = Vec::new();
        self.out_neighbors_into(node, &mut shift, &mut out);
        out
    }

    /// Buffer-reusing core of [`out_neighbors`](Self::out_neighbors):
    /// overwrites `shift` (working storage) and `out` (the result, in the
    /// same order `out_neighbors` produces). Query descent calls this once
    /// per delivery, so steady-state routing allocates nothing here.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not live.
    pub fn out_neighbors_into(&self, node: NodeId, shift: &mut KautzStr, out: &mut Vec<NodeId>) {
        let id = self.peer(node).expect("live node").id();
        shift.assign_drop_front(id, 1);
        out.clear();
        // The unique peer owning a *proper* prefix of the shift, if any. By
        // prefix-freeness nothing live sits between such an ancestor and
        // the shift, so it is the greatest PeerID strictly below the shift
        // — one ordered-map probe instead of one per prefix length.
        let shift_key = enc_probe(shift);
        if let Some((&k, &n)) =
            self.by_id.range((Bound::Unbounded, Bound::Excluded(shift_key))).next_back()
        {
            if enc_is_prefix(k, shift_key) {
                out.push(n);
            }
        }
        // Peers extending (or equal to) the shift.
        out.extend(self.peers_with_prefix(shift));
    }

    /// In-neighbors of `node`: every live peer `W` with `node ∈ out(W)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not live.
    pub fn in_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut stem = KautzStr::empty(self.cfg.base);
        let mut out = Vec::new();
        self.in_neighbors_into(node, &mut stem, &mut out);
        out
    }

    /// Buffer-reusing core of [`in_neighbors`](Self::in_neighbors):
    /// overwrites `stem` (working storage) and `out` (the result, in the
    /// same order `in_neighbors` produces).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not live.
    pub fn in_neighbors_into(&self, node: NodeId, stem: &mut KautzStr, out: &mut Vec<NodeId>) {
        let id = self.peer(node).expect("live node").id();
        let first = id.first().expect("peer ids are non-empty");
        out.clear();
        for a in 0..=self.cfg.base {
            if a == first {
                continue;
            }
            stem.assign_prepend(a, id);
            // W = a ++ (proper prefix of id): a proper prefix of the stem
            // longer than zero — the same single-probe ancestor search as
            // `out_neighbors_into` (the empty string is never a PeerID).
            let stem_key = enc_probe(stem);
            if let Some((&k, &n)) =
                self.by_id.range((Bound::Unbounded, Bound::Excluded(stem_key))).next_back()
            {
                if enc_is_prefix(k, stem_key) {
                    out.push(n);
                }
            }
            // W = a ++ id ++ tail (includes a ++ id itself).
            out.extend(self.peers_with_prefix(stem));
        }
    }

    /// Both neighbor sets, deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not live.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut v = self.out_neighbors(node);
        v.extend(self.in_neighbors(node));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A new peer joins: routes to a random namespace point, descends to a
    /// locally minimal-depth leaf per the configured [`BalanceRule`], and
    /// splits it. Returns the newcomer's node id.
    pub fn join(&mut self, rng: &mut SmallRng) -> NodeId {
        let probe = KautzStr::random(self.cfg.base, self.cfg.object_id_len, rng);
        let owner = self.owner_of(&probe).expect("cover is complete");
        let victim = match self.cfg.balance {
            BalanceRule::RandomOwner => owner,
            BalanceRule::LocalMin { max_steps } => self.descend_to_local_min(owner, max_steps),
        };
        let (_kept, newcomer) = self.split_leaf(victim);
        newcomer
    }

    /// Hill-descends from `start` towards a peer whose depth is minimal
    /// among its neighbors.
    ///
    /// Consumes no RNG and picks `min (depth, node)` over the neighbor
    /// multiset — identical victim selection to sorting and deduplicating
    /// first, since `min` over a multiset equals `min` over its set. The
    /// buffer-reusing neighbor walks make this loop allocation-free after
    /// the first step, which is what keeps `build` off the allocator at
    /// N = 10⁵–10⁶ (joins spend their time here).
    fn descend_to_local_min(&self, start: NodeId, max_steps: usize) -> NodeId {
        let mut cur = start;
        let mut buf = KautzStr::empty(self.cfg.base);
        let (mut outs, mut ins) = (Vec::new(), Vec::new());
        // No live peer is shallower than the histogram's global minimum, so
        // a peer already there is a local minimum by definition — skip the
        // neighbor walks entirely. This prunes the *last* iteration of every
        // descent (and whole descents that start at the global minimum),
        // which is where large builds spend most of their join time.
        let global_min = self.min_depth();
        for _ in 0..max_steps {
            let d = self.peer(cur).expect("live").depth();
            if d == global_min {
                break;
            }
            self.out_neighbors_into(cur, &mut buf, &mut outs);
            self.in_neighbors_into(cur, &mut buf, &mut ins);
            let best = outs
                .iter()
                .chain(ins.iter())
                .map(|&n| (self.peer(n).expect("live").depth(), n))
                .min();
            match best {
                Some((bd, bn)) if bd < d => cur = bn,
                _ => break,
            }
        }
        cur
    }

    /// Splits the leaf of `node` into its two children; `node` keeps the
    /// lexicographically first child, a fresh peer takes the second.
    /// Stored objects are repartitioned by prefix.
    ///
    /// Returns `(node, newcomer)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not live or sits at the ObjectID depth limit.
    pub fn split_leaf(&mut self, node: NodeId) -> (NodeId, NodeId) {
        let peer = self.slots[node].as_mut().expect("live node");
        let old_id = peer.id.clone();
        assert!(
            old_id.len() < self.cfg.object_id_len,
            "peer regions cannot outgrow ObjectID resolution"
        );
        let mut kids = old_id.child_symbols();
        let a = kids.next().expect("base ≥ 1 gives two children");
        let b = kids.next().expect("base ≥ 2 gives two children");
        let left = old_id.child(a).expect("legal child");
        let right = old_id.child(b).expect("legal child");

        // Partition stored objects by the symbol at the split depth.
        let split_pos = old_id.len();
        let mut right_objects = BTreeMap::new();
        let keys: Vec<KautzStr> = peer.objects.keys().cloned().collect();
        for key in keys {
            if key.symbols()[split_pos] == b {
                let v = peer.objects.remove(&key).expect("key just listed");
                right_objects.insert(key, v);
            }
        }
        peer.id = left.clone();

        self.by_id.remove(&enc_id(&old_id));
        self.by_id.insert(enc_id(&left), node);
        self.bump_depth(old_id.len(), -1);
        self.bump_depth(old_id.len() + 1, 1);

        let newcomer = self.alloc_slot(Peer { id: right.clone(), objects: right_objects });
        self.by_id.insert(enc_id(&right), newcomer);
        self.bump_depth(old_id.len() + 1, 1);
        self.live += 1;
        (node, newcomer)
    }

    /// Graceful departure: the peer's region and objects are taken over as
    /// described in the crate docs.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::NoSuchPeer`] for dead ids and
    /// [`FissioneError::TooSmall`] when only the root peers remain.
    pub fn leave(&mut self, node: NodeId) -> Result<(), FissioneError> {
        self.remove_peer(node, true)
    }

    /// Abrupt failure: like [`FissioneNet::leave`] but the peer's stored
    /// objects are lost (self-stabilisation reclaims only the region).
    /// Returns the number of handles lost.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FissioneNet::leave`].
    pub fn crash(&mut self, node: NodeId) -> Result<usize, FissioneError> {
        let lost = self.peer(node)?.object_count();
        self.remove_peer(node, false)?;
        Ok(lost)
    }

    fn remove_peer(&mut self, node: NodeId, keep_objects: bool) -> Result<(), FissioneError> {
        let id = self.peer(node)?.id().clone();
        if self.live <= self.cfg.base as usize + 1 {
            return Err(FissioneError::TooSmall);
        }

        // Fast path: the sibling leaf exists and can absorb the parent.
        if id.len() > 1 {
            let sibling = Self::sibling_label(&id);
            if let Some(&sib_node) = self.by_id.get(&enc_id(&sibling)) {
                let parent = id.take_front(id.len() - 1);
                let mut objects = if keep_objects {
                    std::mem::take(&mut self.slots[node].as_mut().expect("live").objects)
                } else {
                    BTreeMap::new()
                };
                self.free_slot(node, &id);
                let sib = self.slots[sib_node].as_mut().expect("live sibling");
                sib.objects.append(&mut objects);
                self.by_id.remove(&enc_id(&sibling));
                self.by_id.insert(enc_id(&parent), sib_node);
                sib.id = parent;
                self.bump_depth(id.len(), -1);
                self.bump_depth(id.len() - 1, 1);
                return Ok(());
            }
        }

        // Donor path: merge the deepest sibling-leaf pair (inside the
        // sibling subtree when one exists, else anywhere), freeing a peer
        // that adopts the leaver's label.
        let scope =
            if id.len() > 1 { Self::sibling_label(&id) } else { KautzStr::empty(self.cfg.base) };
        let deepest = self
            .peers_with_prefix(&scope)
            .filter(|&n| n != node)
            .max_by_key(|&n| self.slots[n].as_ref().expect("live").id.len())
            .ok_or(FissioneError::TooSmall)?;
        let deep_id = self.slots[deepest].as_ref().expect("live").id.clone();
        if deep_id.len() <= scope.len().max(1) {
            // Scope contains only its root: nothing to merge.
            return Err(FissioneError::TooSmall);
        }

        // Merge the deepest pair: its sibling must itself be a leaf.
        let deep_sibling = Self::sibling_label(&deep_id);
        let sib_node =
            *self.by_id.get(&enc_id(&deep_sibling)).expect("sibling of a deepest leaf is a leaf");
        debug_assert_ne!(sib_node, node);
        let parent = deep_id.take_front(deep_id.len() - 1);
        let mut donor_objects =
            std::mem::take(&mut self.slots[deepest].as_mut().expect("live").objects);
        {
            let sib = self.slots[sib_node].as_mut().expect("live sibling");
            sib.objects.append(&mut donor_objects);
            self.by_id.remove(&enc_id(&deep_sibling));
            self.by_id.insert(enc_id(&parent), sib_node);
            sib.id = parent;
            self.bump_depth(deep_id.len(), -2);
            self.bump_depth(deep_id.len() - 1, 1);
        }

        // The freed donor adopts the leaver's label and objects.
        let objects = if keep_objects {
            std::mem::take(&mut self.slots[node].as_mut().expect("live").objects)
        } else {
            BTreeMap::new()
        };
        self.by_id.remove(&enc_id(&deep_id));
        {
            let donor = self.slots[deepest].as_mut().expect("live donor");
            donor.id = id.clone();
            donor.objects = objects;
        }
        // The donor replaces the leaver under the same label, so the depth
        // histogram at `id.len()` is unchanged; only the slot and live count
        // of the leaver go away.
        self.by_id.insert(enc_id(&id), deepest);
        self.slots[node] = None;
        self.free_slots.push(Reverse(node));
        self.live -= 1;
        Ok(())
    }

    /// Repairs neighborhood-invariant violations by migrating peers from the
    /// deepest sibling-leaf pairs onto too-shallow leaves. Returns the
    /// number of migrations performed (bounded by the peer count).
    pub fn stabilize(&mut self) -> usize {
        let mut ops = 0;
        let cap = self.live;
        while ops < cap {
            let Some(shallow) = self.worst_violation() else { break };
            let shallow_depth = self.slots[shallow].as_ref().expect("live").id.len();
            // Deepest leaf overall.
            let deepest = self
                .live_peers()
                .max_by_key(|&n| self.slots[n].as_ref().expect("live").id.len())
                .expect("non-empty");
            let deep_len = self.slots[deepest].as_ref().expect("live").id.len();
            if deep_len < shallow_depth + 2 || deepest == shallow {
                break; // cannot improve further
            }
            self.migrate(deepest, shallow);
            ops += 1;
        }
        ops
    }

    /// Finds a peer with a neighbor at depth ≥ its own + 2 (shallow side).
    fn worst_violation(&self) -> Option<NodeId> {
        let mut worst: Option<(usize, NodeId)> = None;
        for node in self.live_peers() {
            let d = self.slots[node].as_ref().expect("live").id.len();
            let max_nb = self
                .neighbors(node)
                .into_iter()
                .map(|n| self.slots[n].as_ref().expect("live").id.len())
                .max()
                .unwrap_or(d);
            if max_nb >= d + 2 {
                let gap = max_nb - d;
                if worst.is_none_or(|(g, _)| gap > g) {
                    worst = Some((gap, node));
                }
            }
        }
        worst.map(|(_, n)| n)
    }

    /// Merges `donor`'s sibling pair and re-splits `target` with the freed
    /// peer.
    fn migrate(&mut self, donor: NodeId, target: NodeId) {
        let deep_id = self.slots[donor].as_ref().expect("live").id.clone();
        debug_assert!(deep_id.len() > 1, "root peers are never deepest in a violation");
        let sibling = Self::sibling_label(&deep_id);
        let sib_node =
            *self.by_id.get(&enc_id(&sibling)).expect("sibling of the deepest leaf is a leaf");
        if sib_node == target || donor == target {
            return;
        }
        let parent = deep_id.take_front(deep_id.len() - 1);
        let mut donor_objects =
            std::mem::take(&mut self.slots[donor].as_mut().expect("live").objects);
        {
            let sib = self.slots[sib_node].as_mut().expect("live");
            sib.objects.append(&mut donor_objects);
            self.by_id.remove(&enc_id(&sibling));
            self.by_id.insert(enc_id(&parent), sib_node);
            sib.id = parent;
            self.bump_depth(deep_id.len(), -2);
            self.bump_depth(deep_id.len() - 1, 1);
        }
        self.by_id.remove(&enc_id(&deep_id));
        self.live -= 1; // donor temporarily out
        self.slots[donor] = None;
        self.free_slots.push(Reverse(donor));

        // Split the target; the freed slot takes the right child.
        let (kept, newcomer) = self.split_leaf(target);
        debug_assert_eq!(kept, target);
        // Move the newcomer's identity into the freed donor slot so donor
        // ids stay stable? Both slots are ours; keep it simple: the freed
        // donor slot stays empty and the newcomer occupies a (possibly
        // recycled) slot — slot identity of migrated peers changes, which
        // callers observe through liveness checks.
        let _ = newcomer;
    }

    /// Publishes an object handle; returns the storing peer.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::TargetTooShort`] if the ObjectID is shorter
    /// than the owner region's depth (callers should use the configured
    /// `object_id_len`).
    pub fn publish(&mut self, object: KautzStr, handle: u64) -> Result<NodeId, FissioneError> {
        let owner = self.owner_of(&object)?;
        self.slots[owner]
            .as_mut()
            .expect("owner is live")
            .objects
            .entry(object)
            .or_default()
            .push(handle);
        Ok(owner)
    }

    /// All handles published under an exact ObjectID (resolved at the
    /// owner), with the owner's node id.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::TargetTooShort`] for malformed ObjectIDs.
    pub fn lookup(&self, object: &KautzStr) -> Result<(NodeId, &[u64]), FissioneError> {
        let owner = self.owner_of(object)?;
        Ok((owner, self.slots[owner].as_ref().expect("live").handles_for(object)))
    }

    /// Verifies the hard invariants (complete prefix-free cover, object
    /// placement, internal bookkeeping) and reports soft statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FissioneError::InvariantViolated`] describing the state at
    /// failure.
    pub fn check_invariants(&self) -> Result<InvariantReport, FissioneError> {
        let report = self.report();
        // Bookkeeping: by_id and slots agree.
        let mut live = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(p) = slot {
                live += 1;
                if self.by_id.get(&enc_id(&p.id)) != Some(&i) {
                    return Err(FissioneError::InvariantViolated(report));
                }
            }
        }
        if live != self.live || self.by_id.len() != live {
            return Err(FissioneError::InvariantViolated(report));
        }
        // Prefix-freeness: adjacent sorted ids must not nest (encoded key
        // order is id order, and nesting is exactly the prefix interval).
        let keys: Vec<u128> = self.by_id.keys().copied().collect();
        for w in keys.windows(2) {
            if enc_is_prefix(w[0], w[1]) {
                return Err(FissioneError::InvariantViolated(report));
            }
        }
        // Completeness: region measures sum to 1. Peer at depth ℓ covers
        // (1/(d+1))·(1/d)^(ℓ-1); with d = 2 and D = max depth:
        // Σ 2^(D-ℓ) must equal 3·2^(D-1) · (1/3)·… — i.e. Σ 2^(D-ℓ) = 3·2^(D-1)/1?
        // Work in units of 1/(3·2^(D-1)): each peer contributes 2^(D-ℓ),
        // and the total must be 3·2^(D-1).
        let d_max = report.max_depth as u32;
        let mut total: u128 = 0;
        for &k in self.by_id.keys() {
            total += 1u128 << (d_max - enc_len(k) as u32);
        }
        if total != 3u128 << (d_max - 1) {
            return Err(FissioneError::InvariantViolated(report));
        }
        // Object placement: stored keys extend the holder's id.
        for peer in self.slots.iter().flatten() {
            for (key, _) in peer.objects() {
                if !peer.id().is_prefix_of(key) || key.len() != self.cfg.object_id_len {
                    return Err(FissioneError::InvariantViolated(report));
                }
            }
        }
        Ok(report)
    }

    /// Soft statistics without hard-invariant verification.
    pub fn report(&self) -> InvariantReport {
        let mut violations = 0;
        for node in self.live_peers() {
            let d = self.slots[node].as_ref().expect("live").id.len() as isize;
            for nb in self.out_neighbors(node) {
                let nd = self.slots[nb].as_ref().expect("live").id.len() as isize;
                if (nd - d).abs() > 1 {
                    violations += 1;
                }
            }
        }
        InvariantReport {
            peers: self.live,
            max_depth: self.max_depth(),
            min_depth: self.min_depth(),
            neighborhood_violations: violations,
            total_objects: self.slots.iter().flatten().map(Peer::object_count).sum(),
        }
    }

    /// Per-depth live peer counts (index = depth).
    pub fn depth_histogram(&self) -> &[usize] {
        &self.depth_hist
    }

    // ------------------------------------------------------------------
    // internals

    fn sibling_label(id: &KautzStr) -> KautzStr {
        let parent = id.take_front(id.len() - 1);
        let last = id.last().expect("non-empty");
        let other = parent
            .child_symbols()
            .find(|&s| s != last)
            .expect("base ≥ 2 ⇒ a sibling symbol exists");
        parent.child(other).expect("legal child")
    }

    fn insert_peer(&mut self, id: KautzStr) -> NodeId {
        let key = enc_id(&id);
        let node = self.alloc_slot(Peer { id: id.clone(), objects: BTreeMap::new() });
        self.bump_depth(id.len(), 1);
        self.by_id.insert(key, node);
        self.live += 1;
        node
    }

    fn alloc_slot(&mut self, peer: Peer) -> NodeId {
        // Pops the lowest free index — the same slot the old
        // `position(Option::is_none)` scan found, without the scan.
        if let Some(Reverse(i)) = self.free_slots.pop() {
            debug_assert!(self.slots[i].is_none(), "free-slot heap out of sync");
            self.slots[i] = Some(peer);
            i
        } else {
            self.slots.push(Some(peer));
            self.slots.len() - 1
        }
    }

    fn free_slot(&mut self, node: NodeId, id: &KautzStr) {
        // Remove the by_id entry only if it still points at this slot (the
        // label may already have been adopted by a donor).
        if self.by_id.get(&enc_id(id)) == Some(&node) {
            self.by_id.remove(&enc_id(id));
            self.bump_depth(id.len(), -1);
        }
        self.slots[node] = None;
        self.free_slots.push(Reverse(node));
        self.live -= 1;
    }

    fn bump_depth(&mut self, depth: usize, delta: isize) {
        if self.depth_hist.len() <= depth {
            self.depth_hist.resize(depth + 1, 0);
        }
        let c = &mut self.depth_hist[depth];
        *c = (*c as isize + delta) as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FissioneConfig;

    fn small_cfg() -> FissioneConfig {
        FissioneConfig { object_id_len: 24, ..FissioneConfig::default() }
    }

    fn build(n: usize, seed: u64) -> FissioneNet {
        let mut rng = simnet::rng_from_seed(seed);
        FissioneNet::build(small_cfg(), n, &mut rng).unwrap()
    }

    fn ks(s: &str) -> KautzStr {
        s.parse().unwrap()
    }

    #[test]
    fn new_network_has_root_cover() {
        let net = FissioneNet::new(small_cfg());
        assert_eq!(net.len(), 3);
        net.check_invariants().unwrap();
        assert_eq!(net.max_depth(), 1);
    }

    #[test]
    fn grows_with_invariants_intact() {
        let mut rng = simnet::rng_from_seed(1);
        let mut net = FissioneNet::new(small_cfg());
        for i in 0..200 {
            net.join(&mut rng);
            if i % 20 == 0 {
                net.check_invariants().unwrap();
            }
        }
        let report = net.check_invariants().unwrap();
        assert_eq!(report.peers, 203);
        assert_eq!(report.neighborhood_violations, 0, "balanced growth");
    }

    #[test]
    fn depth_bounds_hold_at_n_2000() {
        let net = build(2000, 2);
        let report = net.check_invariants().unwrap();
        let log_n = (2000f64).log2();
        assert!(
            (report.max_depth as f64) < 2.0 * log_n,
            "max depth {} vs 2logN {}",
            report.max_depth,
            2.0 * log_n
        );
        // Average depth < logN (§3).
        let total: usize = net.live_peers().map(|n| net.peer(n).unwrap().depth()).sum();
        let avg = total as f64 / net.len() as f64;
        assert!(avg < log_n, "avg depth {avg} vs logN {log_n}");
    }

    #[test]
    fn owner_is_unique_prefix_holder() {
        let net = build(300, 3);
        let mut rng = simnet::rng_from_seed(33);
        for _ in 0..200 {
            let s = KautzStr::random(2, net.config().object_id_len, &mut rng);
            let owner = net.owner_of(&s).unwrap();
            let owner_id = net.peer_id(owner).unwrap();
            assert!(owner_id.is_prefix_of(&s));
            // No other live peer prefixes s.
            for n in net.live_peers() {
                if n != owner {
                    assert!(!net.peer_id(n).unwrap().is_prefix_of(&s));
                }
            }
        }
    }

    #[test]
    fn owner_of_short_string_errors() {
        let net = build(50, 4);
        let err = net.owner_of(&ks("0")).unwrap_err();
        assert!(matches!(err, FissioneError::TargetTooShort { .. }));
    }

    #[test]
    fn out_neighbors_are_shift_compatible() {
        let net = build(150, 5);
        for node in net.live_peers() {
            let id = net.peer_id(node).unwrap().clone();
            let shift = id.drop_front(1);
            let nbrs = net.out_neighbors(node);
            assert!(!nbrs.is_empty(), "strongly connected cover");
            for nb in &nbrs {
                let nid = net.peer_id(*nb).unwrap();
                assert!(nid.prefix_compatible(&shift), "{id} -> {nid}");
            }
            // Exhaustive: every compatible peer is listed.
            for other in net.live_peers() {
                let oid = net.peer_id(other).unwrap();
                if oid.prefix_compatible(&shift) {
                    assert!(nbrs.contains(&other), "{id} missing neighbor {oid}");
                }
            }
        }
    }

    #[test]
    fn in_neighbors_invert_out_neighbors() {
        let net = build(120, 6);
        for node in net.live_peers() {
            for nb in net.out_neighbors(node) {
                assert!(
                    net.in_neighbors(nb).contains(&node),
                    "{} -> {}",
                    net.peer_id(node).unwrap(),
                    net.peer_id(nb).unwrap()
                );
            }
            for nb in net.in_neighbors(node) {
                assert!(net.out_neighbors(nb).contains(&node));
            }
        }
    }

    #[test]
    fn average_total_degree_is_about_four() {
        let net = build(1000, 7);
        let total: usize =
            net.live_peers().map(|n| net.out_neighbors(n).len() + net.in_neighbors(n).len()).sum();
        let avg = total as f64 / net.len() as f64;
        assert!((3.0..5.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn publish_places_objects_at_owner() {
        let mut net = build(100, 8);
        let mut rng = simnet::rng_from_seed(88);
        for h in 0..50u64 {
            let obj = KautzStr::random(2, net.config().object_id_len, &mut rng);
            let owner = net.publish(obj.clone(), h).unwrap();
            let (found, handles) = net.lookup(&obj).unwrap();
            assert_eq!(found, owner);
            assert!(handles.contains(&h));
        }
        net.check_invariants().unwrap();
    }

    #[test]
    fn split_repartitions_objects() {
        let mut net = FissioneNet::new(small_cfg());
        let mut rng = simnet::rng_from_seed(9);
        for h in 0..200u64 {
            let obj = KautzStr::random(2, net.config().object_id_len, &mut rng);
            net.publish(obj, h).unwrap();
        }
        for _ in 0..50 {
            net.join(&mut rng);
        }
        let report = net.check_invariants().unwrap();
        assert_eq!(report.total_objects, 200, "no object lost in splits");
    }

    #[test]
    fn leave_fast_path_merges_sibling() {
        let mut rng = simnet::rng_from_seed(10);
        let mut net = FissioneNet::new(small_cfg());
        // Split "0" into 01, 02; then have 02 leave: 01 should become 0.
        let zero = *net.by_id.get(&enc_id(&ks("0"))).unwrap();
        let (left, right) = net.split_leaf(zero);
        assert_eq!(net.peer_id(left).unwrap(), &ks("01"));
        assert_eq!(net.peer_id(right).unwrap(), &ks("02"));
        net.leave(right).unwrap();
        assert_eq!(net.peer_id(left).unwrap(), &ks("0"));
        net.check_invariants().unwrap();
        let _ = &mut rng;
    }

    #[test]
    fn leave_donor_path_preserves_cover() {
        let mut rng = simnet::rng_from_seed(11);
        let mut net = FissioneNet::build(small_cfg(), 60, &mut rng).unwrap();
        // Publish objects, then churn heavily.
        for h in 0..100u64 {
            let obj = KautzStr::random(2, net.config().object_id_len, &mut rng);
            net.publish(obj, h).unwrap();
        }
        for _ in 0..30 {
            let victim = net.random_peer(&mut rng);
            net.leave(victim).unwrap();
            net.check_invariants().unwrap();
        }
        let report = net.check_invariants().unwrap();
        assert_eq!(report.peers, 30);
        assert_eq!(report.total_objects, 100, "graceful leaves keep objects");
    }

    #[test]
    fn crash_loses_objects_but_keeps_cover() {
        let mut rng = simnet::rng_from_seed(12);
        let mut net = FissioneNet::build(small_cfg(), 40, &mut rng).unwrap();
        let mut published = 0;
        for h in 0..60u64 {
            let obj = KautzStr::random(2, net.config().object_id_len, &mut rng);
            net.publish(obj, h).unwrap();
            published += 1;
        }
        let victim = net.random_peer(&mut rng);
        let lost = net.crash(victim).unwrap();
        let report = net.check_invariants().unwrap();
        assert_eq!(report.total_objects + lost, published);
    }

    #[test]
    fn network_never_shrinks_below_roots() {
        let mut rng = simnet::rng_from_seed(13);
        let mut net = FissioneNet::build(small_cfg(), 4, &mut rng).unwrap();
        let peers: Vec<NodeId> = net.live_peers().collect();
        net.leave(peers[0]).unwrap();
        let remaining: Vec<NodeId> = net.live_peers().collect();
        assert_eq!(remaining.len(), 3);
        let err = net.leave(remaining[0]).unwrap_err();
        assert_eq!(err, FissioneError::TooSmall);
    }

    #[test]
    fn stabilize_reduces_violations_after_churn() {
        let mut rng = simnet::rng_from_seed(14);
        // Use the unbalanced rule to provoke violations.
        let cfg = FissioneConfig { balance: BalanceRule::RandomOwner, ..small_cfg() };
        let mut net = FissioneNet::build(cfg, 400, &mut rng).unwrap();
        for _ in 0..150 {
            let victim = net.random_peer(&mut rng);
            let _ = net.leave(victim);
            net.join(&mut rng);
        }
        let before = net.report().neighborhood_violations;
        net.stabilize();
        let after = net.report().neighborhood_violations;
        net.check_invariants().unwrap();
        assert!(after <= before, "stabilize must not make things worse");
        assert_eq!(after, 0, "stabilize converges to the invariant");
    }

    #[test]
    fn random_peer_is_live() {
        let mut rng = simnet::rng_from_seed(15);
        let mut net = FissioneNet::build(small_cfg(), 30, &mut rng).unwrap();
        for _ in 0..10 {
            let victim = net.random_peer(&mut rng);
            net.leave(victim).unwrap();
        }
        for _ in 0..50 {
            assert!(net.is_live(net.random_peer(&mut rng)));
        }
    }
}
