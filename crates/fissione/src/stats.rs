//! Topology and routing statistics used by the `fissione_props` experiment
//! (validating the §3 claims: average degree ≈ 4, diameter < 2·log₂N,
//! average routing delay < log₂N).

use crate::FissioneNet;
use kautz::KautzStr;
use rand::rngs::SmallRng;
use simnet::{NodeId, Summary};
use std::collections::VecDeque;

/// PeerID depth distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthStats {
    /// Summary over live peer depths.
    pub summary: Summary,
    /// `histogram[d]` = live peers at depth `d`.
    pub histogram: Vec<usize>,
}

/// Degree distribution (out, in, and total).
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Summary of out-degrees.
    pub out: Summary,
    /// Summary of in-degrees.
    pub r#in: Summary,
    /// Summary of total degrees (out + in).
    pub total: Summary,
}

/// Sampled routing performance.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingSample {
    /// Summary of hop counts over the sampled routes.
    pub hops: Summary,
    /// Number of sampled routes.
    pub queries: usize,
}

impl FissioneNet {
    /// Depth distribution of live peers.
    pub fn depth_stats(&self) -> DepthStats {
        let depths: Vec<f64> =
            self.live_peers().map(|n| self.peer(n).expect("live").depth() as f64).collect();
        DepthStats {
            summary: Summary::from_samples(depths),
            histogram: self.depth_histogram().to_vec(),
        }
    }

    /// Degree distribution of live peers.
    pub fn degree_stats(&self) -> DegreeStats {
        let mut outs = Vec::with_capacity(self.len());
        let mut ins = Vec::with_capacity(self.len());
        let mut totals = Vec::with_capacity(self.len());
        for n in self.live_peers() {
            let o = self.out_neighbors(n).len() as f64;
            let i = self.in_neighbors(n).len() as f64;
            outs.push(o);
            ins.push(i);
            totals.push(o + i);
        }
        DegreeStats {
            out: Summary::from_samples(outs),
            r#in: Summary::from_samples(ins),
            total: Summary::from_samples(totals),
        }
    }

    /// BFS eccentricity of one peer over out-edges (max hops to reach any
    /// live peer).
    ///
    /// # Panics
    ///
    /// Panics if `node` is dead or some peer is unreachable (the cover
    /// guarantees strong connectivity).
    pub fn eccentricity(&self, node: NodeId) -> usize {
        let mut dist: Vec<Option<usize>> = vec![None; self.slot_count()];
        let mut q = VecDeque::new();
        dist[node] = Some(0);
        q.push_back(node);
        let mut seen = 1usize;
        let mut ecc = 0;
        while let Some(u) = q.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            ecc = ecc.max(du);
            for v in self.out_neighbors(u) {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    seen += 1;
                    q.push_back(v);
                }
            }
        }
        assert_eq!(seen, self.len(), "overlay must be strongly connected");
        ecc
    }

    /// Exact graph diameter (max eccentricity over all live peers);
    /// `O(N·(N+E))`, intended for `N ≲ 10⁴`.
    pub fn diameter(&self) -> usize {
        self.live_peers().map(|n| self.eccentricity(n)).max().unwrap_or(0)
    }

    /// Estimated diameter from a random sample of source peers.
    pub fn diameter_sampled(&self, sources: usize, rng: &mut SmallRng) -> usize {
        (0..sources).map(|_| self.eccentricity(self.random_peer(rng))).max().unwrap_or(0)
    }

    /// Samples `queries` random lookups from random sources and summarises
    /// the hop counts (the §3 "average routing delay").
    pub fn routing_sample(&self, queries: usize, rng: &mut SmallRng) -> RoutingSample {
        let k = self.config().object_id_len;
        let hops: Vec<f64> = (0..queries)
            .map(|_| {
                let target = KautzStr::random(self.config().base, k, rng);
                let from = self.random_peer(rng);
                self.route(from, &target).expect("route succeeds").hops() as f64
            })
            .collect();
        RoutingSample { hops: Summary::from_samples(hops), queries }
    }

    /// Number of peer slots ever allocated (dead slots included); used to
    /// size per-node scratch tables.
    pub fn slot_count(&self) -> usize {
        // live_peers yields at most this many distinct NodeIds.
        self.live_peers().map(|n| n + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::{FissioneConfig, FissioneNet};

    fn build(n: usize, seed: u64) -> FissioneNet {
        let cfg = FissioneConfig { object_id_len: 24, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        FissioneNet::build(cfg, n, &mut rng).unwrap()
    }

    #[test]
    fn depth_stats_match_paper_bounds() {
        let net = build(1000, 31);
        let d = net.depth_stats();
        let log_n = (1000f64).log2();
        assert!(d.summary.mean < log_n);
        assert!(d.summary.max < 2.0 * log_n);
        assert_eq!(d.histogram.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn degree_stats_average_about_four() {
        let net = build(800, 32);
        let g = net.degree_stats();
        assert!((3.0..5.0).contains(&g.total.mean), "avg total {}", g.total.mean);
        // Out-degree ≈ in-degree ≈ 2 on average.
        assert!((1.5..3.0).contains(&g.out.mean));
        assert!((1.5..3.0).contains(&g.r#in.mean));
    }

    #[test]
    fn diameter_below_twice_log_n() {
        let net = build(400, 33);
        let dia = net.diameter();
        let bound = 2.0 * (400f64).log2();
        assert!((dia as f64) < bound, "diameter {dia} vs {bound}");
    }

    #[test]
    fn routing_sample_below_log_n() {
        let net = build(600, 34);
        let mut rng = simnet::rng_from_seed(340);
        let s = net.routing_sample(400, &mut rng);
        assert!(s.hops.mean < (600f64).log2(), "mean hops {}", s.hops.mean);
        assert_eq!(s.queries, 400);
    }
}
