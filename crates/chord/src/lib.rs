//! Chord (Stoica et al., ToN 2003), simulated: a 2⁶⁴ identifier ring with
//! successor lists and finger tables.
//!
//! In this workspace Chord serves as the *O(log N)-degree* contrast
//! substrate: PHT runs over both Chord and FISSIONE to show the layered
//! scheme's costs on either side of Table 1's degree divide.
//!
//! Node ids ([`NodeId`]) are **stable slots**: a node keeps its id for its
//! lifetime, departures free the slot, and later joins may recycle it —
//! the discipline every dynamic substrate in the workspace shares, so
//! drivers can hold ids across membership events. The simulator models the
//! converged steady state the paper's analysis assumes: a membership event
//! re-derives the affected finger tables synchronously, so
//! [`stabilize`](dht_api::DynamicDht::stabilize) has no deferred repair to
//! do and reports zero operations.
//!
//! # Example
//!
//! ```
//! use chord::ChordNet;
//! use dht_api::Dht;
//!
//! let mut rng = simnet::rng_from_seed(3);
//! let net = ChordNet::build(128, &mut rng);
//! let lookup = net.route_key(net.any_node(), 0xdead_beef);
//! assert!(lookup.hops as f64 <= 2.0 * 128f64.log2());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dht_api::{Dht, DynamicDht, Lookup, SchemeError};
use rand::rngs::SmallRng;
use rand::Rng;
use simnet::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const RING_BITS: u32 = 64;
/// Sentinel filling the finger-slab rows of dead slots.
const DEAD_FINGER: NodeId = NodeId::MAX;

/// A simulated Chord ring.
///
/// Ring identifiers are uniform random 64-bit values; key `k` is owned by
/// its **successor** (the first node clockwise at or after `k`). Fingers
/// are exact (the network is maintained in a converged state, as the
/// paper's steady-state analysis assumes).
#[derive(Debug, Clone)]
pub struct ChordNet {
    /// Slot table: `slots[n]` is node `n`'s ring identifier, `None` for
    /// departed slots.
    slots: Vec<Option<u64>>,
    /// The live ring: `(identifier, slot)` sorted by identifier.
    ring: Vec<(u64, NodeId)>,
    /// Finger slab: row `n` is the contiguous stripe
    /// `fingers[n·64 .. (n+1)·64]`, where entry `b` is the node owning
    /// `slots[n] + 2^b`; dead slots' rows hold [`DEAD_FINGER`].
    fingers: Vec<NodeId>,
    /// Free slots as a min-heap: joins recycle the lowest free index,
    /// matching the old slot scan without its O(N) cost.
    free_slots: BinaryHeap<Reverse<usize>>,
}

impl ChordNet {
    /// Builds a converged `n`-node ring with random identifiers. Slot `i`
    /// holds the `i`-th smallest identifier.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize, rng: &mut SmallRng) -> Self {
        assert!(n > 0, "a Chord ring needs at least one node");
        let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        ids.sort_unstable();
        ids.dedup();
        while ids.len() < n {
            let extra: u64 = rng.gen();
            if let Err(pos) = ids.binary_search(&extra) {
                ids.insert(pos, extra);
            }
        }
        let ring = ids.iter().enumerate().map(|(slot, &id)| (id, slot)).collect();
        let mut net = ChordNet {
            slots: ids.into_iter().map(Some).collect(),
            ring,
            fingers: Vec::new(),
            free_slots: BinaryHeap::new(),
        };
        net.fingers = vec![DEAD_FINGER; net.slots.len() * RING_BITS as usize];
        net.rebuild_all_fingers();
        net
    }

    fn rebuild_all_fingers(&mut self) {
        for slot in 0..self.slots.len() {
            self.rebuild_fingers_of(slot);
        }
    }

    fn rebuild_fingers_of(&mut self, slot: NodeId) {
        let base = slot * RING_BITS as usize;
        match self.slots[slot] {
            Some(id) => {
                for b in 0..RING_BITS {
                    self.fingers[base + b as usize] = self.successor_of(id.wrapping_add(1u64 << b));
                }
            }
            None => self.fingers[base..base + RING_BITS as usize].fill(DEAD_FINGER),
        }
    }

    /// Finger `b` of a live slot: the node owning `slots[slot] + 2^b`.
    fn finger(&self, slot: NodeId, b: usize) -> NodeId {
        self.fingers[slot * RING_BITS as usize + b]
    }

    /// The node owning `point` (its successor on the ring).
    pub fn successor_of(&self, point: u64) -> NodeId {
        match self.ring.binary_search_by_key(&point, |&(id, _)| id) {
            Ok(i) => self.ring[i].1,
            Err(i) if i == self.ring.len() => self.ring[0].1, // wrap
            Err(i) => self.ring[i].1,
        }
    }

    /// The ring identifier of a node.
    ///
    /// # Panics
    ///
    /// Panics for dead or unknown node ids.
    pub fn id_of(&self, node: NodeId) -> u64 {
        self.slots[node].expect("live node")
    }

    /// Whether `node` refers to a live ring member.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.slots.get(node).is_some_and(Option::is_some)
    }

    /// Live nodes in ring order (ascending identifier) — a deterministic
    /// order churn plans rely on for victim selection.
    pub fn live_members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ring.iter().map(|&(_, slot)| slot)
    }

    /// The complete finger slab in slot-major order (row `n` holds the 64
    /// fingers of slot `n`; dead slots are all-`u64::MAX`) — exposed so
    /// equivalence tests can compare incremental maintenance against
    /// [`refresh_all_fingers`](Self::refresh_all_fingers) byte for byte.
    pub fn finger_slab(&self) -> &[NodeId] {
        &self.fingers
    }

    /// Recomputes every finger table from scratch on the current
    /// membership — the oracle the incremental `join`/`remove` repairs are
    /// pinned against. A converged network is a fixed point: calling this
    /// must never change [`finger_slab`](Self::finger_slab).
    pub fn refresh_all_fingers(&mut self) {
        self.rebuild_all_fingers();
    }

    /// A new node joins with a fresh random identifier; the converged
    /// maintenance model re-derives the affected finger tables
    /// synchronously. Returns the newcomer's slot.
    ///
    /// Maintenance is incremental: the newcomer computes its own table
    /// (64 successor lookups), and an existing finger moves only when the
    /// new identifier now owns its target point — an `O(1)` interval test
    /// per finger, no per-event full rebuild.
    pub fn join(&mut self, rng: &mut SmallRng) -> NodeId {
        // Exactly one RNG draw per join, so the membership plan's stream
        // advances by a fixed amount regardless of ring contents (detlint's
        // D3 seeded-plan discipline). A colliding identifier (probability
        // ~N/2⁶⁴) re-derives follow-up candidates from the draw itself
        // instead of consuming more of the stream.
        let mut id: u64 = rng.gen();
        while self.ring.binary_search_by_key(&id, |&(i, _)| i).is_ok() {
            id = splitmix64(id);
        }
        let slot = if let Some(Reverse(free)) = self.free_slots.pop() {
            debug_assert!(self.slots[free].is_none(), "free-slot heap out of sync");
            self.slots[free] = Some(id);
            free
        } else {
            self.slots.push(Some(id));
            self.fingers.resize(self.fingers.len() + RING_BITS as usize, DEAD_FINGER);
            self.slots.len() - 1
        };
        let pos = self.ring.binary_search_by_key(&id, |&(i, _)| i).unwrap_err();
        let pred_id = self.ring[(pos + self.ring.len() - 1) % self.ring.len()].0;
        self.ring.insert(pos, (id, slot));
        self.rebuild_fingers_of(slot);
        // A finger `successor_of(start)` moves to the newcomer exactly when
        // its start point `other + 2^b` lies on the arc `(pred, id]` the
        // newcomer took over — equivalently, when `other` lies on that arc
        // shifted by `−2^b`. Binary-searching the shifted arc per bit
        // touches only the expected-O(1) movers instead of the whole ring.
        for b in 0..RING_BITS as usize {
            let step = 1u64 << b;
            let (r1, r2) = self.arc_ranges(pred_id.wrapping_sub(step), id.wrapping_sub(step));
            for i in r1.chain(r2) {
                let other = self.ring[i].1;
                if other == slot {
                    continue;
                }
                self.fingers[other * RING_BITS as usize + b] = slot;
            }
        }
        slot
    }

    /// Ring indices whose identifiers lie on the clockwise arc
    /// `(lo, hi]`, as up to two contiguous index ranges (the second is the
    /// wrapped prefix). Requires `lo != hi`.
    fn arc_ranges(&self, lo: u64, hi: u64) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        debug_assert_ne!(lo, hi, "a full-ring arc is never enumerated");
        let above = |point: u64| match self.ring.binary_search_by_key(&point, |&(i, _)| i) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        let (a, b) = (above(lo), above(hi));
        if lo < hi {
            (a..b, 0..0)
        } else {
            (a..self.ring.len(), 0..b)
        }
    }

    /// Graceful departure: the node's successor takes over its keys (keys
    /// are derived, not stored, in this simulator) and the remaining
    /// fingers re-converge — incrementally: only fingers that pointed at
    /// the leaver move, and their new target is by definition the leaver's
    /// ring successor.
    ///
    /// # Errors
    ///
    /// [`SchemeError::BadOrigin`] for dead ids, [`SchemeError::Query`] when
    /// only one node remains.
    pub fn remove(&mut self, node: NodeId) -> Result<(), SchemeError> {
        if !self.is_live(node) {
            return Err(SchemeError::BadOrigin { origin: node });
        }
        if self.ring.len() <= 1 {
            return Err(SchemeError::Query("the last Chord node cannot leave".into()));
        }
        let id = self.slots[node].take().expect("checked live");
        let pos = self.ring.binary_search_by_key(&id, |&(i, _)| i).expect("ring member");
        let pred_id = self.ring[(pos + self.ring.len() - 1) % self.ring.len()].0;
        self.ring.remove(pos);
        let base = node * RING_BITS as usize;
        self.fingers[base..base + RING_BITS as usize].fill(DEAD_FINGER);
        self.free_slots.push(Reverse(node));
        // Everything the leaver owned falls to its ring successor. In the
        // converged state the fingers pointing at the leaver are exactly
        // those whose start point lies on the leaver's arc `(pred, id]`, so
        // the shifted-arc enumeration of `join` finds every one of them.
        let heir = self.ring[pos % self.ring.len()].1;
        for b in 0..RING_BITS as usize {
            let step = 1u64 << b;
            let (r1, r2) = self.arc_ranges(pred_id.wrapping_sub(step), id.wrapping_sub(step));
            for i in r1.chain(r2) {
                let other = self.ring[i].1;
                let f = &mut self.fingers[other * RING_BITS as usize + b];
                debug_assert_eq!(*f, node, "converged fingers point into the leaver's arc");
                *f = heir;
            }
        }
        Ok(())
    }

    /// Greedy finger routing from `from` to the owner of ring point `key`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is dead.
    pub fn route_point(&self, from: NodeId, key: u64) -> Lookup {
        let (lookup, _) = self.route_point_path(from, key);
        lookup
    }

    /// [`route_point`](Self::route_point) returning the full traversed
    /// path, `[from, ..., owner]` — what per-edge cost models price.
    ///
    /// # Panics
    ///
    /// Panics if `from` is dead.
    pub fn route_point_path(&self, from: NodeId, key: u64) -> (Lookup, Vec<NodeId>) {
        let owner = self.successor_of(key);
        let mut cur = from;
        let mut path = vec![from];
        while cur != owner {
            // If the owner is our direct successor, one hop finishes.
            let succ = self.finger(cur, 0);
            if Self::in_interval(self.id_of(cur), self.id_of(succ), key) {
                debug_assert_eq!(succ, owner);
                path.push(succ);
                break;
            }
            // Otherwise jump through the farthest finger preceding the key.
            let mut next = succ;
            for b in (0..RING_BITS as usize).rev() {
                let f = self.finger(cur, b);
                if f != cur && Self::in_interval(self.id_of(cur), key, self.id_of(f)) {
                    next = f;
                    break;
                }
            }
            if next == cur {
                next = succ;
            }
            cur = next;
            path.push(next);
            debug_assert!(path.len() <= self.ring.len() + 1, "routing must terminate");
        }
        (Lookup { owner, hops: path.len() - 1 }, path)
    }

    /// Whether `x` lies in the half-open clockwise interval `(a, b]`.
    fn in_interval(a: u64, b: u64, x: u64) -> bool {
        if a < b {
            x > a && x <= b
        } else {
            x > a || x <= b // wrapped
        }
    }
}

/// SplitMix64 finalizer: derives collision-retry identifiers in
/// [`ChordNet::join`] without consuming more of the membership RNG stream.
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Dht for ChordNet {
    fn route_key(&self, from: NodeId, key: u64) -> Lookup {
        self.route_point(from, key)
    }

    fn route_key_latency(&self, from: NodeId, key: u64, net: &simnet::NetModel) -> (Lookup, u64) {
        // The real finger path, priced edge by edge.
        let (lookup, path) = self.route_point_path(from, key);
        (lookup, net.path_cost(&path))
    }

    fn owner_of_key(&self, key: u64) -> NodeId {
        self.successor_of(key)
    }

    fn replica_owners(&self, key: u64, r: usize) -> Vec<NodeId> {
        // Chord's classic successor-list replication: the key's owner plus
        // the next `r − 1` nodes clockwise — a local ring walk, no routing.
        let want = r.max(1).min(self.ring.len());
        let start = match self.ring.binary_search_by_key(&key, |&(id, _)| id) {
            Ok(i) => i,
            Err(i) => i % self.ring.len(),
        };
        (0..want).map(|i| self.ring[(start + i) % self.ring.len()].1).collect()
    }

    fn any_node(&self) -> NodeId {
        self.ring[0].1
    }

    fn random_node(&self, rng: &mut SmallRng) -> NodeId {
        loop {
            let slot = rng.gen_range(0..self.slots.len());
            if self.slots[slot].is_some() {
                return slot;
            }
        }
    }

    fn node_count(&self) -> usize {
        self.ring.len()
    }

    fn name(&self) -> &'static str {
        "chord"
    }
}

impl DynamicDht for ChordNet {
    fn join(&mut self, rng: &mut SmallRng) -> NodeId {
        ChordNet::join(self, rng)
    }

    fn leave(&mut self, node: NodeId) -> Result<(), SchemeError> {
        self.remove(node)
    }

    fn crash(&mut self, node: NodeId) -> Result<(), SchemeError> {
        // The simulator stores no per-node state at the Chord layer, so an
        // abrupt failure differs from a graceful leave only in what the
        // layer above loses.
        self.remove(node)
    }

    fn stabilize(&mut self) -> usize {
        // Maintenance is synchronous in the converged-state model: every
        // membership event already re-derived the finger tables.
        0
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.live_members().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> ChordNet {
        let mut rng = simnet::rng_from_seed(seed);
        ChordNet::build(n, &mut rng)
    }

    #[test]
    fn ownership_is_clockwise_successor() {
        let net = build(50, 1);
        let mut rng = simnet::rng_from_seed(10);
        for _ in 0..200 {
            let key: u64 = rng.gen();
            let owner = net.successor_of(key);
            // No node lies strictly between key and its owner clockwise.
            for n in net.live_members() {
                if n != owner {
                    assert!(
                        !ChordNet::in_interval(key.wrapping_sub(1), net.id_of(owner), net.id_of(n))
                            || net.id_of(n) == key,
                        "node {n} preempts owner"
                    );
                }
            }
        }
    }

    #[test]
    fn routing_reaches_owner_from_everywhere() {
        let net = build(200, 2);
        let mut rng = simnet::rng_from_seed(20);
        for _ in 0..300 {
            let key: u64 = rng.gen();
            let from = net.random_node(&mut rng);
            let lookup = net.route_point(from, key);
            assert_eq!(lookup.owner, net.successor_of(key));
        }
    }

    #[test]
    fn hops_scale_logarithmically() {
        let mut rng = simnet::rng_from_seed(30);
        for &n in &[64usize, 256, 1024] {
            let net = build(n, 3 + n as u64);
            let mut total = 0usize;
            let queries = 300;
            for _ in 0..queries {
                let key: u64 = rng.gen();
                let from = net.random_node(&mut rng);
                total += net.route_point(from, key).hops;
            }
            let avg = total as f64 / queries as f64;
            let log_n = (n as f64).log2();
            // Chord's average is ~½·log₂N; allow generous slack.
            assert!(avg < log_n, "N={n}: avg {avg} ≥ log2N {log_n}");
            assert!(avg > 0.25 * log_n, "N={n}: avg {avg} suspiciously low");
        }
    }

    #[test]
    fn replica_owners_walk_the_successor_list() {
        let net = build(40, 9);
        let mut rng = simnet::rng_from_seed(90);
        for _ in 0..50 {
            let key: u64 = rng.gen();
            let owners = Dht::replica_owners(&net, key, 4);
            assert_eq!(owners.len(), 4);
            assert_eq!(owners[0], net.successor_of(key), "primary is the key's owner");
            let distinct: std::collections::BTreeSet<_> = owners.iter().collect();
            assert_eq!(distinct.len(), 4, "owners must be distinct");
            // Consecutive on the ring: each owner is its predecessor's
            // direct successor.
            for pair in owners.windows(2) {
                assert_eq!(
                    net.successor_of(net.id_of(pair[0]).wrapping_add(1)),
                    pair[1],
                    "successor-list order"
                );
            }
            // Prefix-stable in r.
            assert_eq!(Dht::replica_owners(&net, key, 2), owners[..2].to_vec());
        }
        // Clamped to the network size.
        let tiny = build(3, 10);
        assert_eq!(Dht::replica_owners(&tiny, 7, 10).len(), 3);
    }

    #[test]
    fn self_route_costs_zero() {
        let net = build(20, 4);
        let key = 42u64;
        let owner = net.successor_of(key);
        assert_eq!(net.route_point(owner, key).hops, 0);
    }

    #[test]
    fn single_node_owns_everything() {
        let net = build(1, 5);
        let only = net.any_node();
        assert_eq!(net.successor_of(0), only);
        assert_eq!(net.successor_of(u64::MAX), only);
        assert_eq!(net.route_point(only, 12345).hops, 0);
    }

    #[test]
    fn churn_preserves_routing_and_slot_stability() {
        let mut rng = simnet::rng_from_seed(6);
        let mut net = ChordNet::build(64, &mut rng);
        // A survivor's slot and identifier must never move under churn.
        let witness = net.live_members().nth(10).unwrap();
        let witness_id = net.id_of(witness);
        for i in 0..60 {
            if i % 2 == 0 {
                net.join(&mut rng);
            } else {
                let victim = net.live_members().find(|&n| n != witness).unwrap();
                net.remove(victim).unwrap();
            }
        }
        assert_eq!(net.id_of(witness), witness_id);
        assert_eq!(net.node_count(), 64);
        // Ring order is maintained and routing still converges everywhere.
        for _ in 0..100 {
            let key: u64 = rng.gen();
            let from = net.random_node(&mut rng);
            let lookup = net.route_point(from, key);
            assert_eq!(lookup.owner, net.successor_of(key));
            assert!(lookup.hops <= net.node_count());
        }
    }

    #[test]
    fn incremental_finger_maintenance_matches_a_full_rebuild() {
        let mut rng = simnet::rng_from_seed(8);
        let mut net = ChordNet::build(80, &mut rng);
        for i in 0..100 {
            if i % 3 == 0 {
                let victim = net.random_node(&mut rng);
                let _ = net.remove(victim);
            } else {
                net.join(&mut rng);
            }
        }
        let incremental = net.fingers.clone();
        net.rebuild_all_fingers();
        assert_eq!(incremental, net.fingers, "incremental repair must converge exactly");
    }

    #[test]
    fn last_node_cannot_leave_and_dead_ids_error() {
        let mut net = build(2, 7);
        let victim = net.any_node();
        net.remove(victim).unwrap();
        assert!(matches!(net.remove(victim), Err(SchemeError::BadOrigin { .. })));
        let survivor = net.any_node();
        assert!(matches!(net.remove(survivor), Err(SchemeError::Query(_))));
    }
}
