//! Chord (Stoica et al., ToN 2003), simulated: a 2⁶⁴ identifier ring with
//! successor lists and finger tables.
//!
//! In this workspace Chord serves as the *O(log N)-degree* contrast
//! substrate: PHT runs over both Chord and FISSIONE to show the layered
//! scheme's costs on either side of Table 1's degree divide.
//!
//! # Example
//!
//! ```
//! use chord::ChordNet;
//! use dht_api::Dht;
//!
//! let mut rng = simnet::rng_from_seed(3);
//! let net = ChordNet::build(128, &mut rng);
//! let lookup = net.route_key(net.any_node(), 0xdead_beef);
//! assert!(lookup.hops as f64 <= 2.0 * 128f64.log2());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dht_api::{Dht, Lookup};
use rand::rngs::SmallRng;
use rand::Rng;
use simnet::NodeId;

const RING_BITS: u32 = 64;

/// A simulated Chord ring.
///
/// Node ids are uniform random 64-bit identifiers; key `k` is owned by its
/// **successor** (the first node clockwise at or after `k`). Fingers are
/// exact (the network is built in a converged state, as the paper's
/// steady-state analysis assumes).
#[derive(Debug, Clone)]
pub struct ChordNet {
    /// Sorted ring identifiers; index in this vector = `NodeId`.
    ids: Vec<u64>,
    /// `fingers[n][i]` = node owning `ids[n] + 2^i`.
    fingers: Vec<Vec<NodeId>>,
}

impl ChordNet {
    /// Builds a converged `n`-node ring with random identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize, rng: &mut SmallRng) -> Self {
        assert!(n > 0, "a Chord ring needs at least one node");
        let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        ids.sort_unstable();
        ids.dedup();
        while ids.len() < n {
            let extra: u64 = rng.gen();
            if let Err(pos) = ids.binary_search(&extra) {
                ids.insert(pos, extra);
            }
        }
        let mut net = ChordNet { ids, fingers: Vec::new() };
        net.rebuild_fingers();
        net
    }

    fn rebuild_fingers(&mut self) {
        let n = self.ids.len();
        self.fingers = (0..n)
            .map(|i| {
                (0..RING_BITS)
                    .map(|b| self.successor_of(self.ids[i].wrapping_add(1u64 << b)))
                    .collect()
            })
            .collect();
    }

    /// The node owning `point` (its successor on the ring).
    pub fn successor_of(&self, point: u64) -> NodeId {
        match self.ids.binary_search(&point) {
            Ok(i) => i,
            Err(i) if i == self.ids.len() => 0, // wrap
            Err(i) => i,
        }
    }

    /// The ring identifier of a node.
    ///
    /// # Panics
    ///
    /// Panics for unknown node ids.
    pub fn id_of(&self, node: NodeId) -> u64 {
        self.ids[node]
    }

    /// Whether `x` lies in the half-open clockwise interval `(a, b]`.
    fn in_interval(a: u64, b: u64, x: u64) -> bool {
        if a < b {
            x > a && x <= b
        } else {
            x > a || x <= b // wrapped
        }
    }

    /// Greedy finger routing from `from` to the owner of ring point `key`.
    pub fn route_point(&self, from: NodeId, key: u64) -> Lookup {
        let owner = self.successor_of(key);
        let mut cur = from;
        let mut hops = 0usize;
        while cur != owner {
            // If the owner is our direct successor, one hop finishes.
            let succ = self.fingers[cur][0];
            if Self::in_interval(self.ids[cur], self.ids[succ], key) {
                debug_assert_eq!(succ, owner);
                hops += 1;
                break;
            }
            // Otherwise jump through the farthest finger preceding the key.
            let mut next = succ;
            for b in (0..RING_BITS as usize).rev() {
                let f = self.fingers[cur][b];
                if f != cur && Self::in_interval(self.ids[cur], key, self.ids[f]) {
                    next = f;
                    break;
                }
            }
            if next == cur {
                next = succ;
            }
            cur = next;
            hops += 1;
            debug_assert!(hops <= self.ids.len(), "routing must terminate");
        }
        Lookup { owner, hops }
    }
}

impl Dht for ChordNet {
    fn route_key(&self, from: NodeId, key: u64) -> Lookup {
        self.route_point(from, key)
    }

    fn owner_of_key(&self, key: u64) -> NodeId {
        self.successor_of(key)
    }

    fn any_node(&self) -> NodeId {
        0
    }

    fn random_node(&self, rng: &mut SmallRng) -> NodeId {
        rng.gen_range(0..self.ids.len())
    }

    fn node_count(&self) -> usize {
        self.ids.len()
    }

    fn name(&self) -> &'static str {
        "chord"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> ChordNet {
        let mut rng = simnet::rng_from_seed(seed);
        ChordNet::build(n, &mut rng)
    }

    #[test]
    fn ownership_is_clockwise_successor() {
        let net = build(50, 1);
        let mut rng = simnet::rng_from_seed(10);
        for _ in 0..200 {
            let key: u64 = rng.gen();
            let owner = net.successor_of(key);
            // No node lies strictly between key and its owner clockwise.
            for n in 0..net.node_count() {
                if n != owner {
                    assert!(
                        !ChordNet::in_interval(key.wrapping_sub(1), net.id_of(owner), net.id_of(n))
                            || net.id_of(n) == key,
                        "node {n} preempts owner"
                    );
                }
            }
        }
    }

    #[test]
    fn routing_reaches_owner_from_everywhere() {
        let net = build(200, 2);
        let mut rng = simnet::rng_from_seed(20);
        for _ in 0..300 {
            let key: u64 = rng.gen();
            let from = net.random_node(&mut rng);
            let lookup = net.route_point(from, key);
            assert_eq!(lookup.owner, net.successor_of(key));
        }
    }

    #[test]
    fn hops_scale_logarithmically() {
        let mut rng = simnet::rng_from_seed(30);
        for &n in &[64usize, 256, 1024] {
            let net = build(n, 3 + n as u64);
            let mut total = 0usize;
            let queries = 300;
            for _ in 0..queries {
                let key: u64 = rng.gen();
                let from = net.random_node(&mut rng);
                total += net.route_point(from, key).hops;
            }
            let avg = total as f64 / queries as f64;
            let log_n = (n as f64).log2();
            // Chord's average is ~½·log₂N; allow generous slack.
            assert!(avg < log_n, "N={n}: avg {avg} ≥ log2N {log_n}");
            assert!(avg > 0.25 * log_n, "N={n}: avg {avg} suspiciously low");
        }
    }

    #[test]
    fn self_route_costs_zero() {
        let net = build(20, 4);
        let key = 42u64;
        let owner = net.successor_of(key);
        assert_eq!(net.route_point(owner, key).hops, 0);
    }

    #[test]
    fn single_node_owns_everything() {
        let net = build(1, 5);
        assert_eq!(net.successor_of(0), 0);
        assert_eq!(net.successor_of(u64::MAX), 0);
        assert_eq!(net.route_point(0, 12345).hops, 0);
    }
}
