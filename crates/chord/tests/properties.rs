//! Property tests: Chord ownership and routing on arbitrary ring sizes.

use chord::ChordNet;
use dht_api::Dht;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routing_reaches_the_clockwise_successor(
        n in 1usize..300,
        seed in 0u64..10_000,
        key in any::<u64>(),
        from_raw in any::<usize>(),
    ) {
        let mut rng = simnet::rng_from_seed(seed);
        let net = ChordNet::build(n, &mut rng);
        let from = from_raw % net.node_count();
        let lookup = net.route_key(from, key);
        prop_assert_eq!(lookup.owner, net.successor_of(key));
        // Hop bound: never more than log2(N) + a small constant for the
        // final successor steps.
        let bound = (n as f64).log2().ceil() + 3.0;
        prop_assert!(
            (lookup.hops as f64) <= bound.max(3.0),
            "{} hops on an N = {} ring", lookup.hops, n
        );
    }

    #[test]
    fn ownership_partitions_the_ring(n in 2usize..100, seed in 0u64..10_000, key in any::<u64>()) {
        let mut rng = simnet::rng_from_seed(seed);
        let net = ChordNet::build(n, &mut rng);
        let owner = net.successor_of(key);
        // The owner's id is at or clockwise-after the key, and no other node
        // sits strictly between.
        let oid = net.id_of(owner);
        for node in 0..net.node_count() {
            if node == owner {
                continue;
            }
            let nid = net.id_of(node);
            // nid must NOT lie in the clockwise-open interval [key, oid).
            let inside = if key <= oid {
                nid >= key && nid < oid
            } else {
                nid >= key || nid < oid
            };
            prop_assert!(!inside, "node {} preempts the successor", node);
        }
    }
}
