//! Space-filling-curve utilities shared by the SFC-based range-query
//! schemes (Squid's cluster refinement over Chord, SCRAP's z-order mapping
//! over Skip Graph).
//!
//! The z-order (Morton) curve interleaves the bits of `m` quantised
//! attribute values into one key. A *cluster* is the set of keys sharing a
//! prefix; it corresponds to an axis-aligned hyper-rectangle, so a rectangle
//! query decomposes into a small set of maximal clusters — each of which is
//! a **contiguous key range**, the property both schemes exploit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A z-order key layout: `dims` attributes × `bits` bits each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZSpace {
    dims: u32,
    bits: u32,
}

/// A maximal cluster of the decomposition: the contiguous key range
/// `[lo, hi]` (inclusive), at `prefix_len` interleaved bits of depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZRange {
    /// Smallest key in the cluster.
    pub lo: u64,
    /// Largest key in the cluster.
    pub hi: u64,
    /// Prefix depth at which the cluster was emitted (refinement level).
    pub depth: u32,
}

impl ZSpace {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ dims`, `1 ≤ bits` and `dims·bits ≤ 62`.
    pub fn new(dims: u32, bits: u32) -> Self {
        assert!(dims >= 1 && bits >= 1, "degenerate z-space");
        assert!(dims * bits <= 62, "key would overflow u64");
        ZSpace { dims, bits }
    }

    /// Attribute count.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Bits per attribute.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total key bits (`dims · bits`).
    pub fn key_bits(&self) -> u32 {
        self.dims * self.bits
    }

    /// Quantises a unit-interval coordinate to `bits` bits.
    pub fn quantize(&self, t: f64) -> u32 {
        let max = (1u64 << self.bits) - 1;
        ((t.clamp(0.0, 1.0) * max as f64) as u64).min(max) as u32
    }

    /// Interleaves quantised coordinates into a z-order key (dimension 0
    /// owns the most significant bit of each round).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range coordinates.
    pub fn interleave(&self, coords: &[u32]) -> u64 {
        assert_eq!(coords.len(), self.dims as usize, "arity mismatch");
        let mut key = 0u64;
        for bit in (0..self.bits).rev() {
            for (d, &c) in coords.iter().enumerate() {
                assert!(c < 1 << self.bits, "coordinate overflows {} bits", self.bits);
                key = (key << 1) | u64::from((c >> bit) & 1);
                let _ = d;
            }
        }
        key
    }

    /// Recovers the quantised coordinates from a key.
    pub fn deinterleave(&self, key: u64) -> Vec<u32> {
        let mut coords = vec![0u32; self.dims as usize];
        let total = self.key_bits();
        for i in 0..total {
            let bit = (key >> (total - 1 - i)) & 1;
            let dim = (i % self.dims) as usize;
            coords[dim] = (coords[dim] << 1) | bit as u32;
        }
        coords
    }

    /// Decomposes the quantised rectangle (per-dimension inclusive ranges)
    /// into maximal z-order clusters, each a contiguous key range.
    ///
    /// Recursion: a prefix whose box is disjoint from the query is pruned;
    /// fully contained boxes emit their whole key range; partial overlaps
    /// refine one interleaved bit deeper. The result is ordered by `lo` and
    /// its total size is `O(2^dims · key_bits)` ranges in the worst case.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn decompose(&self, ranges: &[(u32, u32)]) -> Vec<ZRange> {
        assert_eq!(ranges.len(), self.dims as usize, "arity mismatch");
        let mut out = Vec::new();
        // Box state: per-dim [lo, hi] of the current prefix, plus the key
        // prefix accumulated so far.
        let full: Vec<(u32, u32)> = vec![(0, ((1u64 << self.bits) - 1) as u32); self.dims as usize];
        self.decompose_rec(ranges, 0, 0, &full, &mut out);
        out
    }

    fn decompose_rec(
        &self,
        query: &[(u32, u32)],
        depth: u32,
        prefix: u64,
        boxes: &[(u32, u32)],
        out: &mut Vec<ZRange>,
    ) {
        // Disjoint?
        for (d, &(qlo, qhi)) in query.iter().enumerate() {
            let (blo, bhi) = boxes[d];
            if bhi < qlo || blo > qhi {
                return;
            }
        }
        let total = self.key_bits();
        let remaining = total - depth;
        // Fully contained?
        let contained = query
            .iter()
            .zip(boxes.iter())
            .all(|(&(qlo, qhi), &(blo, bhi))| qlo <= blo && bhi <= qhi);
        if contained || remaining == 0 {
            let lo = prefix << remaining;
            let hi = lo | ((1u64 << remaining) - 1);
            out.push(ZRange { lo, hi, depth });
            return;
        }
        // Refine one interleaved bit: it belongs to dimension `depth % dims`.
        let dim = (depth % self.dims) as usize;
        let (blo, bhi) = boxes[dim];
        let mid = blo + (bhi - blo) / 2;
        let mut low_half = boxes.to_vec();
        low_half[dim] = (blo, mid);
        let mut high_half = boxes.to_vec();
        high_half[dim] = (mid + 1, bhi);
        self.decompose_rec(query, depth + 1, prefix << 1, &low_half, out);
        self.decompose_rec(query, depth + 1, (prefix << 1) | 1, &high_half, out);
    }
}

/// Merges adjacent/overlapping ranges (the decomposition is ordered by
/// construction, so a single pass suffices). The `depth` of a merged range
/// is the maximum of its parts (the deepest refinement that produced it).
pub fn merge_ranges(mut ranges: Vec<ZRange>) -> Vec<ZRange> {
    ranges.sort_by_key(|r| r.lo);
    let mut out: Vec<ZRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.lo <= last.hi.saturating_add(1) => {
                last.hi = last.hi.max(r.hi);
                last.depth = last.depth.max(r.depth);
            }
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_roundtrips() {
        let z = ZSpace::new(2, 8);
        for coords in [[0u32, 0], [255, 255], [170, 85], [1, 2]] {
            let key = z.interleave(&coords);
            assert_eq!(z.deinterleave(key), coords.to_vec());
        }
    }

    #[test]
    fn interleave_is_monotone_per_quadrant() {
        // The first interleaved bit is dim 0's MSB: keys with dim0 < 2^(b-1)
        // precede keys with dim0 ≥ 2^(b-1).
        let z = ZSpace::new(2, 4);
        assert!(z.interleave(&[7, 15]) < z.interleave(&[8, 0]));
    }

    #[test]
    fn decompose_point_is_single_cell() {
        let z = ZSpace::new(2, 6);
        let ranges = z.decompose(&[(13, 13), (42, 42)]);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].lo, ranges[0].hi);
        assert_eq!(z.deinterleave(ranges[0].lo), vec![13, 42]);
    }

    #[test]
    fn decompose_covers_exactly() {
        let z = ZSpace::new(2, 4);
        let query = [(3u32, 9u32), (5u32, 12u32)];
        let ranges = merge_ranges(z.decompose(&query));
        // Collect all covered keys and compare with brute force.
        let mut covered: Vec<u64> = ranges.iter().flat_map(|r| r.lo..=r.hi).collect();
        covered.sort_unstable();
        let mut expect = Vec::new();
        for x in 0u32..16 {
            for y in 0u32..16 {
                if (3..=9).contains(&x) && (5..=12).contains(&y) {
                    expect.push(z.interleave(&[x, y]));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(covered, expect);
    }

    #[test]
    fn whole_space_is_one_range() {
        let z = ZSpace::new(3, 4);
        let full = [(0u32, 15u32); 3];
        let ranges = z.decompose(&full);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].lo, 0);
        assert_eq!(ranges[0].hi, (1u64 << 12) - 1);
        assert_eq!(ranges[0].depth, 0);
    }

    #[test]
    fn merge_coalesces_adjacent() {
        let merged = merge_ranges(vec![
            ZRange { lo: 0, hi: 3, depth: 2 },
            ZRange { lo: 4, hi: 7, depth: 3 },
            ZRange { lo: 10, hi: 12, depth: 1 },
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], ZRange { lo: 0, hi: 7, depth: 3 });
    }

    #[test]
    fn quantize_endpoints() {
        let z = ZSpace::new(2, 8);
        assert_eq!(z.quantize(0.0), 0);
        assert_eq!(z.quantize(1.0), 255);
        assert_eq!(z.quantize(2.0), 255);
    }
}
