//! Skip Graph behind the unified [`dht_api`] query interface.
//!
//! [`SkipGraphNet`] implements [`RangeScheme`] directly — it owns the
//! overlay, the storage, and the query algorithm, so no adapter state is
//! needed. Queries walk the skip lists through `&self`, so the net is
//! `Send + Sync` and shards across parallel-driver threads; [`register`]
//! exposes it as `"skipgraph"`.
//!
//! Skip Graph does **not** opt into the dynamics layer: the simulated
//! overlay builds its membership vectors once and has no join/leave/crash
//! protocol, so [`RangeScheme::as_dynamic`] honestly stays `None` and
//! epoch-driven churn runs skip it at runtime.

use crate::{SkipGraphNet, SkipOutcome};
use dht_api::{OutcomeCosts, RangeOutcome, RangeScheme, SchemeError, SchemeRegistry};
use rand::rngs::SmallRng;
use simnet::NodeId;

impl SkipOutcome {
    /// Converts into the scheme-generic outcome. The level-0 walk visits
    /// every destination bucket, so queries are exact by construction.
    pub fn into_outcome(self) -> RangeOutcome {
        RangeOutcome::from_native(
            self.results,
            OutcomeCosts {
                hops: u64::from(self.delay),
                latency: self.latency,
                messages: self.messages,
            },
            self.dest_peers,
            self.dest_peers,
            true,
        )
    }
}

impl From<SkipOutcome> for RangeOutcome {
    fn from(out: SkipOutcome) -> Self {
        out.into_outcome()
    }
}

impl RangeScheme for SkipGraphNet {
    fn scheme_name(&self) -> &'static str {
        "skipgraph"
    }

    fn substrate(&self) -> String {
        if self.net_model().is_unit() {
            "— (is the overlay)".into()
        } else {
            format!("— (is the overlay) @ {}", self.net_model().name())
        }
    }

    fn degree(&self) -> String {
        "O(logN)".into()
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        SkipGraphNet::publish(self, value, handle);
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.random_node(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        if origin >= self.len() {
            return Err(SchemeError::BadOrigin { origin });
        }
        Ok(SkipGraphNet::range_query(self, origin, lo, hi).into_outcome())
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        // Skip Graph's costs come from the analytic walk model, not a
        // per-message simulation, so the trace is an honestly-labeled
        // modeled decomposition of the reported totals.
        let out = RangeScheme::range_query(self, origin, lo, hi, seed)?;
        let trace = dht_api::QueryTrace::modeled(RangeScheme::scheme_name(self), origin, &out);
        Ok((out, trace))
    }
}

/// Registers `"skipgraph"`.
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_single(
        "skipgraph",
        Box::new(|p, rng| {
            let mut net = SkipGraphNet::build(p.n, p.domain.0, p.domain.1, rng);
            net.set_net_model(p.net);
            Ok(Box::new(net))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_api::BuildParams;
    use rand::Rng;

    #[test]
    fn skipgraph_scheme_is_exact_and_guards_inputs() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        let mut rng = simnet::rng_from_seed(920);
        let mut scheme =
            reg.build_single("skipgraph", &BuildParams::new(90, 0.0, 1000.0), &mut rng).unwrap();
        let mut data = Vec::new();
        for h in 0..200u64 {
            let v = rng.gen_range(0.0..=1000.0);
            scheme.publish(v, h).unwrap();
            data.push((v, h));
        }
        for q in 0..15 {
            let lo = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.5..80.0);
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query(origin, lo, hi, q).unwrap();
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
        }
        assert!(matches!(scheme.range_query(0, 5.0, 1.0, 0), Err(SchemeError::EmptyRange { .. })));
        assert!(matches!(
            scheme.range_query(usize::MAX, 1.0, 2.0, 0),
            Err(SchemeError::BadOrigin { .. })
        ));
    }
}
