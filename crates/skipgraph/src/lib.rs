//! Skip Graph (Aspnes & Shah, SODA 2003), simulated — the `O(logN + n)`
//! range-query row of the Armada paper's Table 1.
//!
//! A Skip Graph arranges peers in a sorted doubly-linked list (level 0) and
//! recursively splits each list by random *membership vector* bits, so every
//! peer belongs to one list per level. Search walks right/left at the
//! highest usable level and descends, taking `O(log N)` hops w.h.p.; a range
//! query then hands the query down the level-0 list — `O(n)` further hops,
//! which is exactly why its delay is *not* bounded in the range size.
//!
//! # Example
//!
//! ```
//! use skipgraph::SkipGraphNet;
//!
//! let mut rng = simnet::rng_from_seed(8);
//! let mut net = SkipGraphNet::build(100, 0.0, 1000.0, &mut rng);
//! net.publish(42.0, 1);
//! net.publish(43.5, 2);
//! net.publish(99.0, 3);
//! let origin = net.random_node(&mut rng);
//! let out = net.range_query(origin, 40.0, 50.0);
//! assert_eq!(out.results, vec![1, 2]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheme;

pub use scheme::register;

use rand::rngs::SmallRng;
use rand::Rng;
use simnet::NodeId;

/// Result of a Skip Graph range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipOutcome {
    /// Matching record handles, ascending.
    pub results: Vec<u64>,
    /// Search hops + level-0 walk hops.
    pub delay: u32,
    /// The same search-then-walk path priced edge by edge under the
    /// graph's [`NetModel`](simnet::NetModel) (every hop is sequential, so
    /// the whole path is the critical path). Equals `delay` under `unit`.
    pub latency: u64,
    /// Total messages (equals delay: one message per hop).
    pub messages: u64,
    /// Peers whose key range intersected the query.
    pub dest_peers: usize,
}

/// A converged Skip Graph over peers keyed by positions in an attribute
/// domain.
///
/// `NodeId`s index peers in **key order** (the level-0 list order). Records
/// are stored at the peer with the greatest key `≤ value` (successor-style
/// buckets), so peers partition the attribute domain.
#[derive(Debug, Clone)]
pub struct SkipGraphNet {
    /// Sorted peer keys (bucket lower bounds).
    keys: Vec<f64>,
    /// `neighbors[level][node] = (left, right)` in that level's list.
    neighbors: Vec<Vec<(Option<NodeId>, Option<NodeId>)>>,
    /// Per-peer stored records `(value, handle)`.
    records: Vec<Vec<(f64, u64)>>,
    domain_lo: f64,
    domain_hi: f64,
    /// Network cost model pricing search and walk edges (`unit` default).
    net_model: simnet::NetModel,
}

impl SkipGraphNet {
    /// Builds a converged `n`-peer Skip Graph whose keys are uniform random
    /// positions in `[lo, hi]` (the first peer is pinned to `lo` so every
    /// value has an owner).
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 1` and `lo < hi`.
    pub fn build(n: usize, lo: f64, hi: f64, rng: &mut SmallRng) -> Self {
        assert!(n >= 1, "need at least one peer");
        assert!(lo < hi, "empty domain");
        let mut keys: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(lo..hi)).collect();
        keys.push(lo);
        keys.sort_by(f64::total_cmp);
        keys.dedup();
        while keys.len() < n {
            let extra = rng.gen_range(lo..hi);
            if let Err(pos) = keys.binary_search_by(|k| k.total_cmp(&extra)) {
                keys.insert(pos, extra);
            }
        }

        // Membership vectors: enough levels that top lists are singletons.
        let levels = ((n as f64).log2().ceil() as usize) + 2;
        let membership: Vec<Vec<bool>> =
            (0..n).map(|_| (0..levels).map(|_| rng.gen()).collect()).collect();

        // Level ℓ lists: peers sharing their first ℓ membership bits, in key
        // order. Level 0 is the whole sorted list.
        let mut neighbors = Vec::with_capacity(levels + 1);
        for level in 0..=levels {
            let mut nbr = vec![(None, None); n];
            // Group by membership prefix. BTreeMap so the group walk below
            // is prefix-ordered, never hasher-ordered — within a group the
            // lists stay key-sorted because nodes arrive in key order, and
            // groups are disjoint, so neighbor assignment is independent of
            // group order; the deterministic walk makes that a non-issue
            // rather than a proof obligation.
            let mut groups: std::collections::BTreeMap<Vec<bool>, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for (node, bits) in membership.iter().enumerate() {
                groups.entry(bits[..level].to_vec()).or_default().push(node);
                // nodes iterated in key order ⇒ lists sorted
            }
            for list in groups.values() {
                for w in list.windows(2) {
                    nbr[w[0]].1 = Some(w[1]);
                    nbr[w[1]].0 = Some(w[0]);
                }
            }
            neighbors.push(nbr);
        }

        SkipGraphNet {
            keys,
            neighbors,
            records: vec![Vec::new(); n],
            domain_lo: lo,
            domain_hi: hi,
            net_model: simnet::NetModel::unit(),
        }
    }

    /// Replaces the network cost model queries price their edges with
    /// (`unit` by default). Hop and message metrics are model-invariant;
    /// only [`SkipOutcome::latency`] moves.
    pub fn set_net_model(&mut self, model: simnet::NetModel) {
        self.net_model = model;
    }

    /// The network cost model in force.
    pub fn net_model(&self) -> &simnet::NetModel {
        &self.net_model
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The peer's bucket lower bound.
    pub fn key_of(&self, node: NodeId) -> f64 {
        self.keys[node]
    }

    /// A uniformly random peer.
    pub fn random_node(&self, rng: &mut SmallRng) -> NodeId {
        rng.gen_range(0..self.keys.len())
    }

    /// The peer owning `value`: greatest key `≤ value` (clamped into the
    /// domain).
    pub fn owner_of(&self, value: f64) -> NodeId {
        let v = value.clamp(self.domain_lo, self.domain_hi);
        match self.keys.binary_search_by(|k| k.total_cmp(&v)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Stores a record at the owner of its value.
    pub fn publish(&mut self, value: f64, handle: u64) -> NodeId {
        let owner = self.owner_of(value);
        self.records[owner].push((value, handle));
        owner
    }

    /// Records stored at a peer.
    pub fn records_at(&self, node: NodeId) -> &[(f64, u64)] {
        &self.records[node]
    }

    /// Skip Graph search from `from` to the owner of `value`; returns
    /// `(owner, hops)`. Standard algorithm: at each level move toward the
    /// target as far as possible without overshooting, then descend.
    pub fn search(&self, from: NodeId, value: f64) -> (NodeId, u32) {
        let (owner, hops, _) = self.search_priced(from, value);
        (owner, hops)
    }

    /// [`search`](Self::search) also accumulating the traversed edges'
    /// [`NetModel`](simnet::NetModel) cost: `(owner, hops, latency)`.
    pub fn search_priced(&self, from: NodeId, value: f64) -> (NodeId, u32, u64) {
        let target = self.owner_of(value);
        let mut cur = from;
        let mut hops = 0u32;
        let mut latency = 0u64;
        let mut level = self.neighbors.len() - 1;
        loop {
            if cur == target {
                return (target, hops, latency);
            }
            let rightward = target > cur; // NodeIds are in key order
            let step = if rightward {
                self.neighbors[level][cur].1.filter(|&r| r <= target)
            } else {
                self.neighbors[level][cur].0.filter(|&l| l >= target)
            };
            match step {
                Some(next) => {
                    latency += self.net_model.edge_cost(cur, next);
                    cur = next;
                    hops += 1;
                }
                None if level > 0 => level -= 1,
                None => unreachable!("level-0 list reaches every peer"),
            }
        }
    }

    /// Range query: search the owner of `lo`, then walk the level-0 list
    /// right through every bucket intersecting `[lo, hi]`.
    pub fn range_query(&self, from: NodeId, lo: f64, hi: f64) -> SkipOutcome {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let (first, search_hops, search_latency) = self.search_priced(from, lo);
        let mut results = Vec::new();
        let mut walk = 0u32;
        let mut latency = search_latency;
        let mut dest = 0usize;
        let mut cur = Some(first);
        while let Some(node) = cur {
            if self.keys[node] > hi {
                break;
            }
            dest += 1;
            for &(v, h) in &self.records[node] {
                if v >= lo && v <= hi {
                    results.push(h);
                }
            }
            cur = self.neighbors[0][node].1;
            match cur {
                Some(next) if self.keys[next] <= hi => {
                    walk += 1;
                    latency += self.net_model.edge_cost(node, next);
                }
                _ => break,
            }
        }
        results.sort_unstable();
        let delay = search_hops + walk;
        SkipOutcome { results, delay, latency, messages: u64::from(delay), dest_peers: dest }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> SkipGraphNet {
        let mut rng = simnet::rng_from_seed(seed);
        SkipGraphNet::build(n, 0.0, 1000.0, &mut rng)
    }

    #[test]
    fn level_neighbors_are_hasher_and_run_independent() {
        // Regression for the level-builder hazard this PR closes: the
        // membership-prefix grouping used to live in a `HashMap`, so the
        // `groups.values()` walk at level-assembly time ran in hasher
        // order — a per-thread, per-instance random order. The grouping is
        // now a `BTreeMap`; pin the contract by rebuilding from the same
        // seed on fresh OS threads (each with fresh hasher-key state) and
        // requiring the full neighbor structure to come out identical.
        let reference = build(120, 7);
        for round in 0..3 {
            let rebuilt =
                std::thread::spawn(move || build(120, 7)).join().expect("build thread panicked");
            assert_eq!(
                rebuilt.neighbors, reference.neighbors,
                "round {round}: level lists drifted"
            );
            assert_eq!(rebuilt.keys, reference.keys, "round {round}: keys drifted");
        }
    }

    #[test]
    fn keys_are_sorted_and_first_is_domain_lo() {
        let net = build(100, 1);
        assert_eq!(net.key_of(0), 0.0);
        for i in 1..net.len() {
            assert!(net.key_of(i) > net.key_of(i - 1));
        }
    }

    #[test]
    fn owner_is_greatest_key_below() {
        let net = build(50, 2);
        let mut rng = simnet::rng_from_seed(20);
        for _ in 0..200 {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            let owner = net.owner_of(v);
            assert!(net.key_of(owner) <= v);
            if owner + 1 < net.len() {
                assert!(net.key_of(owner + 1) > v);
            }
        }
    }

    #[test]
    fn search_reaches_owner_from_everywhere() {
        let net = build(150, 3);
        let mut rng = simnet::rng_from_seed(30);
        for _ in 0..200 {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            let from = net.random_node(&mut rng);
            let (found, _) = net.search(from, v);
            assert_eq!(found, net.owner_of(v));
        }
    }

    #[test]
    fn search_hops_are_logarithmic() {
        let mut rng = simnet::rng_from_seed(40);
        for &n in &[128usize, 512, 2048] {
            let net = build(n, 4 + n as u64);
            let mut total = 0u64;
            let queries = 300;
            for _ in 0..queries {
                let v: f64 = rng.gen_range(0.0..=1000.0);
                let from = net.random_node(&mut rng);
                total += u64::from(net.search(from, v).1);
            }
            let avg = total as f64 / queries as f64;
            let log_n = (n as f64).log2();
            assert!(avg < 2.5 * log_n, "N = {n}: avg {avg} vs logN {log_n}");
        }
    }

    #[test]
    fn range_query_is_exact() {
        let mut rng = simnet::rng_from_seed(50);
        let mut net = build(120, 5);
        let mut data = Vec::new();
        for h in 0..400u64 {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            net.publish(v, h);
            data.push((v, h));
        }
        for _ in 0..50 {
            let lo: f64 = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.1..150.0);
            let from = net.random_node(&mut rng);
            let out = net.range_query(from, lo, hi);
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
        }
    }

    #[test]
    fn range_delay_grows_with_destinations() {
        let mut rng = simnet::rng_from_seed(60);
        let net = build(1000, 6);
        let from = net.random_node(&mut rng);
        let small = net.range_query(from, 500.0, 505.0);
        let large = net.range_query(from, 100.0, 900.0);
        assert!(large.dest_peers > 50 * small.dest_peers.max(1) / 10);
        assert!(large.delay > small.delay + 100);
        // delay ≥ walk length = dest − 1.
        assert!(large.delay as usize >= large.dest_peers - 1);
    }

    #[test]
    fn single_peer_graph_works() {
        let mut rng = simnet::rng_from_seed(70);
        let mut net = SkipGraphNet::build(1, 0.0, 10.0, &mut rng);
        net.publish(5.0, 9);
        let out = net.range_query(0, 0.0, 10.0);
        assert_eq!(out.results, vec![9]);
        assert_eq!(out.delay, 0);
    }
}
