//! DCF-CAN behind the unified [`dht_api`] query interface.
//!
//! [`DcfScheme`] wraps a [`CanNet`] plus a [`FloodMode`]; both duplicate-
//! suppression variants register separately (`"dcf-can"` directed,
//! `"dcf-can-naive"` naive), so ablations select them by name at runtime.
//! Queries flood zone-to-zone through `&self` state only, so a built
//! scheme is `Send + Sync` and shards across parallel-driver threads.
//!
//! Both variants opt into the dynamics layer
//! ([`RangeScheme::as_dynamic`]): zone joins/departures go to the CAN
//! substrate, and stabilization re-publishes records lost to crashes from
//! the adapter's own record table.

use crate::dcf::{self, DcfOutcome, FloodMode};
use crate::{CanConfig, CanError, CanNet};
use dht_api::{
    BuildParams, DynamicScheme, FetchCost, OutcomeCosts, RangeOutcome, RangeScheme, ReplicaRouting,
    SchemeError, SchemeRegistry,
};
use rand::rngs::SmallRng;
use simnet::{FaultPlan, NetModel, NodeId};

impl From<CanError> for SchemeError {
    fn from(e: CanError) -> Self {
        match e {
            CanError::NoSuchZone { zone } => SchemeError::BadOrigin { origin: zone },
            CanError::EmptyRange { lo, hi } => SchemeError::EmptyRange { lo, hi },
            CanError::RoutingStuck | CanError::TooSmall => SchemeError::Query(e.to_string()),
        }
    }
}

impl DcfOutcome {
    /// Converts into the scheme-generic outcome (zones count as peers).
    pub fn into_outcome(self) -> RangeOutcome {
        RangeOutcome::from_native(
            self.results,
            OutcomeCosts {
                hops: u64::from(self.delay),
                latency: self.latency,
                messages: self.messages,
            },
            self.dest_zones,
            self.reached_zones,
            self.exact,
        )
    }
}

impl From<DcfOutcome> for RangeOutcome {
    fn from(out: DcfOutcome) -> Self {
        out.into_outcome()
    }
}

/// DCF range queries over CAN as a [`RangeScheme`].
#[derive(Debug, Clone)]
pub struct DcfScheme {
    net: CanNet,
    mode: FloodMode,
    /// Network cost model pricing the flood's edges (from
    /// [`BuildParams::net`]).
    net_model: NetModel,
    /// Every record ever published — the ground truth the stabilization
    /// repair sweep restores after crashes lose zone-local copies.
    published: Vec<(f64, u64)>,
}

impl DcfScheme {
    /// Builds an `n`-zone CAN per the registry parameters.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Build`] when the CAN cannot be constructed.
    pub fn build(
        params: &BuildParams,
        mode: FloodMode,
        rng: &mut SmallRng,
    ) -> Result<Self, SchemeError> {
        let cfg = CanConfig {
            domain_lo: params.domain.0,
            domain_hi: params.domain.1,
            ..CanConfig::default()
        };
        let net =
            CanNet::build(cfg, params.n, rng).map_err(|e| SchemeError::Build(e.to_string()))?;
        Ok(DcfScheme { net, mode, net_model: params.net, published: Vec::new() })
    }

    /// The wrapped CAN.
    pub fn net(&self) -> &CanNet {
        &self.net
    }

    /// Re-publishes every record no longer stored at its owning zone;
    /// returns the number restored.
    fn repair_records(&mut self) -> usize {
        let missing: Vec<(f64, u64)> = self
            .published
            .iter()
            .filter(|&&(v, h)| {
                let (x, y) = self.net.point_of_value(v);
                let owner = self.net.owner_of_point(x, y);
                !self.net.zone(owner).expect("live owner").records().contains(&(v, h))
            })
            .copied()
            .collect();
        let restored = missing.len();
        for (v, h) in missing {
            self.net.publish(v, h);
        }
        restored
    }
}

impl RangeScheme for DcfScheme {
    fn scheme_name(&self) -> &'static str {
        match self.mode {
            FloodMode::Directed => "dcf-can",
            FloodMode::Naive => "dcf-can-naive",
        }
    }

    fn substrate(&self) -> String {
        if self.net_model.is_unit() {
            "CAN (d = 2)".into()
        } else {
            format!("CAN (d = 2) @ {}", self.net_model.name())
        }
    }

    fn degree(&self) -> String {
        let total: usize = self.net.live_zones().map(|z| self.net.neighbors(z).len()).sum();
        format!("{:.1}", total as f64 / self.net.len() as f64)
    }

    fn node_count(&self) -> usize {
        self.net.len()
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.net.publish(value, handle);
        self.published.push((value, handle));
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.net.random_zone(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        let out = dcf::range_query_priced(
            &self.net,
            origin,
            lo,
            hi,
            seed,
            self.mode,
            &FaultPlan::new(),
            &self.net_model,
        )?;
        Ok(out.into_outcome())
    }

    fn range_query_scratch(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        scratch: &mut simnet::QueryScratch,
    ) -> Result<RangeOutcome, SchemeError> {
        let out = dcf::range_query_priced_scratch(
            &self.net,
            origin,
            lo,
            hi,
            seed,
            self.mode,
            &FaultPlan::new(),
            &self.net_model,
            scratch,
        )?;
        Ok(out.into_outcome())
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn range_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<RangeOutcome, SchemeError> {
        // A plan crashing a zone outside the id space would silently be a
        // no-op (no message ever reaches it); reject it instead.
        if let Some(node) = faults.first_out_of_range(self.node_count()) {
            return Err(SchemeError::FaultPlanOutOfRange { node, n: self.node_count() });
        }
        let out = dcf::range_query_priced(
            &self.net,
            origin,
            lo,
            hi,
            seed,
            self.mode,
            faults,
            &self.net_model,
        )?;
        Ok(out.into_outcome())
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        let (out, records) = dcf::range_query_traced(
            &self.net,
            origin,
            lo,
            hi,
            seed,
            self.mode,
            &FaultPlan::new(),
            &self.net_model,
        )?;
        let converted = out.into_outcome();
        let trace = dht_api::QueryTrace::from_sim_records(self.scheme_name(), records, &converted);
        Ok((converted, trace))
    }

    fn trace_query_with_faults(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        if let Some(node) = faults.first_out_of_range(self.node_count()) {
            return Err(SchemeError::FaultPlanOutOfRange { node, n: self.node_count() });
        }
        let (out, records) = dcf::range_query_traced(
            &self.net,
            origin,
            lo,
            hi,
            seed,
            self.mode,
            faults,
            &self.net_model,
        )?;
        let converted = out.into_outcome();
        let trace = dht_api::QueryTrace::from_sim_records(self.scheme_name(), records, &converted);
        Ok((converted, trace))
    }

    fn as_dynamic(&mut self) -> Option<&mut dyn DynamicScheme> {
        Some(self)
    }

    fn as_replica_routing(&self) -> Option<&dyn ReplicaRouting> {
        Some(self)
    }
}

impl ReplicaRouting for DcfScheme {
    fn live_peers(&self) -> Vec<NodeId> {
        self.net.live_zones().collect()
    }

    fn close_group(&self, value: f64, r: usize) -> Vec<NodeId> {
        self.net.replica_owners(value, r)
    }

    fn fetch_cost(&self, origin: NodeId, holder: NodeId) -> FetchCost {
        if origin == holder {
            return FetchCost::default(); // the copy is local
        }
        // Greedy-route to the holder zone's center, plus one direct
        // response hop — the same path pricing the query flood pays, with
        // the same edges charged by the cost model.
        let model = &self.net_model;
        let response = model.edge_cost(holder, origin);
        let (hops, route_latency) = self
            .net
            .zone(holder)
            .map(|z| {
                let rect = z.rect();
                ((rect.x0 + rect.x1) / 2.0, (rect.y0 + rect.y1) / 2.0)
            })
            .and_then(|(cx, cy)| self.net.route_to_point(origin, cx, cy))
            .map_or_else(
                |_| {
                    // Unroutable: fall back to the √N grid model, priced
                    // at the direct origin→holder edge per modeled hop.
                    let h = (self.net.len() as f64).sqrt().ceil() as u64;
                    (h, h * model.edge_cost(origin, holder))
                },
                |path| (path.len().saturating_sub(1) as u64, model.path_cost(&path)),
            );
        FetchCost { hops: hops + 1, latency: route_latency + response, messages: hops + 1 }
    }
}

impl DynamicScheme for DcfScheme {
    fn join(&mut self, rng: &mut SmallRng) -> Result<NodeId, SchemeError> {
        Ok(self.net.join(rng))
    }

    fn leave(&mut self, node: NodeId) -> Result<(), SchemeError> {
        self.net.leave(node).map_err(SchemeError::from)
    }

    fn crash(&mut self, node: NodeId) -> Result<(), SchemeError> {
        self.net.crash(node).map(|_lost| ()).map_err(SchemeError::from)
    }

    fn stabilize(&mut self) -> usize {
        // The tiling repairs itself synchronously on every event; only the
        // records crashes dropped need restoring.
        self.repair_records()
    }

    fn live_peers(&self) -> Vec<NodeId> {
        self.net.live_zones().collect()
    }
}

/// Registers `"dcf-can"` (directed controlled flooding) and
/// `"dcf-can-naive"` (plain flooding with receiver dedup).
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_single(
        "dcf-can",
        Box::new(|p, rng| Ok(Box::new(DcfScheme::build(p, FloodMode::Directed, rng)?))),
    );
    reg.register_single(
        "dcf-can-naive",
        Box::new(|p, rng| Ok(Box::new(DcfScheme::build(p, FloodMode::Naive, rng)?))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn dcf_scheme_is_exact_and_flags_modes() {
        let mut rng = simnet::rng_from_seed(900);
        let params = BuildParams::new(150, 0.0, 1000.0);
        let mut scheme = DcfScheme::build(&params, FloodMode::Directed, &mut rng).unwrap();
        assert_eq!(scheme.scheme_name(), "dcf-can");
        let mut data = Vec::new();
        for h in 0..300u64 {
            let v = rng.gen_range(0.0..=1000.0);
            scheme.publish(v, h).unwrap();
            data.push((v, h));
        }
        for q in 0..15 {
            let lo = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.5..100.0);
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query(origin, lo, hi, q).unwrap();
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
            assert!(out.exact);
        }
    }

    #[test]
    fn naive_mode_sends_at_least_as_many_messages() {
        let mut rng = simnet::rng_from_seed(901);
        let params = BuildParams::new(200, 0.0, 1000.0);
        let directed = DcfScheme::build(&params, FloodMode::Directed, &mut rng).unwrap();
        let mut rng = simnet::rng_from_seed(901);
        let naive = DcfScheme::build(&params, FloodMode::Naive, &mut rng).unwrap();
        assert_eq!(naive.scheme_name(), "dcf-can-naive");
        let mut qrng = simnet::rng_from_seed(9010);
        let mut d_total = 0u64;
        let mut n_total = 0u64;
        for q in 0..20 {
            let lo = qrng.gen_range(0.0..800.0);
            let origin = directed.random_origin(&mut qrng);
            d_total += directed.range_query(origin, lo, lo + 150.0, q).unwrap().messages;
            n_total += naive.range_query(origin, lo, lo + 150.0, q).unwrap().messages;
        }
        assert!(n_total >= d_total, "naive {n_total} < directed {d_total}");
    }

    #[test]
    fn dynamics_churn_then_stabilize_restores_exactness() {
        let mut rng = simnet::rng_from_seed(903);
        let params = BuildParams::new(120, 0.0, 1000.0);
        let mut scheme = DcfScheme::build(&params, FloodMode::Directed, &mut rng).unwrap();
        let mut data = Vec::new();
        for h in 0..250u64 {
            let v = rng.gen_range(0.0..=1000.0);
            scheme.publish(v, h).unwrap();
            data.push((v, h));
        }
        let dynamic = scheme.as_dynamic().expect("dcf-can is dynamic");
        for _ in 0..30 {
            dynamic.join(&mut rng).unwrap();
        }
        for _ in 0..20 {
            let live = dynamic.live_peers();
            dynamic.leave(live[live.len() / 2]).unwrap();
        }
        for _ in 0..15 {
            let live = dynamic.live_peers();
            dynamic.crash(live[live.len() / 3]).unwrap();
        }
        let repaired = dynamic.stabilize();
        assert!(repaired > 0, "crashes at this density should lose records");
        assert_eq!(dynamic.live_peers().len(), 115);
        scheme.net().check_invariants().unwrap();
        for q in 0..10 {
            let lo = rng.gen_range(0.0..800.0);
            let hi = lo + 150.0;
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query(origin, lo, hi, q).unwrap();
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "post-churn query [{lo}, {hi}]");
            assert!(out.exact);
        }
    }

    #[test]
    fn out_of_range_fault_plans_are_rejected_not_ignored() {
        // Regression: a plan crashing zone ≥ N used to be a silent no-op.
        let mut rng = simnet::rng_from_seed(904);
        let scheme =
            DcfScheme::build(&BuildParams::new(50, 0.0, 100.0), FloodMode::Directed, &mut rng)
                .unwrap();
        let mut faults = FaultPlan::new();
        faults.crash(scheme.node_count());
        let err = scheme.range_query_with_faults(0, 1.0, 2.0, 0, &faults).unwrap_err();
        assert!(matches!(err, SchemeError::FaultPlanOutOfRange { .. }), "{err}");
        // In-range plans still run.
        let mut ok = FaultPlan::new();
        ok.crash(scheme.node_count() - 1);
        assert!(scheme.range_query_with_faults(0, 1.0, 2.0, 0, &ok).is_ok());
    }

    #[test]
    fn trace_totals_reproduce_reported_costs() {
        // The accounting invariant across the route→flood local hand-off:
        // the walkback must telescope through the phase switch.
        let mut rng = simnet::rng_from_seed(905);
        let params = BuildParams::new(150, 0.0, 1000.0);
        let mut scheme = DcfScheme::build(&params, FloodMode::Directed, &mut rng).unwrap();
        for h in 0..200u64 {
            scheme.publish(rng.gen_range(0.0..=1000.0), h).unwrap();
        }
        assert!(scheme.supports_tracing());
        let faults = FaultPlan::with_drop_prob(0.1);
        for q in 0..15 {
            let lo = rng.gen_range(0.0..850.0);
            let hi = lo + rng.gen_range(0.5..120.0);
            let origin = scheme.random_origin(&mut rng);
            let plain = scheme.range_query(origin, lo, hi, q).unwrap();
            let (traced, trace) = scheme.trace_query(origin, lo, hi, q).unwrap();
            assert_eq!(plain, traced, "tracing perturbed query [{lo}, {hi}]");
            assert_eq!(
                trace.root.total(),
                (traced.delay, traced.latency, traced.messages),
                "explain tree must sum to the outcome: [{lo}, {hi}]\n{}",
                trace.explain_text()
            );
            // And under faults too.
            let plain_f = scheme.range_query_with_faults(origin, lo, hi, q, &faults).unwrap();
            let (traced_f, trace_f) =
                scheme.trace_query_with_faults(origin, lo, hi, q, &faults).unwrap();
            assert_eq!(plain_f, traced_f);
            assert_eq!(trace_f.root.total(), (traced_f.delay, traced_f.latency, traced_f.messages));
        }
    }

    #[test]
    fn errors_map_to_unified_error() {
        let mut rng = simnet::rng_from_seed(902);
        let scheme =
            DcfScheme::build(&BuildParams::new(30, 0.0, 10.0), FloodMode::Directed, &mut rng)
                .unwrap();
        assert!(matches!(scheme.range_query(0, 5.0, 1.0, 0), Err(SchemeError::EmptyRange { .. })));
        assert!(matches!(
            scheme.range_query(usize::MAX, 1.0, 2.0, 0),
            Err(SchemeError::BadOrigin { .. })
        ));
    }
}
