//! DCF range queries: route to the median, then flood the range's image
//! (Andrzejak & Xu's directed controlled flooding).
//!
//! A query `[lo, hi]` maps to the Hilbert-curve segment of its normalised
//! endpoints; the segment's aligned-block decomposition gives the square
//! footprint the flood must cover. The query first routes greedily to the
//! zone owning the **median** value, then spreads over every zone whose
//! rectangle intersects the footprint:
//!
//! * [`FloodMode::Directed`] — each message piggybacks the set of zones
//!   already informed along its branch, so a zone never forwards to a zone
//!   its branch has seen (the "controlled" part; residual duplicates across
//!   independent branches remain, as in the original).
//! * [`FloodMode::Naive`] — forward to every intersecting neighbor
//!   unconditionally; receivers dedup. The `ablation_flood` experiment
//!   quantifies the difference.
//!
//! Delay = median-routing hops + flood eccentricity. Both grow with `√N`,
//! and the second also grows with the queried range — the behaviour the
//! Armada paper's Figures 5 and 7 contrast with PIRA.

use crate::{CanError, CanNet, Rect};
use simnet::{Envelope, FaultPlan, NetModel, NodeId, QueryScratch, Sim, SimScratch};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Duplicate-suppression strategy for the flooding phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodMode {
    /// Directed controlled flooding: piggyback informed sets.
    Directed,
    /// Plain flooding with receiver-side dedup only.
    Naive,
}

/// Result of a DCF range query.
#[derive(Debug, Clone, PartialEq)]
pub struct DcfOutcome {
    /// Handles of records whose value lies in the queried range, ascending.
    pub results: Vec<u64>,
    /// Max hop depth among destination-zone deliveries (routing + flood).
    pub delay: u32,
    /// Critical-path virtual milliseconds under the query's [`NetModel`]:
    /// the largest, over destination zones, of the cheapest accumulated
    /// edge cost among the messages reaching that zone. Equals `delay`
    /// under the `unit` model.
    pub latency: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Ground-truth destination zone count.
    pub dest_zones: usize,
    /// Destination zones that answered.
    pub reached_zones: usize,
    /// Whether every ground-truth zone answered.
    pub exact: bool,
}

#[derive(Debug, Clone)]
enum DcfMsg {
    /// Greedy routing toward the median point.
    Route,
    /// Flooding phase; `informed` = zones this branch already covered.
    /// Shared by reference across a hop's fan-out, so forwarding clones a
    /// refcount instead of the whole set.
    Flood { informed: Arc<Vec<NodeId>> },
}

/// DCF's reusable per-thread state, slotted into a [`QueryScratch`]. Every
/// field is reset at query start, so reuse is invisible to results,
/// metrics, and traces.
#[derive(Default)]
struct DcfScratch {
    sim: SimScratch<DcfMsg>,
    arrivals: Vec<(NodeId, u64)>,
    boxes: Vec<Rect>,
    targets: Vec<NodeId>,
}

/// Executes a DCF range query from `origin` over `[lo, hi]`.
///
/// # Errors
///
/// Returns [`CanError::EmptyRange`] if `lo > hi` and
/// [`CanError::NoSuchZone`] for dead origins.
pub fn range_query(
    net: &CanNet,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    mode: FloodMode,
) -> Result<DcfOutcome, CanError> {
    range_query_priced(net, origin, lo, hi, seed, mode, &FaultPlan::new(), &NetModel::unit())
}

/// [`range_query`] under a fault plan (message drops / crashed zones).
///
/// # Errors
///
/// Same conditions as [`range_query`].
pub fn range_query_with_faults(
    net: &CanNet,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    mode: FloodMode,
    faults: &FaultPlan,
) -> Result<DcfOutcome, CanError> {
    range_query_priced(net, origin, lo, hi, seed, mode, faults, &NetModel::unit())
}

/// The full-surface query: fault plan plus network cost model. Hop
/// metrics, message counts, and result sets are model-invariant (the cost
/// layer never perturbs event scheduling); only [`DcfOutcome::latency`]
/// moves with the model.
///
/// # Errors
///
/// Same conditions as [`range_query`].
#[allow(clippy::too_many_arguments)]
pub fn range_query_priced(
    net: &CanNet,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    mode: FloodMode,
    faults: &FaultPlan,
    model: &NetModel,
) -> Result<DcfOutcome, CanError> {
    let mut scratch = QueryScratch::new();
    range_query_priced_scratch(net, origin, lo, hi, seed, mode, faults, model, &mut scratch)
}

/// [`range_query_priced`] with a caller-owned scratch: batch drivers pass
/// one [`QueryScratch`] per worker thread so the simulator queues and flood
/// buffers are allocated once, not per query. Outcomes are bit-identical to
/// the scratch-free path.
///
/// # Errors
///
/// Same conditions as [`range_query`].
#[allow(clippy::too_many_arguments)]
pub fn range_query_priced_scratch(
    net: &CanNet,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    mode: FloodMode,
    faults: &FaultPlan,
    model: &NetModel,
    scratch: &mut QueryScratch,
) -> Result<DcfOutcome, CanError> {
    let (out, _) = query_impl(net, origin, lo, hi, seed, mode, faults, model, false, scratch)?;
    Ok(out)
}

/// [`range_query_priced`] with the simulator's trace sink attached: the
/// identical outcome plus the full virtual-time event stream — routing
/// hops, the route→flood local hand-off, flood hops, fault verdicts, and
/// one answer event per qualifying zone delivery. Tracing observes the
/// schedule; it never perturbs it.
///
/// # Errors
///
/// Same conditions as [`range_query`].
#[allow(clippy::too_many_arguments)]
pub fn range_query_traced(
    net: &CanNet,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    mode: FloodMode,
    faults: &FaultPlan,
    model: &NetModel,
) -> Result<(DcfOutcome, Vec<simnet::TraceRecord>), CanError> {
    let mut scratch = QueryScratch::new();
    let (out, records) =
        query_impl(net, origin, lo, hi, seed, mode, faults, model, true, &mut scratch)?;
    Ok((out, records.unwrap_or_default()))
}

#[allow(clippy::too_many_arguments)]
fn query_impl(
    net: &CanNet,
    origin: NodeId,
    lo: f64,
    hi: f64,
    seed: u64,
    mode: FloodMode,
    faults: &FaultPlan,
    model: &NetModel,
    trace: bool,
    scratch: &mut QueryScratch,
) -> Result<(DcfOutcome, Option<Vec<simnet::TraceRecord>>), CanError> {
    if lo > hi {
        return Err(CanError::EmptyRange { lo, hi });
    }
    net.zone(origin)?;
    let order = net.config().hilbert_order;

    let DcfScratch { sim: sim_scratch, arrivals, boxes, targets } = scratch.slot::<DcfScratch>();

    // The query's image: curve cells of the normalised range, decomposed
    // into aligned squares.
    let ta = crate::hilbert::cell_of(order, net.normalize(lo));
    let tb = crate::hilbert::cell_of(order, net.normalize(hi));
    boxes.clear();
    boxes.extend(
        crate::hilbert::interval_blocks(order, ta, tb)
            .into_iter()
            .map(|b| b.to_unit_rect(order)),
    );
    let boxes: &[Rect] = boxes;
    let hits = |zone: NodeId| -> bool {
        let r = net.zone(zone).expect("live zone").rect();
        boxes.iter().any(|b| r.intersects(b))
    };

    // Ground truth.
    let truth: BTreeSet<NodeId> = net.live_zones().filter(|&z| hits(z)).collect();

    // Median target point.
    let (mx, my) = net.point_of_value((lo + hi) / 2.0);

    let mut sim: Sim<DcfMsg> =
        Sim::from_scratch(seed, sim_scratch).with_faults_ref(faults).with_net(*model);
    if trace {
        sim = sim.with_trace(simnet::TraceSink::new());
    }
    sim.send(origin, origin, 0, DcfMsg::Route);

    let mut answered: BTreeSet<NodeId> = BTreeSet::new();
    // Flat arrival log reduced by a sorted post-pass (min cost per zone,
    // max over zones — order-independent, since scheduling stays on unit
    // ticks and the cost model rides along in the envelopes).
    arrivals.clear();
    let mut results: BTreeSet<u64> = BTreeSet::new();
    let mut delay: u32 = 0;
    // Naive floods carry an empty informed set: one shared allocation per
    // query, refcount-cloned into every forward.
    let empty_informed: Arc<Vec<NodeId>> = Arc::new(Vec::new());
    sim.run(|sim, env: Envelope<DcfMsg>| {
        let node = env.to;
        match &env.payload {
            DcfMsg::Route => {
                let rect = net.zone(node).expect("live").rect();
                if rect.torus_dist2(mx, my) > 0.0 {
                    // Continue greedy routing.
                    let next = net
                        .neighbors(node)
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let da = net.zone(a).expect("live").rect().torus_dist2(mx, my);
                            let db = net.zone(b).expect("live").rect().torus_dist2(mx, my);
                            da.partial_cmp(&db).expect("finite")
                        })
                        .expect("zones have neighbors");
                    sim.forward(&env, next, DcfMsg::Route);
                } else {
                    // Arrived at the median zone: switch to flooding by
                    // re-delivering locally as a flood message (carrying
                    // the routing phase's accumulated cost).
                    let informed = Arc::new(vec![node]);
                    sim.send_with_cost(node, node, env.hop, env.cost, DcfMsg::Flood { informed });
                }
            }
            DcfMsg::Flood { informed } => {
                if !hits(node) {
                    return;
                }
                arrivals.push((node, env.cost));
                sim.trace_answer(&env);
                let first_visit = answered.insert(node);
                if first_visit {
                    delay = delay.max(env.hop);
                    for &(v, h) in net.zone(node).expect("live").records() {
                        if v >= lo && v <= hi {
                            results.insert(h);
                        }
                    }
                } else if mode == FloodMode::Naive {
                    // Receiver-side dedup: do not re-forward.
                    return;
                } else if mode == FloodMode::Directed && !first_visit {
                    return;
                }
                targets.clear();
                targets.extend(
                    net.neighbors(node).iter().copied().filter(|&n| hits(n)).filter(|n| {
                        match mode {
                            FloodMode::Directed => !informed.contains(n),
                            FloodMode::Naive => true,
                        }
                    }),
                );
                let new_informed: Arc<Vec<NodeId>> = match mode {
                    FloodMode::Directed => {
                        let mut v = Vec::with_capacity(informed.len() + targets.len());
                        v.extend_from_slice(informed);
                        v.extend(targets.iter());
                        v.sort_unstable();
                        v.dedup();
                        Arc::new(v)
                    }
                    FloodMode::Naive => Arc::clone(&empty_informed),
                };
                for &t in targets.iter() {
                    sim.forward(&env, t, DcfMsg::Flood { informed: Arc::clone(&new_informed) });
                }
            }
        }
    });

    let reached = answered.len();
    let exact = answered == truth;
    let latency = simnet::last_first_arrival(arrivals);
    let records = sim.take_trace().map(simnet::TraceSink::into_records);
    let messages = sim.stats().messages_sent;
    sim.recycle(sim_scratch);
    Ok((
        DcfOutcome {
            results: results.into_iter().collect(),
            delay,
            latency,
            messages,
            dest_zones: truth.len(),
            reached_zones: reached,
            exact,
        },
        records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CanConfig;
    use rand::Rng;

    fn build(n: usize, records: usize, seed: u64) -> CanNet {
        let mut rng = simnet::rng_from_seed(seed);
        let mut net = CanNet::build(CanConfig::default(), n, &mut rng).unwrap();
        for h in 0..records as u64 {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            net.publish(v, h);
        }
        net
    }

    #[test]
    fn dcf_is_exact_on_random_queries() {
        let net = build(200, 300, 91);
        let mut rng = simnet::rng_from_seed(910);
        for q in 0..50 {
            let lo: f64 = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.1..100.0);
            let origin = net.random_zone(&mut rng);
            let out = range_query(&net, origin, lo, hi, q, FloodMode::Directed).unwrap();
            assert!(out.exact, "query [{lo}, {hi}] missed zones");
            // Result set matches a direct scan.
            let mut expect: Vec<u64> = net
                .live_zones()
                .flat_map(|z| net.zone(z).unwrap().records().to_vec())
                .filter(|&(v, _)| v >= lo && v <= hi)
                .map(|(_, h)| h)
                .collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
        }
    }

    #[test]
    fn naive_flood_is_also_exact_but_costlier() {
        let net = build(300, 100, 92);
        let mut rng = simnet::rng_from_seed(920);
        let mut directed_total = 0u64;
        let mut naive_total = 0u64;
        for q in 0..30 {
            let lo: f64 = rng.gen_range(0.0..800.0);
            let hi = lo + 150.0;
            let origin = net.random_zone(&mut rng);
            let d = range_query(&net, origin, lo, hi, q, FloodMode::Directed).unwrap();
            let n = range_query(&net, origin, lo, hi, q, FloodMode::Naive).unwrap();
            assert!(d.exact && n.exact);
            assert_eq!(d.results, n.results);
            directed_total += d.messages;
            naive_total += n.messages;
        }
        assert!(
            naive_total > directed_total,
            "naive {naive_total} should exceed directed {directed_total}"
        );
    }

    #[test]
    fn dcf_delay_grows_with_range_size() {
        // The contrast with PIRA: bigger ranges flood farther.
        let net = build(2000, 0, 93);
        let mut rng = simnet::rng_from_seed(930);
        let avg_delay = |size: f64, rng: &mut rand::rngs::SmallRng| {
            let mut total = 0u64;
            let queries = 40;
            for q in 0..queries {
                let lo = rng.gen_range(0.0..(1000.0 - size));
                let origin = net.random_zone(rng);
                let out = range_query(&net, origin, lo, lo + size, q, FloodMode::Directed).unwrap();
                total += u64::from(out.delay);
            }
            total as f64 / queries as f64
        };
        let small = avg_delay(2.0, &mut rng);
        let large = avg_delay(300.0, &mut rng);
        assert!(large > small + 5.0, "delay must grow with range: small {small}, large {large}");
    }

    #[test]
    fn dcf_point_query_is_a_pure_routing() {
        let net = build(150, 50, 94);
        let mut rng = simnet::rng_from_seed(940);
        let origin = net.random_zone(&mut rng);
        let out = range_query(&net, origin, 500.0, 500.0, 1, FloodMode::Directed).unwrap();
        assert_eq!(out.dest_zones, 1);
        assert!(out.exact);
    }

    #[test]
    fn dcf_rejects_empty_range() {
        let net = build(10, 0, 95);
        assert!(matches!(
            range_query(&net, 0, 5.0, 1.0, 1, FloodMode::Directed),
            Err(CanError::EmptyRange { .. })
        ));
    }

    #[test]
    fn dcf_message_cost_comparable_to_destinations() {
        let net = build(500, 0, 96);
        let mut rng = simnet::rng_from_seed(960);
        for q in 0..30 {
            let lo: f64 = rng.gen_range(0.0..700.0);
            let origin = net.random_zone(&mut rng);
            let out = range_query(&net, origin, lo, lo + 200.0, q, FloodMode::Directed).unwrap();
            // Messages ≥ routing + (reached − 1); bounded by a small factor
            // of the destination count plus the routing path.
            assert!(out.messages as usize >= out.dest_zones.saturating_sub(1));
            assert!(
                (out.messages as f64) < 6.0 * out.dest_zones as f64 + 120.0,
                "messages {} for {} zones",
                out.messages,
                out.dest_zones
            );
        }
    }
}
