//! CAN (Content-Addressable Network) with Hilbert-curve interval mapping and
//! DCF (directed controlled flooding) range queries — the baseline of
//! Andrzejak & Xu, *"Scalable, Efficient Range Queries for Grid Information
//! Services"* (IEEE P2P 2002), which the Armada paper compares against
//! ("DCF-CAN", §4.3.3).
//!
//! # Model
//!
//! * [`CanNet`] — a 2-d unit torus tiled by rectangular zones, one per peer
//!   (degree ≈ 2d = 4, matching the paper's "average degree of the
//!   underlying DHT is 4"). Joins split the owner of a random point along
//!   its longer side; routing is greedy by torus distance.
//! * [`hilbert`] — a Hilbert space-filling curve maps the attribute interval
//!   `[L, H]` onto the square, so a value range becomes a curve segment
//!   whose aligned-block decomposition is a handful of squares.
//! * [`dcf`] — a range query routes to the zone owning the range's
//!   **median** value, then floods outward over zones intersecting the
//!   range's image. *Directed controlled* flooding suppresses duplicates by
//!   piggybacking the already-informed set; a naive flood exists for the
//!   `ablation_flood` experiment.
//!
//! The baseline's delay grows with both the queried range and `N^(1/d)` —
//! the behaviour Figures 5 and 7 of the Armada paper contrast against
//! PIRA's bounded delay.
//!
//! # Example
//!
//! ```
//! use dht_can::{CanConfig, CanNet, dcf};
//!
//! let mut rng = simnet::rng_from_seed(5);
//! let mut net = CanNet::build(CanConfig::default(), 100, &mut rng)?;
//! net.publish(42.0, 1);
//! net.publish(55.0, 2);
//! net.publish(90.0, 3);
//! let origin = net.random_zone(&mut rng);
//! let out = dcf::range_query(&net, origin, 40.0, 60.0, 9, dcf::FloodMode::Directed)?;
//! assert!(out.exact);
//! assert_eq!(out.results, vec![1, 2]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod can;
pub mod dcf;
pub mod hilbert;
pub mod scheme;

pub use can::{CanConfig, CanNet, Rect, Zone};
pub use scheme::{register, DcfScheme};

/// Errors returned by CAN operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CanError {
    /// The referenced zone does not exist.
    NoSuchZone {
        /// The offending zone id.
        zone: simnet::NodeId,
    },
    /// A query range was empty (`lo > hi`).
    EmptyRange {
        /// Supplied lower bound.
        lo: f64,
        /// Supplied upper bound.
        hi: f64,
    },
    /// Greedy routing made no progress (cannot happen on a well-formed
    /// tiling; reported rather than looping).
    RoutingStuck,
    /// A departure would empty the network (the last zone cannot leave).
    TooSmall,
}

impl std::fmt::Display for CanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanError::NoSuchZone { zone } => write!(f, "no zone with id {zone}"),
            CanError::EmptyRange { lo, hi } => write!(f, "empty range [{lo}, {hi}]"),
            CanError::RoutingStuck => write!(f, "greedy routing made no progress"),
            CanError::TooSmall => write!(f, "the last zone cannot leave the network"),
        }
    }
}

impl std::error::Error for CanError {}
