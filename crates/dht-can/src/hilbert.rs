//! Hilbert space-filling curve utilities.
//!
//! The Andrzejak–Xu scheme maps the attribute interval onto the CAN square
//! with a Hilbert curve so that value ranges become compact sets of zones.
//! This module provides the discrete curve (`d2xy`/`xy2d`) plus the
//! *aligned-block decomposition*: any curve interval splits into `O(order)`
//! blocks of `4^j` consecutive cells, each of which occupies an axis-aligned
//! `2^j × 2^j` square — the geometric footprint a range query floods.

/// A square of cells: origin `(x, y)` and side length, all in cell units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSquare {
    /// Cell-grid x of the square's lower corner.
    pub x: u64,
    /// Cell-grid y of the square's lower corner.
    pub y: u64,
    /// Side length in cells (a power of two).
    pub side: u64,
}

impl CellSquare {
    /// The square as a unit-space rectangle `[x0,x1) × [y0,y1)` for a curve
    /// of the given order.
    pub fn to_unit_rect(self, order: u32) -> crate::Rect {
        let n = (1u64 << order) as f64;
        crate::Rect {
            x0: self.x as f64 / n,
            x1: (self.x + self.side) as f64 / n,
            y0: self.y as f64 / n,
            y1: (self.y + self.side) as f64 / n,
        }
    }
}

/// Converts a curve position `d ∈ [0, 4^order)` to cell coordinates.
///
/// Standard iterative Hilbert decode (rotate-and-flip per level).
pub fn d2xy(order: u32, d: u64) -> (u64, u64) {
    debug_assert!(d < 1u64 << (2 * order), "curve position out of range");
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < (1u64 << order) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Converts cell coordinates to the curve position (inverse of [`d2xy`]).
pub fn xy2d(order: u32, mut x: u64, mut y: u64) -> u64 {
    debug_assert!(x < 1u64 << order && y < 1u64 << order);
    let n = 1u64 << order;
    let mut d = 0u64;
    let mut s = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate within the *full* grid (unlike d2xy, which rotates within
        // the current sub-square).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// The curve cell containing the normalised value `t ∈ [0, 1]`.
pub fn cell_of(order: u32, t: f64) -> u64 {
    let cells = 1u64 << (2 * order);
    let idx = (t.clamp(0.0, 1.0) * cells as f64) as u64;
    idx.min(cells - 1)
}

/// The unit-space centre point of a curve cell.
pub fn point_of_cell(order: u32, d: u64) -> (f64, f64) {
    let (x, y) = d2xy(order, d);
    let n = (1u64 << order) as f64;
    ((x as f64 + 0.5) / n, (y as f64 + 0.5) / n)
}

/// Decomposes the inclusive cell interval `[a, b]` into aligned blocks, each
/// an axis-aligned square (Hilbert curve property: a `4^j`-aligned run of
/// `4^j` cells fills a `2^j × 2^j` square).
///
/// Returns `O(order)` squares covering exactly the interval's cells.
///
/// # Panics
///
/// Panics if `a > b` or `b` exceeds the curve length.
pub fn interval_blocks(order: u32, a: u64, b: u64) -> Vec<CellSquare> {
    assert!(a <= b, "empty interval");
    assert!(b < 1u64 << (2 * order), "interval beyond curve");
    let mut out = Vec::new();
    let mut h = a;
    loop {
        // Largest aligned block starting at h that fits within [h, b].
        let mut j = 0u32;
        loop {
            let next = 1u64 << (2 * (j + 1)); // 4^(j+1)
            if j < order && h.is_multiple_of(next) && b - h + 1 >= next {
                j += 1;
            } else {
                break;
            }
        }
        let size = 1u64 << (2 * j);
        let side = 1u64 << j;
        let (cx, cy) = d2xy(order, h);
        out.push(CellSquare { x: cx & !(side - 1), y: cy & !(side - 1), side });
        if b - h < size {
            break;
        }
        h += size;
        if h > b {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2xy_roundtrips() {
        for order in [1u32, 2, 3, 6] {
            for d in 0..(1u64 << (2 * order)) {
                let (x, y) = d2xy(order, d);
                assert_eq!(xy2d(order, x, y), d, "order {order} d {d}");
            }
        }
    }

    #[test]
    fn consecutive_cells_are_grid_adjacent() {
        // The defining property of the Hilbert curve.
        let order = 5;
        let (mut px, mut py) = d2xy(order, 0);
        for d in 1..(1u64 << (2 * order)) {
            let (x, y) = d2xy(order, d);
            let manhattan = px.abs_diff(x) + py.abs_diff(y);
            assert_eq!(manhattan, 1, "jump at d = {d}");
            (px, py) = (x, y);
        }
    }

    #[test]
    fn order_1_is_the_canonical_u() {
        // d: 0,1,2,3 → (0,0),(0,1),(1,1),(1,0).
        assert_eq!(d2xy(1, 0), (0, 0));
        assert_eq!(d2xy(1, 1), (0, 1));
        assert_eq!(d2xy(1, 2), (1, 1));
        assert_eq!(d2xy(1, 3), (1, 0));
    }

    #[test]
    fn cell_of_clamps_and_scales() {
        let order = 10;
        assert_eq!(cell_of(order, 0.0), 0);
        assert_eq!(cell_of(order, 1.0), (1u64 << 20) - 1);
        assert_eq!(cell_of(order, -3.0), 0);
        let mid = cell_of(order, 0.5);
        assert_eq!(mid, 1u64 << 19);
    }

    #[test]
    fn blocks_cover_interval_exactly() {
        let order = 4; // 256 cells
        for (a, b) in [(0u64, 255u64), (3, 17), (64, 127), (100, 100), (5, 250)] {
            let blocks = interval_blocks(order, a, b);
            // Collect all cells covered by the squares.
            let mut covered = std::collections::BTreeSet::new();
            for blk in &blocks {
                for x in blk.x..blk.x + blk.side {
                    for y in blk.y..blk.y + blk.side {
                        covered.insert(xy2d(order, x, y));
                    }
                }
            }
            let expect: std::collections::BTreeSet<u64> = (a..=b).collect();
            assert_eq!(covered, expect, "interval [{a}, {b}]");
        }
    }

    #[test]
    fn block_count_is_logarithmic() {
        let order = 16;
        let total = 1u64 << (2 * order);
        let blocks = interval_blocks(order, 1, total - 2);
        // Greedy base-4 alignment yields at most 3 blocks per level on each
        // flank of the interval.
        assert!(blocks.len() <= 6 * order as usize, "{} blocks", blocks.len());
    }

    #[test]
    fn point_of_cell_is_inside_unit_square() {
        let order = 8;
        for d in (0..(1u64 << 16)).step_by(997) {
            let (x, y) = point_of_cell(order, d);
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }
}
