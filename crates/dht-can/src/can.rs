//! The CAN torus: zones, joins, departures, adjacency, greedy routing,
//! storage.
//!
//! Zone ids are **stable**: a zone keeps its id for its lifetime, departures
//! free the slot, and later joins may recycle it — the same slot discipline
//! `fissione` uses, so churn plans and drivers can hold `NodeId`s across
//! membership events on either substrate.

use crate::CanError;
use rand::rngs::SmallRng;
use rand::Rng;
use simnet::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// An axis-aligned half-open rectangle `[x0,x1) × [y0,y1)` in the unit
/// square. All coordinates are dyadic (produced by midpoint splits), so
/// `f64` arithmetic on them is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: f64,
    /// Right edge (exclusive).
    pub x1: f64,
    /// Bottom edge (inclusive).
    pub y0: f64,
    /// Top edge (exclusive).
    pub y1: f64,
}

impl Rect {
    /// The unit square.
    pub const UNIT: Rect = Rect { x0: 0.0, x1: 1.0, y0: 0.0, y1: 1.0 };

    /// Whether a point lies inside (half-open edges).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Whether two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Squared torus distance from a point to this rectangle.
    pub fn torus_dist2(&self, x: f64, y: f64) -> f64 {
        let dx = axis_dist(x, self.x0, self.x1);
        let dy = axis_dist(y, self.y0, self.y1);
        dx * dx + dy * dy
    }

    /// Width × height.
    pub fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }
}

/// Circular distance from coordinate `p` to the interval `[lo, hi)` on the
/// unit torus.
fn axis_dist(p: f64, lo: f64, hi: f64) -> f64 {
    if p >= lo && p < hi {
        return 0.0;
    }
    let to_lo = circ_dist(p, lo);
    let to_hi = circ_dist(p, hi);
    to_lo.min(to_hi)
}

/// Circular distance between two coordinates on the unit torus.
fn circ_dist(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// Whether intervals `[a0,a1)` and `[b0,b1)` abut on the unit circle
/// (share an endpoint, including the 1.0 ≡ 0.0 wrap).
fn abuts(a0: f64, a1: f64, b0: f64, b1: f64) -> bool {
    let eq = |u: f64, v: f64| u == v || (u == 1.0 && v == 0.0) || (u == 0.0 && v == 1.0);
    eq(a1, b0) || eq(b1, a0)
}

/// Whether intervals overlap with positive length (no wrap: zone edges
/// never wrap because zones subdivide the unit square).
fn overlaps(a0: f64, a1: f64, b0: f64, b1: f64) -> bool {
    a0 < b1 && b0 < a1
}

/// One CAN zone: its rectangle and locally stored records.
#[derive(Debug, Clone)]
pub struct Zone {
    rect: Rect,
    /// `(value, handle)` records whose curve point falls in this zone.
    records: Vec<(f64, u64)>,
}

impl Zone {
    /// The zone's rectangle.
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// Records stored at this zone.
    pub fn records(&self) -> &[(f64, u64)] {
        &self.records
    }
}

/// Configuration of a CAN network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanConfig {
    /// Hilbert curve order: the attribute interval is mapped onto a
    /// `2^order × 2^order` cell grid. 20 gives ~10⁻¹² value resolution.
    pub hilbert_order: u32,
    /// Attribute domain lower bound.
    pub domain_lo: f64,
    /// Attribute domain upper bound.
    pub domain_hi: f64,
}

impl Default for CanConfig {
    fn default() -> Self {
        CanConfig { hilbert_order: 20, domain_lo: 0.0, domain_hi: 1000.0 }
    }
}

/// One node of the split tree: the BSP history of midpoint splits. Leaves
/// carry live zones; internal nodes remember the rectangle a future merge
/// restores. This is what makes departures always possible while keeping
/// every peer's region a rectangle: a deepest internal node's children are
/// both leaves, so *some* sibling pair can always merge back into its
/// parent (FISSIONE's donor discipline, transplanted to rectangles).
#[derive(Debug, Clone)]
struct SplitNode {
    rect: Rect,
    depth: usize,
    parent: Option<usize>,
    /// Child tree-node indices after a split; `None` for leaves.
    kids: Option<(usize, usize)>,
    /// The live zone occupying this leaf; `None` for internal nodes.
    zone: Option<NodeId>,
}

/// A 2-d CAN whose zones tile the unit torus, with the attribute interval
/// mapped in by a Hilbert curve (the Andrzejak–Xu substrate).
#[derive(Debug, Clone)]
pub struct CanNet {
    cfg: CanConfig,
    /// Slot table: `None` marks a departed zone whose slot may be recycled.
    zones: Vec<Option<Zone>>,
    neighbors: Vec<Vec<NodeId>>,
    live: usize,
    /// The split tree; `node_of[slot]` is the leaf a live zone occupies.
    tree: Vec<SplitNode>,
    free_nodes: Vec<usize>,
    node_of: Vec<usize>,
    /// Free zone slots as a min-heap: allocation recycles the lowest free
    /// index, matching the slot-scan discipline without the O(N) scan.
    free_slots: BinaryHeap<Reverse<usize>>,
    /// Internal tree nodes whose children are both leaves, keyed by
    /// `(child depth, Reverse(node index))` so the deepest pair with the
    /// lowest parent index is the last element — the merge candidate
    /// [`deepest_leaf_pair`](Self::deepest_leaf_pair) used to find by a
    /// full scan.
    merge_pairs: BTreeSet<(usize, Reverse<usize>)>,
}

impl CanNet {
    /// Creates a single-zone network owning the whole square.
    pub fn new(cfg: CanConfig) -> Self {
        CanNet {
            cfg,
            zones: vec![Some(Zone { rect: Rect::UNIT, records: Vec::new() })],
            neighbors: vec![Vec::new()],
            live: 1,
            tree: vec![SplitNode {
                rect: Rect::UNIT,
                depth: 0,
                parent: None,
                kids: None,
                zone: Some(0),
            }],
            free_nodes: Vec::new(),
            node_of: vec![0],
            free_slots: BinaryHeap::new(),
            merge_pairs: BTreeSet::new(),
        }
    }

    /// Builds an `n`-zone network by `n − 1` random joins.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::EmptyRange`] if the configured domain is empty.
    pub fn build(cfg: CanConfig, n: usize, rng: &mut SmallRng) -> Result<Self, CanError> {
        if cfg.domain_lo.partial_cmp(&cfg.domain_hi) != Some(std::cmp::Ordering::Less) {
            return Err(CanError::EmptyRange { lo: cfg.domain_lo, hi: cfg.domain_hi });
        }
        let mut net = CanNet::new(cfg);
        while net.len() < n {
            net.join(rng);
        }
        Ok(net)
    }

    /// The configuration.
    pub fn config(&self) -> &CanConfig {
        &self.cfg
    }

    /// Number of live zones (= peers).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Always false (a CAN has at least one zone).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `id` refers to a live zone.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.zones.get(id).is_some_and(Option::is_some)
    }

    /// Live zone ids in ascending slot order (a deterministic order churn
    /// plans rely on for victim selection).
    pub fn live_zones(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.zones.iter().enumerate().filter_map(|(i, z)| z.as_ref().map(|_| i))
    }

    /// The zone behind an id.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::NoSuchZone`] for dead or unknown ids.
    pub fn zone(&self, id: NodeId) -> Result<&Zone, CanError> {
        self.zones.get(id).and_then(Option::as_ref).ok_or(CanError::NoSuchZone { zone: id })
    }

    /// Neighbor zones (abutting on the torus); empty for dead ids.
    ///
    /// # Panics
    ///
    /// Panics for ids that never existed.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id]
    }

    /// A uniformly random live zone id.
    pub fn random_zone(&self, rng: &mut SmallRng) -> NodeId {
        loop {
            let i = rng.gen_range(0..self.zones.len());
            if self.zones[i].is_some() {
                return i;
            }
        }
    }

    /// The zone owning a point.
    pub fn owner_of_point(&self, x: f64, y: f64) -> NodeId {
        // Descend the split tree: a node's children exactly partition its
        // rectangle (midpoint splits on dyadic edges), so containment picks
        // a unique child and the leaf reached is the unique live owner the
        // old linear scan found.
        assert!(self.tree[0].rect.contains(x, y), "zones tile the unit square");
        let mut node = 0;
        while let Some((a, b)) = self.tree[node].kids {
            node = if self.tree[a].rect.contains(x, y) { a } else { b };
        }
        self.tree[node].zone.expect("leaves carry live zones")
    }

    /// The `r` distinct zones that should hold copies of `value`'s record:
    /// the owning zone plus its nearest neighbors, breadth-first over the
    /// adjacency lists — the CAN close group over rectangles. Deterministic
    /// in `(value, r, tiling)`, local table reads only, primary first.
    pub fn replica_owners(&self, value: f64, r: usize) -> Vec<NodeId> {
        let (x, y) = self.point_of_value(value);
        let primary = self.owner_of_point(x, y);
        let want = r.max(1).min(self.len());
        let mut owners = vec![primary];
        let mut frontier = vec![primary];
        while owners.len() < want && !frontier.is_empty() {
            let mut next = Vec::new();
            for &zone in &frontier {
                for &neighbor in self.neighbors(zone) {
                    if owners.len() >= want {
                        break;
                    }
                    if !owners.contains(&neighbor) {
                        owners.push(neighbor);
                        next.push(neighbor);
                    }
                }
            }
            frontier = next;
        }
        owners
    }

    /// Normalises an attribute value to curve parameter `t ∈ [0, 1]`.
    pub fn normalize(&self, value: f64) -> f64 {
        ((value - self.cfg.domain_lo) / (self.cfg.domain_hi - self.cfg.domain_lo)).clamp(0.0, 1.0)
    }

    /// The unit-square point assigned to an attribute value.
    pub fn point_of_value(&self, value: f64) -> (f64, f64) {
        let cell = crate::hilbert::cell_of(self.cfg.hilbert_order, self.normalize(value));
        crate::hilbert::point_of_cell(self.cfg.hilbert_order, cell)
    }

    /// A new peer joins: picks a random point, splits its owner's zone along
    /// the longer side; the newcomer takes the half containing the point.
    /// Returns the newcomer's id.
    pub fn join(&mut self, rng: &mut SmallRng) -> NodeId {
        let (px, py) = (rng.gen::<f64>(), rng.gen::<f64>());
        let owner = self.owner_of_point(px, py);
        self.split_zone(owner, px, py)
    }

    /// Splits `owner` at the midpoint of its longer side; the new zone is
    /// the half containing `(px, py)` and takes the records falling in it.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is not live.
    pub fn split_zone(&mut self, owner: NodeId, px: f64, py: f64) -> NodeId {
        let rect = self.zones[owner].as_ref().expect("live owner").rect;
        let vertical = (rect.x1 - rect.x0) >= (rect.y1 - rect.y0);
        let (keep, give) = if vertical {
            let mid = (rect.x0 + rect.x1) / 2.0;
            let left = Rect { x1: mid, ..rect };
            let right = Rect { x0: mid, ..rect };
            if right.contains(px, py) {
                (left, right)
            } else {
                (right, left)
            }
        } else {
            let mid = (rect.y0 + rect.y1) / 2.0;
            let bottom = Rect { y1: mid, ..rect };
            let top = Rect { y0: mid, ..rect };
            if top.contains(px, py) {
                (bottom, top)
            } else {
                (top, bottom)
            }
        };

        // Repartition records.
        let order = self.cfg.hilbert_order;
        let (lo, hi) = (self.cfg.domain_lo, self.cfg.domain_hi);
        let point = |value: f64| {
            let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
            crate::hilbert::point_of_cell(order, crate::hilbert::cell_of(order, t))
        };
        let owner_zone = self.zones[owner].as_mut().expect("live owner");
        let old_records = std::mem::take(&mut owner_zone.records);
        let (kept, given): (Vec<_>, Vec<_>) = old_records.into_iter().partition(|&(v, _)| {
            let (x, y) = point(v);
            keep.contains(x, y)
        });
        owner_zone.rect = keep;
        owner_zone.records = kept;
        let newcomer = self.alloc_slot(Zone { rect: give, records: given });

        // Record the split in the tree: the owner's leaf becomes internal
        // with one child leaf per half.
        let parent = self.node_of[owner];
        let depth = self.tree[parent].depth + 1;
        let keep_node = self.alloc_node(SplitNode {
            rect: keep,
            depth,
            parent: Some(parent),
            kids: None,
            zone: Some(owner),
        });
        let give_node = self.alloc_node(SplitNode {
            rect: give,
            depth,
            parent: Some(parent),
            kids: None,
            zone: Some(newcomer),
        });
        self.tree[parent].kids = Some((keep_node, give_node));
        self.tree[parent].zone = None;
        self.node_of[owner] = keep_node;
        self.node_of[newcomer] = give_node;
        self.refresh_merge_pair(parent);
        if let Some(grand) = self.tree[parent].parent {
            self.refresh_merge_pair(grand);
        }

        // Recompute adjacency: candidates are the old neighbor set plus the
        // sibling pair itself.
        let mut candidates = std::mem::take(&mut self.neighbors[owner]);
        candidates.push(newcomer);
        // Drop stale back-references; they are rebuilt below.
        for &c in &candidates {
            self.neighbors[c].retain(|&n| n != owner);
        }
        for &c in &candidates {
            if c != owner && self.adjacent(owner, c) {
                self.neighbors[owner].push(c);
                self.neighbors[c].push(owner);
            }
            if c != newcomer && c != owner && self.adjacent(newcomer, c) {
                self.neighbors[newcomer].push(c);
                self.neighbors[c].push(newcomer);
            }
        }
        newcomer
    }

    /// Graceful departure: the zone's region is reabsorbed into the tiling
    /// and its records move with it.
    ///
    /// If the leaver's split-tree sibling is itself a leaf, that sibling
    /// absorbs the leaver and takes over the parent rectangle. Otherwise
    /// the deepest sibling-leaf pair of the tree merges back into *its*
    /// parent — a deepest internal node's children are always both leaves,
    /// so this never fails — and the freed peer adopts the leaver's zone
    /// and records: FISSIONE's donor trick, transplanted to rectangles.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::NoSuchZone`] for dead ids and
    /// [`CanError::TooSmall`] when only one zone remains.
    pub fn leave(&mut self, id: NodeId) -> Result<(), CanError> {
        self.remove_zone(id, true).map(|_| ())
    }

    /// Abrupt failure: like [`leave`](Self::leave) but the zone's records
    /// are lost (the takeover reclaims only the region). Returns the number
    /// of records lost.
    ///
    /// # Errors
    ///
    /// Same conditions as [`leave`](Self::leave).
    pub fn crash(&mut self, id: NodeId) -> Result<usize, CanError> {
        self.remove_zone(id, false)
    }

    fn remove_zone(&mut self, id: NodeId, keep_records: bool) -> Result<usize, CanError> {
        self.zone(id)?;
        if self.live <= 1 {
            return Err(CanError::TooSmall);
        }
        let dropped =
            if keep_records { 0 } else { self.zones[id].as_ref().expect("live").records.len() };

        // Fast path: the leaver's tree sibling is a leaf and can absorb the
        // parent rectangle directly.
        if let Some(sibling) = self.leaf_sibling(id) {
            let absorbed = self.zones[id].take().expect("live");
            let parent = self.tree[self.node_of[id]].parent.expect("siblings have parents");
            self.merge_pair_into(parent, sibling);
            let sib = self.zones[sibling].as_mut().expect("live sibling");
            if keep_records {
                sib.records.extend(absorbed.records);
            }
            self.live -= 1;
            let affected = self.collect_affected(&[sibling], &[id, sibling]);
            self.neighbors[id].clear();
            self.free_slots.push(Reverse(id));
            self.refresh_adjacency(&affected);
            return Ok(dropped);
        }

        // Donor path: merge the deepest sibling-leaf pair, freeing a peer
        // that adopts the leaver's zone (and records on a graceful leave).
        let (parent, absorber, donor) =
            self.deepest_leaf_pair(id).expect("live > 1 implies a mergeable sibling pair");
        let donor_zone = self.zones[donor].take().expect("live donor");
        self.merge_pair_into(parent, absorber);
        self.zones[absorber].as_mut().expect("live absorber").records.extend(donor_zone.records);
        let leaver = self.zones[id].take().expect("live leaver");
        self.zones[donor] = Some(Zone {
            rect: leaver.rect,
            records: if keep_records { leaver.records } else { Vec::new() },
        });
        self.node_of[donor] = self.node_of[id];
        self.tree[self.node_of[donor]].zone = Some(donor);
        self.live -= 1;
        let affected = self.collect_affected(&[absorber, donor], &[id, donor, absorber]);
        self.neighbors[id].clear();
        self.free_slots.push(Reverse(id));
        self.refresh_adjacency(&affected);
        Ok(dropped)
    }

    /// The live zone occupying the leaver's tree sibling, if that sibling
    /// is a leaf.
    fn leaf_sibling(&self, id: NodeId) -> Option<NodeId> {
        let node = self.node_of[id];
        let parent = self.tree[node].parent?;
        let (a, b) = self.tree[parent].kids.expect("parents are internal");
        let sibling = if a == node { b } else { a };
        self.tree[sibling].zone
    }

    /// The deepest internal node whose children are both leaves occupied by
    /// zones other than `exclude`: `(parent node, absorbing zone, donor
    /// zone)`. Deterministic: maximum depth, then lowest parent index; the
    /// first child absorbs, the second donates its peer.
    fn deepest_leaf_pair(&self, exclude: NodeId) -> Option<(usize, NodeId, NodeId)> {
        // The mergeable-pair index is ordered (depth, Reverse(parent)), so
        // reverse iteration yields maximum depth then lowest parent index —
        // the same winner the old full scan picked. `exclude` occupies one
        // leaf, so at most one candidate is skipped.
        for &(_, Reverse(parent)) in self.merge_pairs.iter().rev() {
            let (a, b) = self.tree[parent].kids.expect("indexed pairs are internal");
            let (za, zb) = (self.tree[a].zone.expect("leaf"), self.tree[b].zone.expect("leaf"));
            if za == exclude || zb == exclude {
                continue;
            }
            return Some((parent, za, zb));
        }
        None
    }

    /// Collapses the sibling pair under `parent` into `parent` itself: the
    /// absorbing zone takes over the parent rectangle, both child nodes are
    /// freed. The caller moves records and frees the other zone slot.
    fn merge_pair_into(&mut self, parent: usize, absorber: NodeId) {
        let (a, b) = self.tree[parent].kids.take().expect("parent is internal");
        self.tree[parent].zone = Some(absorber);
        self.free_nodes.push(a);
        self.free_nodes.push(b);
        self.node_of[absorber] = parent;
        self.zones[absorber].as_mut().expect("live absorber").rect = self.tree[parent].rect;
        self.refresh_merge_pair(parent);
        if let Some(grand) = self.tree[parent].parent {
            self.refresh_merge_pair(grand);
        }
    }

    /// Re-derives `node`'s membership in the mergeable-pair index: present
    /// iff internal with both children leaves, keyed by child depth.
    fn refresh_merge_pair(&mut self, node: usize) {
        let key = (self.tree[node].depth + 1, Reverse(node));
        let both_leaves = self.tree[node]
            .kids
            .is_some_and(|(a, b)| self.tree[a].kids.is_none() && self.tree[b].kids.is_none());
        if both_leaves {
            self.merge_pairs.insert(key);
        } else {
            self.merge_pairs.remove(&key);
        }
    }

    /// The zones whose adjacency lists a removal can change: the reshaped
    /// zones themselves plus everything previously adjacent to any involved
    /// slot. (A reshaped zone's new rectangle is a union of old ones, so its
    /// new neighbors all abutted one of the old rectangles.)
    fn collect_affected(&self, reshaped: &[NodeId], involved: &[NodeId]) -> Vec<NodeId> {
        let mut affected: Vec<NodeId> = reshaped.to_vec();
        for &z in involved {
            affected.extend(self.neighbors[z].iter().copied());
        }
        affected.sort_unstable();
        affected.dedup();
        affected.retain(|&z| self.zones[z].is_some());
        affected
    }

    /// Recomputes the adjacency lists of `affected` against the candidate
    /// set `affected ∪ their old neighbors` — no full-tiling scan. This is
    /// sufficient: a *new* neighbor `b` of an affected zone `a` requires `a`
    /// or `b` to have been reshaped; a reshaped zone's new rectangle is a
    /// union of old rectangles, so `b` abutted one of them and sits in some
    /// involved slot's old list, which `collect_affected` already folded in.
    /// Candidates are sorted ascending, so each rebuilt list keeps the
    /// ascending slot order the old full scan produced.
    fn refresh_adjacency(&mut self, affected: &[NodeId]) {
        let mut candidates: Vec<NodeId> = affected.to_vec();
        for &a in affected {
            candidates.extend(self.neighbors[a].iter().copied());
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&z| self.zones[z].is_some());
        for &a in affected {
            let nbrs: Vec<NodeId> =
                candidates.iter().copied().filter(|&b| b != a && self.adjacent(a, b)).collect();
            self.neighbors[a] = nbrs;
        }
        // Symmetry: everything `affected` now lists was itself affected (its
        // old list referenced an involved slot), so both ends were rebuilt.
    }

    /// Recomputes every live zone's neighbor list from scratch by a full
    /// pairwise tiling scan — the `O(N²)` oracle the incremental
    /// `refresh_adjacency` repairs are pinned against.
    ///
    /// Lists come out in ascending slot order. The incremental paths keep
    /// each list's *membership* identical but not its order — a split
    /// appends the sibling pair to an untouched neighbor's existing list —
    /// so equivalence tests compare lists as sets.
    pub fn refresh_all_adjacency(&mut self) {
        let live: Vec<NodeId> = self.live_zones().collect();
        for &z in &live {
            self.neighbors[z].clear();
        }
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[(i + 1)..] {
                if self.adjacent(a, b) {
                    self.neighbors[a].push(b);
                    self.neighbors[b].push(a);
                }
            }
        }
    }

    /// Whether two live zones abut on the torus (share an edge of positive
    /// length).
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        let ra = self.zones[a].as_ref().expect("live").rect;
        let rb = self.zones[b].as_ref().expect("live").rect;
        let x_abut = abuts(ra.x0, ra.x1, rb.x0, rb.x1) && overlaps(ra.y0, ra.y1, rb.y0, rb.y1);
        let y_abut = abuts(ra.y0, ra.y1, rb.y0, rb.y1) && overlaps(ra.x0, ra.x1, rb.x0, rb.x1);
        x_abut || y_abut
    }

    /// Publishes a record: the value's curve point decides the owning zone.
    /// Returns the zone id.
    pub fn publish(&mut self, value: f64, handle: u64) -> NodeId {
        let (x, y) = self.point_of_value(value);
        let owner = self.owner_of_point(x, y);
        self.zones[owner].as_mut().expect("live owner").records.push((value, handle));
        owner
    }

    /// Greedy routing from `from` to the owner of point `(x, y)`: each hop
    /// moves to the neighbor strictly closer (torus rect distance) to the
    /// target.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::RoutingStuck`] if no neighbor improves (cannot
    /// happen on a well-formed tiling).
    pub fn route_to_point(&self, from: NodeId, x: f64, y: f64) -> Result<Vec<NodeId>, CanError> {
        let mut path = vec![from];
        let mut cur = from;
        let mut cur_d = self.zone(cur)?.rect.torus_dist2(x, y);
        while cur_d > 0.0 {
            let next = self.neighbors[cur]
                .iter()
                .copied()
                .map(|n| (self.zones[n].as_ref().expect("live").rect.torus_dist2(x, y), n))
                .min_by(|a, b| a.partial_cmp(b).expect("distances are finite"))
                .filter(|&(d, _)| d < cur_d);
            match next {
                Some((d, n)) => {
                    cur = n;
                    cur_d = d;
                    path.push(n);
                }
                None => return Err(CanError::RoutingStuck),
            }
        }
        Ok(path)
    }

    /// Verifies the tiling invariants: live zones cover the unit square
    /// exactly (areas sum to 1 and are pairwise disjoint), the adjacency
    /// lists are symmetric and correct, and dead slots carry no state.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on violation (test helper).
    pub fn check_invariants(&self) -> Result<(), String> {
        let live: Vec<NodeId> = self.live_zones().collect();
        if live.len() != self.live {
            return Err(format!("live count {} vs {} live slots", self.live, live.len()));
        }
        let total: f64 = live.iter().map(|&z| self.zones[z].as_ref().unwrap().rect.area()).sum();
        if (total - 1.0).abs() > 1e-12 {
            return Err(format!("zone areas sum to {total}"));
        }
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[(i + 1)..] {
                let ra = self.zones[a].as_ref().unwrap().rect;
                let rb = self.zones[b].as_ref().unwrap().rect;
                if ra.intersects(&rb) {
                    return Err(format!("zones {a} and {b} overlap"));
                }
            }
        }
        for (i, slot) in self.zones.iter().enumerate() {
            if slot.is_none() && !self.neighbors[i].is_empty() {
                return Err(format!("dead slot {i} still lists neighbors"));
            }
        }
        // The free-slot heap holds exactly the dead slots.
        let dead: BTreeSet<usize> =
            self.zones.iter().enumerate().filter(|(_, z)| z.is_none()).map(|(i, _)| i).collect();
        let heap: BTreeSet<usize> = self.free_slots.iter().map(|&Reverse(i)| i).collect();
        if dead != heap {
            return Err(format!("free-slot heap {heap:?} disagrees with dead slots {dead:?}"));
        }
        // The mergeable-pair index holds exactly the internal nodes (walked
        // from the root, so freed arena entries cannot alias in) whose
        // children are both leaves.
        let mut expected = BTreeSet::new();
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            if let Some((a, b)) = self.tree[n].kids {
                if self.tree[a].kids.is_none() && self.tree[b].kids.is_none() {
                    expected.insert((self.tree[n].depth + 1, Reverse(n)));
                }
                stack.push(a);
                stack.push(b);
            }
        }
        if expected != self.merge_pairs {
            return Err("mergeable-pair index disagrees with the split tree".into());
        }
        // Tree consistency: every live zone occupies a leaf carrying its id
        // and rectangle.
        for &z in &live {
            let node = self.node_of[z];
            if self.tree[node].zone != Some(z) {
                return Err(format!("zone {z} not at its tree leaf"));
            }
            if self.tree[node].rect != self.zones[z].as_ref().unwrap().rect {
                return Err(format!("zone {z} rect disagrees with its tree leaf"));
            }
        }
        for &a in &live {
            for &b in &self.neighbors[a] {
                if self.zones[b].is_none() {
                    return Err(format!("{a} lists dead neighbor {b}"));
                }
                if !self.adjacent(a, b) {
                    return Err(format!("{a} lists non-adjacent {b}"));
                }
                if !self.neighbors[b].contains(&a) {
                    return Err(format!("asymmetric adjacency {a} / {b}"));
                }
            }
            // Completeness: every adjacent zone is listed.
            for &b in &live {
                if b != a && self.adjacent(a, b) && !self.neighbors[a].contains(&b) {
                    return Err(format!("{a} misses adjacent {b}"));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // internals

    fn alloc_slot(&mut self, zone: Zone) -> NodeId {
        // The free-slot heap pops the lowest free index — the same slot the
        // old `position(Option::is_none)` scan found, without the scan.
        if let Some(Reverse(i)) = self.free_slots.pop() {
            debug_assert!(self.zones[i].is_none(), "free-slot heap out of sync");
            self.zones[i] = Some(zone);
            self.neighbors[i].clear();
            self.live += 1;
            i
        } else {
            self.zones.push(Some(zone));
            self.neighbors.push(Vec::new());
            self.node_of.push(usize::MAX); // set by the caller right after
            self.live += 1;
            self.zones.len() - 1
        }
    }

    fn alloc_node(&mut self, node: SplitNode) -> usize {
        if let Some(i) = self.free_nodes.pop() {
            self.tree[i] = node;
            i
        } else {
            self.tree.push(node);
            self.tree.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> CanNet {
        let mut rng = simnet::rng_from_seed(seed);
        CanNet::build(CanConfig::default(), n, &mut rng).unwrap()
    }

    #[test]
    fn build_satisfies_tiling_invariants() {
        for n in [1usize, 2, 3, 10, 64, 100] {
            let net = build(n, n as u64);
            assert_eq!(net.len(), n);
            net.check_invariants().unwrap();
        }
    }

    #[test]
    fn replica_owners_are_the_adjacent_close_group() {
        let net = build(120, 77);
        for value in [0.0, 123.4, 500.0, 999.9] {
            let owners = net.replica_owners(value, 4);
            assert_eq!(owners.len(), 4);
            let (x, y) = net.point_of_value(value);
            assert_eq!(owners[0], net.owner_of_point(x, y), "primary owns the value's point");
            let distinct: std::collections::BTreeSet<_> = owners.iter().collect();
            assert_eq!(distinct.len(), 4);
            assert!(owners.iter().all(|&z| net.is_live(z)));
            // The first replica borders the primary zone.
            assert!(net.adjacent(owners[0], owners[1]), "close group starts at the border");
            assert_eq!(owners, net.replica_owners(value, 4), "deterministic");
        }
        // Clamped to the zone count.
        let tiny = build(2, 5);
        assert_eq!(tiny.replica_owners(10.0, 9).len(), 2);
    }

    #[test]
    fn average_degree_about_four() {
        let net = build(500, 81);
        let total: usize = net.live_zones().map(|z| net.neighbors(z).len()).sum();
        let avg = total as f64 / net.len() as f64;
        assert!((3.0..6.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn owner_of_point_is_unique() {
        let net = build(60, 82);
        let mut rng = simnet::rng_from_seed(820);
        for _ in 0..200 {
            let (x, y) = (rng.gen::<f64>(), rng.gen::<f64>());
            let owner = net.owner_of_point(x, y);
            let holders =
                net.live_zones().filter(|&z| net.zone(z).unwrap().rect().contains(x, y)).count();
            assert_eq!(holders, 1);
            assert!(net.zone(owner).unwrap().rect().contains(x, y));
        }
    }

    #[test]
    fn routing_reaches_any_point() {
        let net = build(300, 83);
        let mut rng = simnet::rng_from_seed(830);
        for _ in 0..100 {
            let (x, y) = (rng.gen::<f64>(), rng.gen::<f64>());
            let from = net.random_zone(&mut rng);
            let path = net.route_to_point(from, x, y).unwrap();
            let dest = *path.last().unwrap();
            assert!(net.zone(dest).unwrap().rect().contains(x, y));
        }
    }

    #[test]
    fn routing_hops_scale_as_sqrt_n() {
        // CAN delay is Θ(√N) for d = 2; check the trend loosely.
        let mut rng = simnet::rng_from_seed(840);
        let mut avgs = Vec::new();
        for &n in &[100usize, 400, 1600] {
            let net = build(n, 84 + n as u64);
            let mut total = 0usize;
            for _ in 0..200 {
                let (x, y) = (rng.gen::<f64>(), rng.gen::<f64>());
                let from = net.random_zone(&mut rng);
                total += net.route_to_point(from, x, y).unwrap().len() - 1;
            }
            avgs.push(total as f64 / 200.0);
        }
        assert!(avgs[1] > avgs[0] * 1.4, "no √N growth: {avgs:?}");
        assert!(avgs[2] > avgs[1] * 1.4, "no √N growth: {avgs:?}");
    }

    #[test]
    fn publish_stores_at_curve_owner() {
        let mut net = build(50, 85);
        let z = net.publish(123.0, 7);
        let (x, y) = net.point_of_value(123.0);
        assert_eq!(net.owner_of_point(x, y), z);
        assert!(net.zone(z).unwrap().records().contains(&(123.0, 7)));
    }

    #[test]
    fn close_values_map_to_close_points() {
        // Hilbert locality: nearby values land in nearby cells.
        let net = build(10, 86);
        let (x1, y1) = net.point_of_value(500.0);
        let (x2, y2) = net.point_of_value(500.001);
        let dist = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
        assert!(dist < 0.01, "distance {dist}");
    }

    #[test]
    fn split_repartitions_records() {
        let mut net = CanNet::new(CanConfig::default());
        let mut rng = simnet::rng_from_seed(87);
        for h in 0..100u64 {
            net.publish(rng.gen_range(0.0..1000.0), h);
        }
        for _ in 0..20 {
            net.join(&mut rng);
        }
        net.check_invariants().unwrap();
        let total: usize = net.live_zones().map(|z| net.zone(z).unwrap().records().len()).sum();
        assert_eq!(total, 100);
        // Every record sits in the zone containing its curve point.
        for z in net.live_zones() {
            for &(v, _) in net.zone(z).unwrap().records() {
                let (x, y) = net.point_of_value(v);
                assert!(net.zone(z).unwrap().rect().contains(x, y));
            }
        }
    }

    #[test]
    fn leaves_keep_tiling_and_records() {
        let mut net = build(80, 88);
        let mut rng = simnet::rng_from_seed(880);
        for h in 0..150u64 {
            net.publish(rng.gen_range(0.0..1000.0), h);
        }
        for _ in 0..60 {
            let victim = net.random_zone(&mut rng);
            net.leave(victim).unwrap();
            net.check_invariants().unwrap();
        }
        assert_eq!(net.len(), 20);
        let total: usize = net.live_zones().map(|z| net.zone(z).unwrap().records().len()).sum();
        assert_eq!(total, 150, "graceful leaves keep records");
        // Records still sit in the zone containing their curve point.
        for z in net.live_zones() {
            for &(v, _) in net.zone(z).unwrap().records() {
                let (x, y) = net.point_of_value(v);
                assert!(net.zone(z).unwrap().rect().contains(x, y));
            }
        }
    }

    #[test]
    fn crash_loses_records_but_keeps_tiling() {
        let mut net = build(40, 89);
        let mut rng = simnet::rng_from_seed(890);
        for h in 0..100u64 {
            net.publish(rng.gen_range(0.0..1000.0), h);
        }
        let victim = net.random_zone(&mut rng);
        let lost = net.crash(victim).unwrap();
        net.check_invariants().unwrap();
        let total: usize = net.live_zones().map(|z| net.zone(z).unwrap().records().len()).sum();
        assert_eq!(total + lost, 100);
        assert_eq!(net.len(), 39);
    }

    #[test]
    fn churn_storm_converges_to_a_valid_tiling() {
        let mut net = build(50, 90);
        let mut rng = simnet::rng_from_seed(900);
        for i in 0..200 {
            if i % 3 == 0 {
                net.join(&mut rng);
            } else {
                let victim = net.random_zone(&mut rng);
                let _ = net.leave(victim);
            }
            if i % 25 == 0 {
                net.check_invariants().unwrap();
            }
        }
        net.check_invariants().unwrap();
        // Routing still reaches everything.
        for _ in 0..50 {
            let (x, y) = (rng.gen::<f64>(), rng.gen::<f64>());
            let from = net.random_zone(&mut rng);
            let dest = *net.route_to_point(from, x, y).unwrap().last().unwrap();
            assert!(net.zone(dest).unwrap().rect().contains(x, y));
        }
    }

    #[test]
    fn last_zone_cannot_leave() {
        let mut net = build(1, 91);
        assert_eq!(net.leave(0), Err(CanError::TooSmall));
        assert!(matches!(net.leave(99), Err(CanError::NoSuchZone { .. })));
    }
}
