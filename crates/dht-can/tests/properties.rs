//! Property tests: Hilbert-curve invariants, CAN tiling under arbitrary
//! growth, and DCF exactness on random workloads.

use dht_can::dcf::{self, FloodMode};
use dht_can::{hilbert, CanConfig, CanNet};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hilbert_roundtrip_random_cells(order in 1u32..12, raw in any::<u64>()) {
        let d = raw % (1u64 << (2 * order));
        let (x, y) = hilbert::d2xy(order, d);
        prop_assert!(x < 1 << order && y < 1 << order);
        prop_assert_eq!(hilbert::xy2d(order, x, y), d);
    }

    #[test]
    fn hilbert_blocks_cover_and_are_disjoint(order in 2u32..8, a_raw in any::<u64>(), b_raw in any::<u64>()) {
        let total = 1u64 << (2 * order);
        let (mut a, mut b) = (a_raw % total, b_raw % total);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let blocks = hilbert::interval_blocks(order, a, b);
        // Total covered area equals the interval length (disjointness +
        // coverage together).
        let covered: u64 = blocks.iter().map(|s| s.side * s.side).sum();
        prop_assert_eq!(covered, b - a + 1);
        // Every block's cells are inside the interval.
        for blk in &blocks {
            for x in blk.x..blk.x + blk.side {
                for y in blk.y..blk.y + blk.side {
                    let d = hilbert::xy2d(order, x, y);
                    prop_assert!(d >= a && d <= b, "cell {} outside [{}, {}]", d, a, b);
                }
            }
        }
    }

    #[test]
    fn can_tiling_survives_any_growth(n in 1usize..120, seed in 0u64..10_000) {
        let mut rng = simnet::rng_from_seed(seed);
        let net = CanNet::build(CanConfig::default(), n, &mut rng).unwrap();
        net.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn can_routing_always_delivers(n in 2usize..150, seed in 0u64..10_000) {
        let mut rng = simnet::rng_from_seed(seed);
        let net = CanNet::build(CanConfig::default(), n, &mut rng).unwrap();
        for _ in 0..10 {
            let (x, y) = (rng.gen::<f64>(), rng.gen::<f64>());
            let from = net.random_zone(&mut rng);
            let path = net.route_to_point(from, x, y).unwrap();
            let dest = *path.last().unwrap();
            prop_assert!(net.zone(dest).unwrap().rect().contains(x, y));
            // No zone repeats on a greedy path.
            let mut seen = path.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), path.len());
        }
    }

    #[test]
    fn dcf_exact_on_random_networks_and_queries(
        n in 4usize..120,
        seed in 0u64..10_000,
        lo_frac in 0f64..1.0,
        size_frac in 0f64..1.0,
    ) {
        let cfg = CanConfig { domain_lo: 0.0, domain_hi: 1000.0, ..CanConfig::default() };
        let mut rng = simnet::rng_from_seed(seed);
        let mut net = CanNet::build(cfg, n, &mut rng).unwrap();
        for h in 0..60u64 {
            net.publish(rng.gen_range(0.0..=1000.0), h);
        }
        let lo = lo_frac * 999.0;
        let hi = (lo + size_frac * (1000.0 - lo)).min(1000.0);
        let origin = net.random_zone(&mut rng);
        let out = dcf::range_query(&net, origin, lo, hi, seed, FloodMode::Directed).unwrap();
        prop_assert!(out.exact, "[{}, {}] on N = {}", lo, hi, n);
        // Cross-check the result set against a direct scan.
        let mut expect: Vec<u64> = (0..net.len())
            .flat_map(|z| net.zone(z).unwrap().records().to_vec())
            .filter(|&(v, _)| v >= lo && v <= hi)
            .map(|(_, h)| h)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(out.results, expect);
    }
}
