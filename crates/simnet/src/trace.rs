//! The deterministic trace plane: structured virtual-time events.
//!
//! Every event is stamped with the simulator's **virtual** clock and a
//! monotone event id — no wall clock, no RNG — so the serialized stream for
//! a fixed `(protocol, seed)` pair is byte-identical across runs, thread
//! counts, and shard orders. Events are totally ordered by
//! `(time, id)`; since [`Sim`](crate::Sim) emits at the sender's current
//! tick and ids are assigned in emission order, the buffer is already in
//! that order when a run completes (asserted by `emits_in_time_id_order`
//! below).
//!
//! The sink is **zero-cost when off**: a `Sim` without an attached
//! [`TraceSink`] takes one `Option` branch per emission site and allocates
//! nothing, so report digests are bit-for-bit unchanged with tracing
//! disabled (pinned by `tests/hasher_perturbation.rs` at the workspace
//! root).

use crate::{NodeId, SimTime};

/// How a recorded hop came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// A real network edge the simulator scheduled.
    Network,
    /// A local hand-off (self-delivery continuing a message chain, e.g. a
    /// routing phase switching to a flooding phase).
    Local,
    /// A hop synthesized from a scheme's analytic cost model — schemes that
    /// compute costs without per-message simulation decompose their
    /// reported totals into a modeled chain so the explain invariant
    /// (per-hop sums reproduce `delay`/`latency`) still holds.
    Modeled,
}

impl HopKind {
    /// Stable lowercase label used by every serialization.
    pub fn label(self) -> &'static str {
        match self {
            HopKind::Network => "network",
            HopKind::Local => "local",
            HopKind::Modeled => "modeled",
        }
    }
}

/// Why a send attempt never scheduled (or was priced): the fault plane's
/// decision on one directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Refused by an open partition (cross-side delivery).
    Blocked,
    /// Dropped by the probabilistic loss model.
    Dropped,
    /// Lost by the hash-verdict loss plan (the attempt index is part of
    /// the recorded plan string).
    Lost,
    /// Queued by the token-bucket rate limiter — the message still
    /// delivers, with the queueing delay priced into its cost.
    Throttled,
    /// Addressed to a crashed peer.
    ToCrashed,
}

impl Verdict {
    /// Stable lowercase label used by every serialization.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Blocked => "blocked",
            Verdict::Dropped => "dropped",
            Verdict::Lost => "lost",
            Verdict::Throttled => "throttled",
            Verdict::ToCrashed => "to-crashed",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A message scheduled over an edge. `edge_cost_ms` is this hop's own
    /// contribution (queueing delay included); `cost_ms` is the chain's
    /// accumulated [`Envelope::cost`](crate::Envelope::cost) after it.
    Hop {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Overlay hop depth of the scheduled message.
        hop: u32,
        /// This edge's cost in virtual milliseconds.
        edge_cost_ms: u64,
        /// Accumulated chain cost after this edge.
        cost_ms: u64,
        /// How the hop came to be.
        kind: HopKind,
    },
    /// The fault plane ruled on a send attempt.
    FaultVerdict {
        /// Sender of the judged attempt.
        src: NodeId,
        /// Receiver of the judged attempt.
        dst: NodeId,
        /// The ruling.
        verdict: Verdict,
        /// Which plan component ruled (e.g. `"hash-loss attempt 2"`).
        plan: String,
    },
    /// A message reached its receiver's handler.
    Delivery {
        /// Receiving node.
        node: NodeId,
        /// Overlay hop depth at delivery.
        hop: u32,
        /// Accumulated chain cost at delivery.
        cost_ms: u64,
    },
    /// The protocol marked a delivery as *answering* the query (the peer's
    /// region intersects the range) — the deliveries that define `delay`
    /// (max hop) and `latency` (last first arrival over chain costs).
    Answer {
        /// Answering node.
        node: NodeId,
        /// Overlay hop depth of the answering delivery.
        hop: u32,
        /// Accumulated chain cost of the answering delivery.
        cost_ms: u64,
    },
    /// A retry layer launched (or re-launched) the query.
    RetryAttempt {
        /// 0-based attempt index.
        attempt: u32,
        /// Backoff + timeout wait charged *before* this attempt (0 for the
        /// first).
        wait_ms: u64,
        /// Whether the attempt's merged result was exact.
        exact: bool,
    },
    /// The replication layer fetched a record copy from a live holder.
    ReplicaFetch {
        /// Querying node.
        origin: NodeId,
        /// Replica holder serving (or failing to serve) the fetch.
        holder: NodeId,
        /// Overlay hops of the fetch round trip.
        hops: u64,
        /// Virtual milliseconds of the fetch round trip.
        latency_ms: u64,
        /// Messages the fetch cost.
        messages: u64,
        /// False when the fetch was paid for but lost in transit.
        recovered: bool,
    },
}

impl TraceEvent {
    /// Stable event-type tag used by every serialization.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Hop { .. } => "hop",
            TraceEvent::FaultVerdict { .. } => "fault-verdict",
            TraceEvent::Delivery { .. } => "delivery",
            TraceEvent::Answer { .. } => "answer",
            TraceEvent::RetryAttempt { .. } => "retry-attempt",
            TraceEvent::ReplicaFetch { .. } => "replica-fetch",
        }
    }
}

/// One event with its total-order stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of emission (the sender's tick for hops and verdicts,
    /// the delivery tick for deliveries/answers).
    pub time: SimTime,
    /// Monotone event id — the tie-breaker making `(time, id)` a total
    /// order, assigned in emission order.
    pub id: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// One-line JSON rendering (hand-rolled — the build environment has no
    /// serde; same convention as `BENCH_baseline.json`). Field order is
    /// fixed, so equal records serialize to equal bytes.
    pub fn to_json_line(&self) -> String {
        let head =
            format!("{{\"t\":{},\"id\":{},\"type\":\"{}\"", self.time, self.id, self.event.tag());
        let body = match &self.event {
            TraceEvent::Hop { src, dst, hop, edge_cost_ms, cost_ms, kind } => format!(
                ",\"src\":{src},\"dst\":{dst},\"hop\":{hop},\"edge_cost_ms\":{edge_cost_ms},\
                 \"cost_ms\":{cost_ms},\"kind\":\"{}\"",
                kind.label()
            ),
            TraceEvent::FaultVerdict { src, dst, verdict, plan } => format!(
                ",\"src\":{src},\"dst\":{dst},\"verdict\":\"{}\",\"plan\":\"{}\"",
                verdict.label(),
                json_escape(plan)
            ),
            TraceEvent::Delivery { node, hop, cost_ms } => {
                format!(",\"node\":{node},\"hop\":{hop},\"cost_ms\":{cost_ms}")
            }
            TraceEvent::Answer { node, hop, cost_ms } => {
                format!(",\"node\":{node},\"hop\":{hop},\"cost_ms\":{cost_ms}")
            }
            TraceEvent::RetryAttempt { attempt, wait_ms, exact } => {
                format!(",\"attempt\":{attempt},\"wait_ms\":{wait_ms},\"exact\":{exact}")
            }
            TraceEvent::ReplicaFetch { origin, holder, hops, latency_ms, messages, recovered } => {
                format!(
                    ",\"origin\":{origin},\"holder\":{holder},\"hops\":{hops},\
                     \"latency_ms\":{latency_ms},\"messages\":{messages},\"recovered\":{recovered}"
                )
            }
        };
        format!("{head}{body}}}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An append-only buffer of trace events with monotone id assignment.
///
/// Attach one to a [`Sim`](crate::Sim) with
/// [`Sim::with_trace`](crate::Sim::with_trace) and harvest it with
/// [`Sim::take_trace`](crate::Sim::take_trace); layers above the simulator
/// (retry wrappers, replication) append their own events through
/// [`emit`](Self::emit) with whatever virtual-time base they maintain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSink {
    events: Vec<TraceRecord>,
    next_id: u64,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Appends `event` at virtual time `time`, assigning the next id.
    pub fn emit(&mut self, time: SimTime, event: TraceEvent) {
        let id = self.next_id;
        self.next_id += 1;
        self.events.push(TraceRecord { time, id, event });
    }

    /// The recorded events, in `(time, id)` order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.events
    }

    /// Consumes the sink, yielding the event list.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends another event list shifted `time_offset` ticks into the
    /// future, re-stamping ids to keep this sink's order monotone — how a
    /// retry layer splices attempt traces onto one merged timeline.
    pub fn append_offset(&mut self, records: Vec<TraceRecord>, time_offset: SimTime) {
        for r in records {
            self.emit(r.time + time_offset, r.event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_in_time_id_order() {
        let mut sink = TraceSink::new();
        sink.emit(0, TraceEvent::Delivery { node: 0, hop: 0, cost_ms: 0 });
        sink.emit(0, TraceEvent::Answer { node: 0, hop: 0, cost_ms: 0 });
        sink.emit(3, TraceEvent::Delivery { node: 1, hop: 1, cost_ms: 3 });
        let stamps: Vec<(u64, u64)> = sink.records().iter().map(|r| (r.time, r.id)).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn append_offset_rebases_times_and_ids() {
        let mut a = TraceSink::new();
        a.emit(1, TraceEvent::Delivery { node: 0, hop: 0, cost_ms: 0 });
        let mut b = TraceSink::new();
        b.emit(0, TraceEvent::Answer { node: 2, hop: 2, cost_ms: 7 });
        a.append_offset(b.into_records(), 10);
        let r = &a.records()[1];
        assert_eq!(r.time, 10);
        assert_eq!(r.id, 1);
    }

    #[test]
    fn json_lines_are_stable_and_escaped() {
        let rec = TraceRecord {
            time: 2,
            id: 5,
            event: TraceEvent::FaultVerdict {
                src: 1,
                dst: 3,
                verdict: Verdict::Lost,
                plan: "hash-loss \"p=0.1\" attempt 2".to_string(),
            },
        };
        let line = rec.to_json_line();
        assert!(line.starts_with("{\"t\":2,\"id\":5,\"type\":\"fault-verdict\""), "{line}");
        assert!(line.contains("\\\"p=0.1\\\""), "{line}");
        assert_eq!(line, rec.clone().to_json_line(), "serialization is a pure function");
    }

    #[test]
    fn every_event_kind_serializes_with_its_tag() {
        let events = [
            TraceEvent::Hop {
                src: 0,
                dst: 1,
                hop: 1,
                edge_cost_ms: 4,
                cost_ms: 4,
                kind: HopKind::Network,
            },
            TraceEvent::FaultVerdict {
                src: 0,
                dst: 1,
                verdict: Verdict::Blocked,
                plan: "p".into(),
            },
            TraceEvent::Delivery { node: 1, hop: 1, cost_ms: 4 },
            TraceEvent::Answer { node: 1, hop: 1, cost_ms: 4 },
            TraceEvent::RetryAttempt { attempt: 1, wait_ms: 50, exact: false },
            TraceEvent::ReplicaFetch {
                origin: 0,
                holder: 2,
                hops: 3,
                latency_ms: 9,
                messages: 3,
                recovered: true,
            },
        ];
        for ev in events {
            let tag = ev.tag();
            let line = TraceRecord { time: 0, id: 0, event: ev }.to_json_line();
            assert!(line.contains(&format!("\"type\":\"{tag}\"")), "{line}");
        }
    }
}
