//! Type-erased per-thread scratch for query hot paths.
//!
//! A [`QueryScratch`] is a small heterogeneous bag of reusable buffers:
//! each scheme stashes its own scratch type (a [`SimScratch`] plus
//! whatever working buffers its routing loop needs) under the type's
//! [`TypeId`] and gets the same instance back on the next query. Drivers
//! own one per worker thread and pass it to
//! `RangeScheme::range_query_scratch`, so a sharded sweep pays each
//! scheme's setup allocations once per thread instead of once per query.
//!
//! Reuse is observationally inert: every slot is reset by its scheme at
//! the start of a query, so results, metrics, digests, and traces are
//! bit-identical to the scratch-free path (the scheme differential and
//! hasher-perturbation suites pin this).
//!
//! [`SimScratch`]: crate::SimScratch

use std::any::{Any, TypeId};

/// A heterogeneous, type-indexed bag of reusable per-thread query state.
#[derive(Default)]
pub struct QueryScratch {
    // A linear scan keyed on TypeId: schemes use a handful of slot types,
    // and a Vec keeps iteration order deterministic (no hasher state).
    slots: Vec<(TypeId, Box<dyn Any + Send>)>,
}

impl QueryScratch {
    /// An empty scratch; slots materialize on first access.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scratch slot for `T`, created via `T::default()` on first
    /// access. Callers must treat the contents as dirty — reset whatever
    /// state matters before use (capacity is the only thing worth
    /// carrying over).
    pub fn slot<T: Default + Send + 'static>(&mut self) -> &mut T {
        let id = TypeId::of::<T>();
        let idx = match self.slots.iter().position(|(t, _)| *t == id) {
            Some(i) => i,
            None => {
                self.slots.push((id, Box::new(T::default())));
                self.slots.len() - 1
            }
        };
        self.slots[idx].1.downcast_mut::<T>().expect("slot is keyed by its own TypeId")
    }

    /// Number of distinct slot types materialized so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot has been materialized.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl std::fmt::Debug for QueryScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryScratch").field("slots", &self.slots.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct A {
        buf: Vec<u32>,
    }

    #[derive(Default)]
    struct B {
        n: usize,
    }

    #[test]
    fn slots_persist_per_type() {
        let mut s = QueryScratch::new();
        s.slot::<A>().buf.push(7);
        s.slot::<B>().n = 3;
        assert_eq!(s.slot::<A>().buf, vec![7]);
        assert_eq!(s.slot::<B>().n, 3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn capacity_survives_a_clear() {
        let mut s = QueryScratch::new();
        let a = s.slot::<A>();
        a.buf.extend(0..100);
        a.buf.clear();
        assert!(s.slot::<A>().buf.capacity() >= 100);
    }

    #[test]
    fn scratch_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<QueryScratch>();
    }
}
