//! The network cost model: deterministic per-edge virtual latency.
//!
//! The paper measures delay in overlay hops — equivalent to a network in
//! which every edge costs exactly one tick. Real deployments are not that
//! network: WAN edges cost tens of milliseconds, transit-stub topologies
//! make some pairs far cheaper than others, and a handful of slow peers can
//! dominate a query's critical path. [`NetModel`] names a small catalog of
//! such cost surfaces and prices every overlay edge with a **pure function
//! of `(model, seed, src, dst)`**:
//!
//! * no RNG stream is consumed — two simulations sampling edges in
//!   different orders (or from different threads) see identical costs, so
//!   parallel-driver reports stay bitwise thread-count-invariant;
//! * the same edge always costs the same within one model instance — edge
//!   cost is a property of the *network*, not of the query that happens to
//!   traverse it;
//! * costs are symmetric (`cost(a, b) == cost(b, a)`) and self-edges are
//!   free, matching the simulator's convention that local self-delivery
//!   costs nothing.
//!
//! Costs are in **virtual milliseconds**. The catalog:
//!
//! | name | per-edge cost | models |
//! |---|---|---|
//! | `unit` | 1 | the paper's hop-tick network (latency ≡ hop count) |
//! | `lan` | 1–3 | one datacenter: uniform fast edges with jitter |
//! | `wan` | 30–90 | homogeneous wide-area: every edge is slow |
//! | `cluster` | 1–3 intra, 10–74 inter | transit-stub: peers hash into 8 clusters with seeded 2-D coordinates; inter-cluster cost grows with coordinate distance |
//! | `straggler` | 2–4, ×(+120) per slow endpoint | a deterministic 1-in-16 slow-peer set taxes every edge that touches it |

use crate::NodeId;

/// Names of every cataloged cost model, in [`NetModel::named`] order.
pub const NET_MODEL_NAMES: [&str; 5] = ["unit", "lan", "wan", "cluster", "straggler"];

/// The default seed for named models (experiments that want several
/// independent samples of the same topology class use
/// [`NetModel::with_seed`]).
const DEFAULT_SEED: u64 = 0x11e7;

/// Number of clusters the `cluster` model hashes peers into.
const CLUSTERS: u64 = 8;

/// One in `STRAGGLER_ODDS` peers is a straggler under the `straggler`
/// model.
const STRAGGLER_ODDS: u64 = 16;

/// Extra virtual milliseconds per straggler endpoint on an edge.
const STRAGGLER_TAX: u64 = 120;

/// The cost-surface family of a [`NetModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetModelKind {
    /// Every edge costs one tick: virtual time equals hop count.
    Unit,
    /// Datacenter-uniform: every edge costs 1–3 ms (seeded jitter).
    Lan,
    /// Wide-area-uniform: every edge costs 30–90 ms (seeded jitter).
    Wan,
    /// Transit-stub: peers hash into 8 clusters with seeded 2-D
    /// coordinates; intra-cluster edges cost 1–3 ms, inter-cluster edges
    /// 10 ms plus the coordinate distance of the cluster centers.
    Cluster,
    /// Uniform 2–4 ms base with a deterministic 1-in-16 slow-peer set:
    /// each straggler endpoint adds 120 ms to the edge.
    Straggler,
}

/// A named, seeded, deterministic per-edge cost model.
///
/// # Example
///
/// ```
/// use simnet::NetModel;
///
/// let wan = NetModel::named("wan").unwrap();
/// // Pure function of (model, seed, src, dst): no RNG stream, no order
/// // dependence, symmetric, self-edges free.
/// assert_eq!(wan.edge_cost(3, 7), wan.edge_cost(3, 7));
/// assert_eq!(wan.edge_cost(3, 7), wan.edge_cost(7, 3));
/// assert_eq!(wan.edge_cost(5, 5), 0);
/// assert!((30..=90).contains(&wan.edge_cost(3, 7)));
/// // `unit` reproduces the paper's hop ticks.
/// assert_eq!(NetModel::unit().edge_cost(3, 7), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetModel {
    kind: NetModelKind,
    seed: u64,
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::unit()
    }
}

impl NetModel {
    /// The hop-tick model: every edge costs 1 (latency ≡ hop count).
    pub fn unit() -> Self {
        NetModel { kind: NetModelKind::Unit, seed: DEFAULT_SEED }
    }

    /// The datacenter model: uniform 1–3 ms edges.
    pub fn lan() -> Self {
        NetModel { kind: NetModelKind::Lan, seed: DEFAULT_SEED }
    }

    /// The wide-area model: uniform 30–90 ms edges.
    pub fn wan() -> Self {
        NetModel { kind: NetModelKind::Wan, seed: DEFAULT_SEED }
    }

    /// The transit-stub model: seeded clusters with 2-D coordinates.
    pub fn cluster() -> Self {
        NetModel { kind: NetModelKind::Cluster, seed: DEFAULT_SEED }
    }

    /// The slow-peer model: a deterministic straggler set taxes its edges.
    pub fn straggler() -> Self {
        NetModel { kind: NetModelKind::Straggler, seed: DEFAULT_SEED }
    }

    /// Looks a model up by catalog name (see [`NET_MODEL_NAMES`]).
    pub fn named(name: &str) -> Option<NetModel> {
        match name {
            "unit" => Some(NetModel::unit()),
            "lan" => Some(NetModel::lan()),
            "wan" => Some(NetModel::wan()),
            "cluster" => Some(NetModel::cluster()),
            "straggler" => Some(NetModel::straggler()),
            _ => None,
        }
    }

    /// Replaces the seed (an independent sample of the same topology
    /// class; `unit` ignores it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The catalog name.
    pub fn name(&self) -> &'static str {
        match self.kind {
            NetModelKind::Unit => "unit",
            NetModelKind::Lan => "lan",
            NetModelKind::Wan => "wan",
            NetModelKind::Cluster => "cluster",
            NetModelKind::Straggler => "straggler",
        }
    }

    /// The cost-surface family.
    pub fn kind(&self) -> NetModelKind {
        self.kind
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this is the hop-tick model (under which latency reproduces
    /// hop accounting exactly).
    pub fn is_unit(&self) -> bool {
        self.kind == NetModelKind::Unit
    }

    /// Whether `node` is in the `straggler` model's deterministic slow-peer
    /// set (always false under every other model).
    pub fn is_straggler(&self, node: NodeId) -> bool {
        self.kind == NetModelKind::Straggler
            && mix(self.seed ^ 0x5712_a991, node as u64, 0).is_multiple_of(STRAGGLER_ODDS)
    }

    /// The virtual-millisecond cost of the overlay edge `src → dst`: a pure
    /// function of `(model, seed, src, dst)`, symmetric, 0 for self-edges.
    pub fn edge_cost(&self, src: NodeId, dst: NodeId) -> u64 {
        if src == dst {
            return 0;
        }
        // Symmetry: hash the unordered pair.
        let (a, b) = if src <= dst { (src, dst) } else { (dst, src) };
        let h = mix(self.seed, a as u64, b as u64);
        match self.kind {
            NetModelKind::Unit => 1,
            NetModelKind::Lan => 1 + h % 3,
            NetModelKind::Wan => 30 + h % 61,
            NetModelKind::Cluster => {
                let (ca, cb) = (self.cluster_of(a), self.cluster_of(b));
                if ca == cb {
                    1 + h % 3
                } else {
                    let (xa, ya) = self.cluster_center(ca);
                    let (xb, yb) = self.cluster_center(cb);
                    // Manhattan distance of the seeded 2-D centers, scaled
                    // into a 10–74 ms transit band (integer arithmetic:
                    // bitwise reproducible on every platform).
                    let dist = xa.abs_diff(xb) + ya.abs_diff(yb);
                    10 + dist / 8
                }
            }
            NetModelKind::Straggler => {
                let mut cost = 2 + h % 3;
                if self.is_straggler(a) {
                    cost += STRAGGLER_TAX;
                }
                if self.is_straggler(b) {
                    cost += STRAGGLER_TAX;
                }
                cost
            }
        }
    }

    /// The summed edge cost of a node path (`[a, b, c]` ⇒
    /// `cost(a,b) + cost(b,c)`; empty and single-node paths cost 0).
    pub fn path_cost(&self, path: &[NodeId]) -> u64 {
        path.windows(2).map(|w| self.edge_cost(w[0], w[1])).sum()
    }

    /// Which cluster group a node hashes into — `Some` only under the
    /// `cluster` model (partition plans use this to split the network
    /// along its transit-stub topology rather than at random).
    pub fn cluster_group(&self, node: NodeId) -> Option<u64> {
        (self.kind == NetModelKind::Cluster).then(|| self.cluster_of(node))
    }

    /// Which cluster a node hashes into under the `cluster` model.
    fn cluster_of(&self, node: NodeId) -> u64 {
        mix(self.seed ^ 0xc105, node as u64, 1) % CLUSTERS
    }

    /// The seeded 2-D coordinates of a cluster center, each in `0..256`.
    fn cluster_center(&self, cluster: u64) -> (u64, u64) {
        let h = mix(self.seed ^ 0x2d2d, cluster, 2);
        (h % 256, (h >> 8) % 256)
    }
}

/// SplitMix64-style avalanche over three words — the pure edge-keyed hash
/// shared by [`NetModel`] costs, the engine's edge-keyed scheduling
/// jitter, and the hostile fault verdicts (one definition, so none of them
/// can de-synchronize). Public because downstream layers (retry backoff
/// jitter, response-plane fault models) must hash the same way.
///
/// # Example
///
/// ```
/// // Pure: same words, same hash; any word change avalanches.
/// assert_eq!(simnet::mix(1, 2, 3), simnet::mix(1, 2, 3));
/// assert_ne!(simnet::mix(1, 2, 3), simnet::mix(1, 2, 4));
/// ```
pub fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_models() -> Vec<NetModel> {
        NET_MODEL_NAMES.iter().map(|n| NetModel::named(n).unwrap()).collect()
    }

    #[test]
    fn catalog_round_trips() {
        for name in NET_MODEL_NAMES {
            let m = NetModel::named(name).unwrap();
            assert_eq!(m.name(), name);
        }
        assert!(NetModel::named("dialup").is_none());
        assert_eq!(NetModel::default(), NetModel::unit());
    }

    #[test]
    fn edge_costs_are_pure_symmetric_and_self_free() {
        for m in all_models() {
            for (a, b) in [(0usize, 1usize), (3, 7), (100, 2), (42, 4242)] {
                assert_eq!(m.edge_cost(a, b), m.edge_cost(a, b), "{}: pure", m.name());
                assert_eq!(m.edge_cost(a, b), m.edge_cost(b, a), "{}: symmetric", m.name());
                assert!(m.edge_cost(a, b) >= 1, "{}: network edges cost time", m.name());
            }
            assert_eq!(m.edge_cost(9, 9), 0, "{}: self-edges are free", m.name());
        }
    }

    #[test]
    fn unit_reproduces_hop_ticks() {
        let m = NetModel::unit();
        for (a, b) in [(0usize, 1usize), (5, 900), (17, 3)] {
            assert_eq!(m.edge_cost(a, b), 1);
        }
        assert_eq!(m.path_cost(&[4, 9, 2, 77]), 3);
    }

    #[test]
    fn costs_fall_in_documented_bands() {
        for a in 0..40usize {
            for b in (a + 1)..40usize {
                assert!((1..=3).contains(&NetModel::lan().edge_cost(a, b)));
                assert!((30..=90).contains(&NetModel::wan().edge_cost(a, b)));
                let c = NetModel::cluster().edge_cost(a, b);
                assert!((1..=74).contains(&c), "cluster cost {c}");
                let s = NetModel::straggler().edge_cost(a, b);
                assert!((2..=4 + 2 * STRAGGLER_TAX).contains(&s), "straggler cost {s}");
            }
        }
    }

    #[test]
    fn straggler_set_is_sparse_and_taxes_its_edges() {
        let m = NetModel::straggler();
        let stragglers: Vec<NodeId> = (0..1000).filter(|&n| m.is_straggler(n)).collect();
        // ~1/16 of peers; allow generous slack around the expectation.
        assert!((20..=120).contains(&stragglers.len()), "{} stragglers", stragglers.len());
        let slow = stragglers[0];
        let fast = (0..1000).find(|&n| !m.is_straggler(n)).unwrap();
        assert!(m.edge_cost(slow, fast) > STRAGGLER_TAX);
        assert!(m.edge_cost(fast, (fast + 1..).find(|&n| !m.is_straggler(n)).unwrap()) <= 4);
        // Other models have no stragglers.
        assert!(!NetModel::wan().is_straggler(slow));
    }

    #[test]
    fn cluster_model_is_cheap_inside_and_dearer_across() {
        let m = NetModel::cluster();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for a in 0..60usize {
            for b in (a + 1)..60usize {
                let cost = m.edge_cost(a, b);
                if m.cluster_of(a) == m.cluster_of(b) {
                    intra.push(cost);
                } else {
                    inter.push(cost);
                }
            }
        }
        assert!(!intra.is_empty() && !inter.is_empty());
        assert!(intra.iter().all(|&c| c <= 3));
        assert!(inter.iter().all(|&c| c >= 10));
    }

    #[test]
    fn seeds_give_independent_samples() {
        let a = NetModel::wan();
        let b = NetModel::wan().with_seed(99);
        let differs = (0..100usize).any(|n| a.edge_cost(n, n + 1) != b.edge_cost(n, n + 1));
        assert!(differs, "different seeds must sample different cost surfaces");
        // But unit is seed-free by construction.
        assert_eq!(NetModel::unit().with_seed(9).edge_cost(1, 2), 1);
    }
}
