//! Fault injection: message loss and crashed nodes.

use crate::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Faults applied to a simulation run.
///
/// * Every network message is dropped independently with probability
///   `drop_prob`.
/// * Crashed nodes silently discard anything addressed to them (checked both
///   at send and at delivery time, so crashing mid-run works).
///
/// # Example
///
/// ```
/// use simnet::FaultPlan;
///
/// let mut plan = FaultPlan::with_drop_prob(0.05);
/// plan.crash(3);
/// assert!(plan.is_crashed(3));
/// plan.recover(3);
/// assert!(!plan.is_crashed(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    drop_prob: f64,
    // A BTreeSet, not a HashSet: `crashed_nodes()` iteration order (and
    // anything derived from it — victim picks, printed reports) must be a
    // pure function of the plan's contents, never of hasher seeds.
    crashed: BTreeSet<NodeId>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan dropping each message independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn with_drop_prob(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
        FaultPlan { drop_prob: p, crashed: BTreeSet::new() }
    }

    /// The message-drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Sets the message-drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
        self.drop_prob = p;
    }

    /// Marks a node as crashed.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Clears a node's crashed status.
    pub fn recover(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether a node is crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Number of crashed nodes.
    pub fn crashed_count(&self) -> usize {
        self.crashed.len()
    }

    /// Iterates over crashed nodes in ascending `NodeId` order — a
    /// deterministic order, so derived streams (victim selection, report
    /// rows) are run-independent.
    pub fn crashed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.crashed.iter().copied()
    }

    pub(crate) fn should_drop(&self, rng: &mut SmallRng) -> bool {
        self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let plan = FaultPlan::new();
        assert_eq!(plan.drop_prob(), 0.0);
        assert_eq!(plan.crashed_count(), 0);
        let mut rng = crate::rng_from_seed(1);
        for _ in 0..100 {
            assert!(!plan.should_drop(&mut rng));
        }
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let plan = FaultPlan::with_drop_prob(0.3);
        let mut rng = crate::rng_from_seed(2);
        let drops = (0..10_000).filter(|_| plan.should_drop(&mut rng)).count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_invalid_probability() {
        FaultPlan::with_drop_prob(1.5);
    }

    #[test]
    fn crashed_nodes_iterate_in_sorted_order_regardless_of_insertion() {
        // Regression: a HashSet here made crashed_nodes() run-dependent.
        let mut plan = FaultPlan::new();
        for node in [42, 7, 19, 3, 99, 7] {
            plan.crash(node);
        }
        assert_eq!(plan.crashed_nodes().collect::<Vec<_>>(), vec![3, 7, 19, 42, 99]);
        let mut reversed = FaultPlan::new();
        for node in [99, 42, 19, 7, 3] {
            reversed.crash(node);
        }
        assert_eq!(
            plan.crashed_nodes().collect::<Vec<_>>(),
            reversed.crashed_nodes().collect::<Vec<_>>(),
            "iteration order must be a pure function of the set contents"
        );
    }

    #[test]
    fn crash_and_recover() {
        let mut plan = FaultPlan::new();
        plan.crash(7);
        plan.crash(9);
        assert_eq!(plan.crashed_count(), 2);
        assert!(plan.is_crashed(7));
        plan.recover(7);
        assert!(!plan.is_crashed(7));
        assert_eq!(plan.crashed_nodes().collect::<Vec<_>>(), vec![9]);
    }
}
