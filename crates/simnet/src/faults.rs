//! Fault injection: message loss, crashed nodes, partitions, rate limits.
//!
//! Beyond the original crash/drop faults, a [`FaultPlan`] can carry three
//! **hostile-network families**, every decision a pure hash of
//! `(plan, seed, edge/peer, attempt)` — no RNG stream is consumed, so two
//! simulations injecting faults in different orders (or from different
//! threads) see identical verdicts and reports stay bitwise
//! thread-count-invariant:
//!
//! * [`LossPlan`] — per-edge message loss. Each delivery attempt on an
//!   edge gets an attempt index; the drop verdict is a SplitMix64 hash of
//!   `(plan seed ⊕ sim seed, src, dst, attempt / burst)` compared against
//!   the loss probability. `burst = 1` is independent Bernoulli loss
//!   (`lossy-p`); `burst > 1` makes whole windows of consecutive attempts
//!   share one verdict (`bursty`), modelling correlated outages.
//! * [`PartitionPlan`] — a network split into `islands` sides that opens
//!   at one epoch and heals at another. While open, the simulator refuses
//!   cross-side delivery. Side assignment is **cluster-model-aware**:
//!   under the `cluster` [`NetModel`](crate::NetModel) a node's side is its
//!   cluster group (the partition follows the transit-stub topology);
//!   under every other model sides are a pure hash of the node id.
//! * [`RateLimitPlan`] — a deterministic token bucket per sending peer:
//!   the first `burst` network messages of a run are free, and overflow
//!   message `k` is priced `k × delay_ms` of queueing delay through
//!   [`Envelope::cost`](crate::Envelope::cost) (the virtual-millisecond
//!   latency path) without perturbing event scheduling.
//!
//! The named catalog ([`HOSTILE_PLAN_NAMES`], [`FaultPlan::named_hostile`]):
//!
//! | name | family | parameters |
//! |---|---|---|
//! | `lossy-p` | loss | 10% independent per-attempt loss (`lossy-N` = N%) |
//! | `bursty` | loss | 25% of 4-attempt windows drop entirely |
//! | `split-brain` | partition | 2 islands, opens at epoch 1, heals at 3 |
//! | `island-3` | partition | 3 islands, opens at epoch 0, heals at 2 (`island-K` = K islands) |
//! | `throttle` | rate limit | 8-message bucket, 5 ms queueing quantum |

use crate::net::{mix, NetModel};
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Names of every cataloged hostile plan, in [`FaultPlan::named_hostile`]
/// order (the parameterized spellings `lossy-N` / `island-K` also parse).
pub const HOSTILE_PLAN_NAMES: [&str; 5] =
    ["lossy-p", "bursty", "split-brain", "island-3", "throttle"];

/// Domain-separation salt for loss verdicts.
const LOSS_SALT: u64 = 0x1055_1055_1055_1055;

/// Domain-separation salt for partition side assignment.
const PARTITION_SALT: u64 = 0x9a97_1710_9a97_1710;

/// Per-edge message loss: the drop verdict of delivery attempt `a` on edge
/// `src → dst` is a pure hash — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossPlan {
    prob: f64,
    burst: u64,
}

impl LossPlan {
    /// Independent Bernoulli loss at probability `p` per delivery attempt.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn bernoulli(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        LossPlan { prob: p, burst: 1 }
    }

    /// Correlated loss: consecutive windows of `burst` attempts on an edge
    /// share one verdict, each window dropping entirely with probability
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0` and `burst ≥ 1`.
    pub fn bursty(p: f64, burst: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        assert!(burst >= 1, "burst window must be at least one attempt");
        LossPlan { prob: p, burst }
    }

    /// The per-attempt (or per-window) drop probability.
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// The burst window length in attempts (1 = independent loss).
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// The drop verdict for delivery attempt `attempt` on edge
    /// `src → dst`: a pure function of its arguments (no RNG stream).
    pub fn lost(&self, seed: u64, src: NodeId, dst: NodeId, attempt: u64) -> bool {
        if self.prob <= 0.0 {
            return false;
        }
        if self.prob >= 1.0 {
            return true;
        }
        let window = attempt / self.burst;
        let h = mix(seed ^ LOSS_SALT, mix(0, src as u64, dst as u64), window);
        // Compare the hash's top 53 bits (exactly representable in f64)
        // against the probability — bit-reproducible on every platform.
        ((h >> 11) as f64) < self.prob * (1u64 << 53) as f64
    }
}

/// A network partition: `islands` sides, open during
/// `open_epoch ≤ epoch < heal_epoch`. While open the simulator refuses
/// cross-side delivery (see [`Sim::send`](crate::Sim::send)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPlan {
    islands: u64,
    open_epoch: u64,
    heal_epoch: u64,
}

impl PartitionPlan {
    /// A partition into `islands` sides, open on
    /// `open_epoch ≤ epoch < heal_epoch`.
    ///
    /// # Panics
    ///
    /// Panics unless `islands ≥ 2` and `open_epoch < heal_epoch`.
    pub fn new(islands: u64, open_epoch: u64, heal_epoch: u64) -> Self {
        assert!(islands >= 2, "a partition needs at least two islands");
        assert!(open_epoch < heal_epoch, "partition must heal after it opens");
        PartitionPlan { islands, open_epoch, heal_epoch }
    }

    /// Number of sides the network splits into.
    pub fn islands(&self) -> u64 {
        self.islands
    }

    /// First epoch the split is open.
    pub fn open_epoch(&self) -> u64 {
        self.open_epoch
    }

    /// First epoch the split is healed again.
    pub fn heal_epoch(&self) -> u64 {
        self.heal_epoch
    }

    /// Whether the split is open at `epoch`.
    pub fn active(&self, epoch: u64) -> bool {
        (self.open_epoch..self.heal_epoch).contains(&epoch)
    }

    /// Which side a node is on: its cluster group under the `cluster`
    /// [`NetModel`] (the partition follows the transit-stub topology),
    /// otherwise a pure hash of the node id.
    pub fn side_of(&self, seed: u64, node: NodeId, net: &NetModel) -> u64 {
        match net.cluster_group(node) {
            Some(group) => group % self.islands,
            None => mix(seed ^ PARTITION_SALT, node as u64, self.islands) % self.islands,
        }
    }

    /// Whether delivery `a → b` is refused at `epoch`: the split is open
    /// and the endpoints sit on different sides.
    pub fn severed(&self, seed: u64, epoch: u64, a: NodeId, b: NodeId, net: &NetModel) -> bool {
        self.active(epoch) && self.side_of(seed, a, net) != self.side_of(seed, b, net)
    }
}

/// A deterministic per-peer token bucket: the first `burst` network
/// messages a peer sends in a run are free; overflow message `k` (1-based)
/// is priced `k × delay_ms` of queueing delay through the envelope's
/// accumulated cost — latency only, never scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitPlan {
    burst: u64,
    delay_ms: u64,
}

impl RateLimitPlan {
    /// A bucket of `burst` free messages with a `delay_ms` queueing
    /// quantum per overflow position.
    ///
    /// # Panics
    ///
    /// Panics unless `burst ≥ 1` and `delay_ms ≥ 1`.
    pub fn new(burst: u64, delay_ms: u64) -> Self {
        assert!(burst >= 1, "token bucket must hold at least one message");
        assert!(delay_ms >= 1, "queueing quantum must cost time");
        RateLimitPlan { burst, delay_ms }
    }

    /// Bucket size: network messages a peer sends before queueing starts.
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Queueing quantum in virtual milliseconds.
    pub fn delay_ms(&self) -> u64 {
        self.delay_ms
    }

    /// The queueing delay of a peer's `sent`-th network message (1-based):
    /// 0 inside the bucket, `k × delay_ms` for overflow position `k`.
    pub fn queue_delay(&self, sent: u64) -> u64 {
        sent.saturating_sub(self.burst) * self.delay_ms
    }
}

/// Faults applied to a simulation run.
///
/// * Every network message is dropped independently with probability
///   `drop_prob` (the legacy RNG-stream fault — the hostile families below
///   are hash-verdict and thread-count-invariant instead).
/// * Crashed nodes silently discard anything addressed to them (checked both
///   at send and at delivery time, so crashing mid-run works).
/// * Optional hostile families: [`LossPlan`], [`PartitionPlan`],
///   [`RateLimitPlan`] — see the module docs.
///
/// # Example
///
/// ```
/// use simnet::FaultPlan;
///
/// let mut plan = FaultPlan::with_drop_prob(0.05);
/// plan.crash(3);
/// assert!(plan.is_crashed(3));
/// plan.recover(3);
/// assert!(!plan.is_crashed(3));
///
/// let hostile = FaultPlan::named_hostile("split-brain").unwrap();
/// assert!(hostile.partition().unwrap().active(1));
/// assert!(!FaultPlan::new().is_hostile());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    drop_prob: f64,
    // A BTreeSet, not a HashSet: `crashed_nodes()` iteration order (and
    // anything derived from it — victim picks, printed reports) must be a
    // pure function of the plan's contents, never of hasher seeds.
    crashed: BTreeSet<NodeId>,
    loss: Option<LossPlan>,
    partition: Option<PartitionPlan>,
    rate_limit: Option<RateLimitPlan>,
    /// The current partition epoch (advanced by the epoch driver; batch
    /// runs stay at 0).
    epoch: u64,
    /// Seed mixed into every hash verdict (alongside the simulator seed).
    plan_seed: u64,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan dropping each message independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn with_drop_prob(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
        FaultPlan { drop_prob: p, ..FaultPlan::default() }
    }

    /// Looks a hostile plan up by catalog name (see
    /// [`HOSTILE_PLAN_NAMES`]). Besides the exact catalog entries, the
    /// parameterized spellings parse too: `lossy-N` (N% independent loss,
    /// `1 ≤ N ≤ 99`) and `island-K` (K-island partition, `K ≥ 2`).
    pub fn named_hostile(name: &str) -> Option<FaultPlan> {
        let plan = match name {
            "lossy-p" => FaultPlan::default().with_loss(LossPlan::bernoulli(0.10)),
            "bursty" => FaultPlan::default().with_loss(LossPlan::bursty(0.25, 4)),
            "split-brain" => FaultPlan::default().with_partition(PartitionPlan::new(2, 1, 3)),
            "throttle" => FaultPlan::default().with_rate_limit(RateLimitPlan::new(8, 5)),
            _ => {
                if let Some(pct) = name.strip_prefix("lossy-") {
                    let pct: u64 = pct.parse().ok().filter(|p| (1..=99).contains(p))?;
                    FaultPlan::default().with_loss(LossPlan::bernoulli(pct as f64 / 100.0))
                } else if let Some(k) = name.strip_prefix("island-") {
                    let k: u64 = k.parse().ok().filter(|&k| k >= 2)?;
                    FaultPlan::default().with_partition(PartitionPlan::new(k, 0, 2))
                } else {
                    return None;
                }
            }
        };
        Some(plan)
    }

    /// Attaches a loss plan.
    pub fn with_loss(mut self, loss: LossPlan) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Attaches a partition plan.
    pub fn with_partition(mut self, partition: PartitionPlan) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Attaches a rate-limit plan.
    pub fn with_rate_limit(mut self, rate_limit: RateLimitPlan) -> Self {
        self.rate_limit = Some(rate_limit);
        self
    }

    /// Replaces the plan seed mixed into every hash verdict.
    pub fn with_plan_seed(mut self, seed: u64) -> Self {
        self.plan_seed = seed;
        self
    }

    /// The loss plan, if any.
    pub fn loss(&self) -> Option<&LossPlan> {
        self.loss.as_ref()
    }

    /// The partition plan, if any.
    pub fn partition(&self) -> Option<&PartitionPlan> {
        self.partition.as_ref()
    }

    /// The rate-limit plan, if any.
    pub fn rate_limit(&self) -> Option<&RateLimitPlan> {
        self.rate_limit.as_ref()
    }

    /// The plan seed mixed into every hash verdict.
    pub fn plan_seed(&self) -> u64 {
        self.plan_seed
    }

    /// The current partition epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the partition epoch (called by epoch drivers between
    /// epochs; batch runs stay at 0).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Whether any hostile family (loss, partition, rate limit) is
    /// attached.
    pub fn is_hostile(&self) -> bool {
        self.loss.is_some() || self.partition.is_some() || self.rate_limit.is_some()
    }

    /// Whether the plan injects no faults at all — the gate fault-unaware
    /// schemes use to accept a trivial plan instead of refusing.
    pub fn is_fault_free(&self) -> bool {
        self.drop_prob == 0.0 && self.crashed.is_empty() && !self.is_hostile()
    }

    /// The first crashed node id at or beyond `n`, if any — callers that
    /// know their network size use this to reject plans naming
    /// out-of-range peers instead of silently ignoring them.
    pub fn first_out_of_range(&self, n: usize) -> Option<NodeId> {
        self.crashed.range(n..).next().copied()
    }

    /// The message-drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Sets the message-drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
        self.drop_prob = p;
    }

    /// Marks a node as crashed.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Clears a node's crashed status.
    pub fn recover(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether a node is crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Number of crashed nodes.
    pub fn crashed_count(&self) -> usize {
        self.crashed.len()
    }

    /// Iterates over crashed nodes in ascending `NodeId` order — a
    /// deterministic order, so derived streams (victim selection, report
    /// rows) are run-independent.
    pub fn crashed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.crashed.iter().copied()
    }

    pub(crate) fn should_drop(&self, rng: &mut SmallRng) -> bool {
        self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let plan = FaultPlan::new();
        assert_eq!(plan.drop_prob(), 0.0);
        assert_eq!(plan.crashed_count(), 0);
        assert!(plan.is_fault_free());
        assert!(!plan.is_hostile());
        let mut rng = crate::rng_from_seed(1);
        for _ in 0..100 {
            assert!(!plan.should_drop(&mut rng));
        }
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let plan = FaultPlan::with_drop_prob(0.3);
        let mut rng = crate::rng_from_seed(2);
        let drops = (0..10_000).filter(|_| plan.should_drop(&mut rng)).count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_invalid_probability() {
        FaultPlan::with_drop_prob(1.5);
    }

    #[test]
    fn crashed_nodes_iterate_in_sorted_order_regardless_of_insertion() {
        // Regression: a HashSet here made crashed_nodes() run-dependent.
        let mut plan = FaultPlan::new();
        for node in [42, 7, 19, 3, 99, 7] {
            plan.crash(node);
        }
        assert_eq!(plan.crashed_nodes().collect::<Vec<_>>(), vec![3, 7, 19, 42, 99]);
        let mut reversed = FaultPlan::new();
        for node in [99, 42, 19, 7, 3] {
            reversed.crash(node);
        }
        assert_eq!(
            plan.crashed_nodes().collect::<Vec<_>>(),
            reversed.crashed_nodes().collect::<Vec<_>>(),
            "iteration order must be a pure function of the set contents"
        );
    }

    #[test]
    fn crash_and_recover() {
        let mut plan = FaultPlan::new();
        plan.crash(7);
        plan.crash(9);
        assert_eq!(plan.crashed_count(), 2);
        assert!(plan.is_crashed(7));
        plan.recover(7);
        assert!(!plan.is_crashed(7));
        assert_eq!(plan.crashed_nodes().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn out_of_range_detection_finds_the_smallest_offender() {
        let mut plan = FaultPlan::new();
        plan.crash(3);
        plan.crash(64);
        plan.crash(99);
        assert_eq!(plan.first_out_of_range(100), None);
        assert_eq!(plan.first_out_of_range(65), Some(99));
        assert_eq!(plan.first_out_of_range(10), Some(64));
        assert_eq!(FaultPlan::new().first_out_of_range(0), None);
    }

    #[test]
    fn loss_verdicts_are_pure_and_roughly_respect_probability() {
        let loss = LossPlan::bernoulli(0.10);
        let lost = (0..10_000u64).filter(|&a| loss.lost(7, 1, 2, a)).count();
        assert!((700..1_300).contains(&lost), "lost = {lost} of 10k at p=0.1");
        // Pure: same arguments, same verdict; different edges/attempts/seeds
        // decorrelate.
        for a in 0..64u64 {
            assert_eq!(loss.lost(7, 1, 2, a), loss.lost(7, 1, 2, a));
        }
        let edge_a: Vec<bool> = (0..256).map(|a| loss.lost(7, 1, 2, a)).collect();
        let edge_b: Vec<bool> = (0..256).map(|a| loss.lost(7, 3, 4, a)).collect();
        let seed_b: Vec<bool> = (0..256).map(|a| loss.lost(8, 1, 2, a)).collect();
        assert_ne!(edge_a, edge_b, "edges must decorrelate");
        assert_ne!(edge_a, seed_b, "seeds must decorrelate");
    }

    #[test]
    fn loss_extremes_are_exact() {
        let none = LossPlan::bernoulli(0.0);
        let all = LossPlan::bernoulli(1.0);
        for a in 0..100u64 {
            assert!(!none.lost(1, 0, 1, a));
            assert!(all.lost(1, 0, 1, a));
        }
    }

    #[test]
    fn bursty_loss_drops_whole_windows() {
        let loss = LossPlan::bursty(0.25, 4);
        for window in 0..256u64 {
            let verdicts: Vec<bool> =
                (window * 4..window * 4 + 4).map(|a| loss.lost(9, 5, 6, a)).collect();
            assert!(
                verdicts.iter().all(|&v| v == verdicts[0]),
                "window {window} split its verdict: {verdicts:?}"
            );
        }
        let lost = (0..4_096u64).filter(|&a| loss.lost(9, 5, 6, a)).count();
        assert!((600..1_500).contains(&lost), "lost = {lost} of 4096 at window-p=0.25");
    }

    #[test]
    fn partition_opens_and_heals_on_schedule() {
        let p = PartitionPlan::new(2, 1, 3);
        assert!(!p.active(0));
        assert!(p.active(1));
        assert!(p.active(2));
        assert!(!p.active(3));
        let net = NetModel::unit();
        // Find a cross-side pair, then check epoch gating on it.
        let a = 0;
        let b = (1..100).find(|&b| p.side_of(5, a, &net) != p.side_of(5, b, &net)).unwrap();
        assert!(!p.severed(5, 0, a, b, &net), "closed before open_epoch");
        assert!(p.severed(5, 1, a, b, &net), "open during the interval");
        assert!(!p.severed(5, 3, a, b, &net), "healed at heal_epoch");
        // Same-side pairs are never severed.
        let c = (1..100).find(|&c| p.side_of(5, a, &net) == p.side_of(5, c, &net)).unwrap();
        assert!(!p.severed(5, 1, a, c, &net));
    }

    #[test]
    fn partition_sides_split_the_network_nontrivially() {
        let p = PartitionPlan::new(3, 0, 2);
        let net = NetModel::unit();
        let mut counts = [0usize; 3];
        for n in 0..300 {
            counts[p.side_of(11, n, &net) as usize] += 1;
        }
        for (side, &c) in counts.iter().enumerate() {
            assert!(c >= 50, "side {side} holds only {c} of 300 nodes");
        }
    }

    #[test]
    fn partition_follows_cluster_groups_under_the_cluster_model() {
        let p = PartitionPlan::new(2, 0, 1);
        let net = NetModel::cluster();
        for n in 0..200 {
            let group = net.cluster_group(n).expect("cluster model exposes groups");
            assert_eq!(p.side_of(3, n, &net), group % 2, "node {n} side must track its cluster");
        }
        // The hash seed is irrelevant under the cluster model.
        assert_eq!(p.side_of(3, 42, &net), p.side_of(99, 42, &net));
    }

    #[test]
    fn rate_limit_prices_overflow_linearly() {
        let rl = RateLimitPlan::new(8, 5);
        assert_eq!(rl.queue_delay(1), 0);
        assert_eq!(rl.queue_delay(8), 0);
        assert_eq!(rl.queue_delay(9), 5);
        assert_eq!(rl.queue_delay(10), 10);
        assert_eq!(rl.queue_delay(20), 60);
    }

    #[test]
    fn hostile_catalog_round_trips_and_rejects_unknowns() {
        for name in HOSTILE_PLAN_NAMES {
            let plan = FaultPlan::named_hostile(name)
                .unwrap_or_else(|| panic!("{name} missing from catalog"));
            assert!(plan.is_hostile(), "{name} must attach a hostile family");
            assert!(!plan.is_fault_free(), "{name} must not be fault-free");
        }
        // Parameterized spellings.
        let lossy20 = FaultPlan::named_hostile("lossy-20").unwrap();
        assert_eq!(lossy20.loss().unwrap().prob(), 0.20);
        let island5 = FaultPlan::named_hostile("island-5").unwrap();
        assert_eq!(island5.partition().unwrap().islands(), 5);
        // Rejections: unknown names, out-of-band parameters.
        for bad in ["packet-storm", "lossy-0", "lossy-100", "lossy-x", "island-1", "island-"] {
            assert!(FaultPlan::named_hostile(bad).is_none(), "{bad} must not parse");
        }
    }

    #[test]
    fn epoch_advances_and_defaults_to_zero() {
        let mut plan = FaultPlan::named_hostile("split-brain").unwrap();
        assert_eq!(plan.epoch(), 0);
        assert!(!plan.partition().unwrap().active(plan.epoch()), "split-brain is closed at 0");
        plan.set_epoch(2);
        assert!(plan.partition().unwrap().active(plan.epoch()));
    }
}
