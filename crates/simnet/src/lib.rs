//! A deterministic discrete-event simulator for P2P overlay protocols.
//!
//! The Armada paper evaluates with a hop-count simulator ("we have
//! implemented the single-attribute range query scheme of Armada in the
//! FISSIONE simulator", §4.3.3). This crate is that simulator, rebuilt:
//!
//! * [`Sim`] — an event queue with a virtual clock. Protocol logic is a
//!   plain `FnMut(&mut Sim<M>, Envelope<M>)` handler, so node state lives in
//!   ordinary Rust structures captured by the closure.
//! * [`Envelope`] — a delivered message carrying its **hop depth** (overlay
//!   path length from the query origin), which is the paper's delay metric.
//! * [`FaultPlan`] — message-drop probability and crashed-node sets for
//!   robustness experiments, plus the hostile-network families
//!   ([`LossPlan`] hash-verdict per-edge loss, [`PartitionPlan`]
//!   epoch-scheduled splits, [`RateLimitPlan`] token-bucket queueing
//!   delay) whose every decision is a pure hash — see the
//!   [`faults`](FaultPlan) module docs.
//! * [`LatencyModel`] — per-hop scheduling latency (unit by default so
//!   virtual time equals hop count; edge-keyed uniform for jitter studies).
//! * [`NetModel`] — the network cost layer: named, seeded, deterministic
//!   per-edge costs in virtual milliseconds (`unit`, `lan`, `wan`,
//!   `cluster`, `straggler`), accumulated along message chains into
//!   [`Envelope::cost`] without perturbing event order — so hop metrics
//!   stay bitwise identical under every cost model.
//! * [`Summary`] / [`Samples`] — helper statistics (mean/min/max/
//!   percentiles) used by the experiment harnesses to aggregate the paper's
//!   1000-query averages; [`Samples`] merges per-shard measurement vectors
//!   deterministically for the parallel drivers.
//!
//! Determinism: all randomness flows through a seeded [`rand::rngs::SmallRng`]
//! and ties in the event queue break by sequence number, so a given seed
//! always reproduces the same run — the property the experiment harness
//! relies on to make figures reproducible.
//!
//! # Example
//!
//! ```
//! use simnet::{Envelope, Sim};
//!
//! // Three nodes in a directed line; pass a token along and count hops.
//! let next = vec![Some(1), Some(2), None];
//! let mut sim = Sim::new(42);
//! sim.send(0, 0, 0, ()); // self-delivery starts the protocol
//! let mut seen = vec![false; 3];
//! sim.run(|sim, env: Envelope<()>| {
//!     seen[env.to] = true;
//!     if let Some(n) = next[env.to] {
//!         sim.forward(&env, n, ());
//!     }
//! });
//! assert!(seen.iter().all(|&s| s));
//! assert_eq!(sim.stats().max_hop_delivered, 2); // 0 → 1 → 2
//! assert_eq!(sim.stats().messages_sent, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod faults;
mod net;
mod scratch;
mod stats;
mod trace;

pub use engine::{Envelope, LatencyModel, Sim, SimScratch};
pub use scratch::QueryScratch;
pub use faults::{FaultPlan, LossPlan, PartitionPlan, RateLimitPlan, HOSTILE_PLAN_NAMES};
pub use net::{mix, NetModel, NetModelKind, NET_MODEL_NAMES};
pub use stats::{last_first_arrival, Samples, SimStats, Summary};
pub use trace::{HopKind, TraceEvent, TraceRecord, TraceSink, Verdict};

/// Identifier of a simulated node (index into the caller's node table).
pub type NodeId = usize;

/// Virtual simulation time, in abstract ticks (equals hop count under the
/// default unit-latency model).
pub type SimTime = u64;

/// Creates the deterministic RNG used across the suite.
///
/// A thin wrapper over [`rand::SeedableRng::seed_from_u64`] so every crate
/// seeds the same way.
pub fn rng_from_seed(seed: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}
