//! Run statistics and aggregate summaries.

/// Counters accumulated by a [`Sim`](crate::Sim) run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Network messages sent (self-deliveries and local timers excluded).
    pub messages_sent: u64,
    /// Messages lost to the fault plan's drop probability.
    pub messages_dropped: u64,
    /// Messages lost to a hash-verdict [`LossPlan`](crate::LossPlan).
    pub messages_lost: u64,
    /// Messages refused because a [`PartitionPlan`](crate::PartitionPlan)
    /// severed the edge.
    pub messages_blocked: u64,
    /// Messages that overflowed a [`RateLimitPlan`](crate::RateLimitPlan)
    /// token bucket and accrued queueing delay (still delivered).
    pub messages_throttled: u64,
    /// Messages discarded because the receiver was crashed.
    pub messages_to_crashed: u64,
    /// Envelopes actually handed to the protocol handler.
    pub deliveries: u64,
    /// Maximum hop depth among delivered network messages — the paper's
    /// "delay" for a single protocol run under unit latency.
    pub max_hop_delivered: u32,
}

/// Aggregate statistics over a sample of measurements (the paper reports
/// averages over 1000 random queries per data point).
///
/// # Example
///
/// ```
/// use simnet::Summary;
///
/// let s = Summary::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.count, 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Smallest sample (0 for an empty sample).
    pub min: f64,
    /// Largest sample (0 for an empty sample).
    pub max: f64,
    /// Median (linear interpolation, 0 for an empty sample).
    pub p50: f64,
    /// 95th percentile (linear interpolation, 0 for an empty sample).
    pub p95: f64,
    /// 99th percentile (linear interpolation, 0 for an empty sample).
    pub p99: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary from any collection of `f64` samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Summary {
        Samples::from_iter(samples).summarize()
    }
}

/// A mergeable sample accumulator: collect measurements shard by shard
/// (e.g. one [`Samples`] per worker thread), [`merge`](Samples::merge) in a
/// deterministic order, then [`summarize`](Samples::summarize).
///
/// Because [`Summary::from_samples`] sorts before computing every statistic,
/// the summary of merged shards is **bitwise identical** no matter how the
/// samples were partitioned — the property the parallel query driver's
/// `threads = 1` vs `threads = N` determinism contract rests on.
///
/// # Example
///
/// ```
/// use simnet::{Samples, Summary};
///
/// let mut a = Samples::new();
/// a.push(1.0);
/// a.push(4.0);
/// let mut b = Samples::new();
/// b.push(3.0);
/// b.push(2.0);
/// a.merge(b);
/// assert_eq!(a.summarize(), Summary::from_samples([1.0, 2.0, 3.0, 4.0]));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples(Vec<f64>);

impl Samples {
    /// An empty accumulator.
    pub fn new() -> Samples {
        Samples(Vec::new())
    }

    /// Records one measurement.
    pub fn push(&mut self, x: f64) {
        self.0.push(x);
    }

    /// Appends every sample of `other` (consumed) to this accumulator.
    pub fn merge(&mut self, other: Samples) {
        self.0.extend(other.0);
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Computes the [`Summary`] of everything collected.
    pub fn summarize(self) -> Summary {
        let Samples(mut xs) = self;
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                stddev: 0.0,
            };
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let count = xs.len();
        let sum: f64 = xs.iter().sum();
        let mean = sum / count as f64;
        let var = if count > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            min: xs[0],
            max: xs[count - 1],
            p50: percentile(&xs, 0.50),
            p95: percentile(&xs, 0.95),
            p99: percentile(&xs, 0.99),
            stddev: var.sqrt(),
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Samples {
        Samples(iter.into_iter().collect())
    }
}

/// Completion cost of a scatter phase from a flat arrival log: the maximum
/// over peers of each peer's *minimum* cost — i.e. when the last reached
/// peer first heard the message. Zero for an empty log.
///
/// Protocol handlers append `(peer, cost)` per qualifying delivery and pay
/// one sort afterwards, instead of maintaining a per-peer map on the
/// delivery hot path; the result is identical because only the
/// max-over-peers of the min-over-deliveries is consumed.
///
/// # Example
///
/// ```
/// let mut log = vec![(4, 9), (2, 5), (4, 3), (2, 7)];
/// // peer 2 first hears at 5, peer 4 at 3; the phase completes at 5.
/// assert_eq!(simnet::last_first_arrival(&mut log), 5);
/// ```
pub fn last_first_arrival(log: &mut [(crate::NodeId, u64)]) -> u64 {
    log.sort_unstable();
    let mut worst = 0;
    let mut i = 0;
    while i < log.len() {
        let (peer, first) = log[i];
        worst = worst.max(first); // sorted: a peer's first entry is its min
        while i < log.len() && log[i].0 == peer {
            i += 1;
        }
    }
    worst
}

/// Linear-interpolated percentile of a **sorted** slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let idx = pos.floor() as usize;
    let frac = pos - idx as f64;
    if idx + 1 < sorted.len() {
        sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac
    } else {
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::from_samples(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples([42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_samples((1..=100).map(f64::from));
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn merged_shards_summarize_identically_to_serial() {
        // 3 shards in order vs one flat pass: bitwise-equal summaries.
        let xs: Vec<f64> = (0..97).map(|i| ((i * 31 + 7) % 50) as f64 / 3.0).collect();
        let serial = Summary::from_samples(xs.iter().copied());
        let mut merged = Samples::new();
        for chunk in xs.chunks(33) {
            merged.merge(chunk.iter().copied().collect());
        }
        assert_eq!(merged.len(), xs.len());
        assert_eq!(merged.summarize(), serial);
    }

    #[test]
    fn stddev_matches_known_value() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev - 2.13809).abs() < 1e-4, "stddev = {}", s.stddev);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Summary::from_samples([3.0, 1.0, 2.0]);
        let b = Summary::from_samples([1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
