//! The event-queue kernel: virtual clock, message scheduling, delivery.

use crate::faults::FaultPlan;
use crate::net::NetModel;
use crate::stats::SimStats;
use crate::trace::{HopKind, TraceEvent, TraceSink, Verdict};
use crate::{NodeId, SimTime};
use rand::rngs::SmallRng;
use std::borrow::Cow;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Per-hop virtual latency model governing **event scheduling** (the
/// simulator's clock).
///
/// The paper measures delay in hops, which corresponds to [`Unit`]. The
/// other variants exist for jitter/sensitivity studies; hop-depth
/// accounting (the reported metric) is independent of the latency model.
///
/// Sampling is **edge-keyed**: the cost of a hop is a pure function of
/// `(model, sim seed, src, dst)`, never of the shared RNG stream — so the
/// virtual time of a delivery cannot depend on how concurrently-scheduled
/// events happened to interleave. (The [`Uniform`] variant used to draw
/// from the simulator's `SmallRng` in delivery order, which made virtual
/// times send-order-dependent; the regression is pinned by
/// `uniform_latency_is_send_order_invariant` below.)
///
/// This is distinct from the [`NetModel`] cost layer ([`Sim::with_net`]),
/// which *accumulates* per-edge costs along message chains without
/// perturbing scheduling — see [`Envelope::cost`].
///
/// [`Unit`]: LatencyModel::Unit
/// [`Uniform`]: LatencyModel::Uniform
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LatencyModel {
    /// Every hop takes exactly one tick (virtual time = hop count).
    #[default]
    Unit,
    /// Every hop takes a fixed number of ticks.
    Fixed(u64),
    /// Hop latency keyed uniformly into `lo..=hi` ticks per edge.
    Uniform {
        /// Minimum per-hop latency.
        lo: u64,
        /// Maximum per-hop latency.
        hi: u64,
    },
}

impl LatencyModel {
    /// The scheduling cost of edge `src → dst` under simulator seed `seed`
    /// — a pure function of its arguments (no RNG stream; the hash is
    /// [`crate::net::mix`], shared with [`NetModel`] edge costs).
    fn cost(&self, seed: u64, src: NodeId, dst: NodeId) -> u64 {
        match *self {
            LatencyModel::Unit => 1,
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "empty latency range [{lo}, {hi}]");
                let key = crate::net::mix(seed, src as u64, dst as u64);
                // A full-domain span (hi − lo + 1 overflows) admits every
                // u64, so the key is already a valid sample.
                match (hi.wrapping_sub(lo)).checked_add(1) {
                    Some(span) => lo + key % span,
                    None => key,
                }
            }
        }
    }
}

/// A message delivered to a node.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Overlay hop depth: number of hops from the protocol's origin. The
    /// initial self-delivery that starts a protocol has depth 0.
    pub hop: u32,
    /// Virtual time of delivery.
    pub at: SimTime,
    /// Accumulated [`NetModel`] cost (virtual milliseconds) along this
    /// message's forwarding chain: the parent envelope's cost plus the
    /// edge cost of the final hop. Under the default `unit` model this
    /// equals `hop` — accumulation never perturbs scheduling, so hop
    /// metrics and message sets are identical under every cost model.
    pub cost: u64,
    /// Protocol payload.
    pub payload: M,
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    env: Envelope<M>,
}

// Manual ordering: BinaryHeap is a max-heap, so invert to pop earliest
// (time, seq) first. Only `at` and `seq` participate — seq is unique, which
// both breaks ties FIFO and spares `M: Eq` bounds.
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulator.
///
/// Generic over the protocol message type `M`. Create one `Sim` per
/// query/protocol run — or, on hot paths, recycle the internal collections
/// across runs via [`Sim::from_scratch`]/[`Sim::recycle`] so batch drivers
/// amortize all queue/lane capacity.
///
/// The fault plan is held as a [`Cow`]: batch query paths borrow the
/// caller's plan ([`Sim::with_faults_ref`], zero clones per query) while
/// tests and churn experiments that mutate the plan mid-run keep the owned
/// form ([`Sim::with_faults`]; [`Sim::faults_mut`] clones on first write).
pub struct Sim<'p, M> {
    now: SimTime,
    seq: u64,
    seed: u64,
    /// Far-future events (`at ≥ now + 2` when pushed). The common unit-tick
    /// case never touches this heap: events landing at `now` or `now + 1`
    /// go to the ready-time lanes below, which preserve `(at, seq)` order
    /// by construction (the sequence counter is monotone, so lane FIFO
    /// order *is* seq order).
    queue: BinaryHeap<Scheduled<M>>,
    /// The cohort being delivered: events at `now`, in seq order.
    cur: VecDeque<Envelope<M>>,
    /// Events at `now + 1`, in seq order.
    next: VecDeque<Envelope<M>>,
    rng: SmallRng,
    latency: LatencyModel,
    net: NetModel,
    faults: Cow<'p, FaultPlan>,
    stats: SimStats,
    // Hostile-fault bookkeeping, touched only when the matching family is
    // attached. BTreeMaps (not HashMaps): entries are created in
    // deterministic event order and must never leak hasher state.
    /// Delivery attempts per directed edge — the loss plan's attempt index.
    edge_attempts: BTreeMap<(NodeId, NodeId), u64>,
    /// Network messages sent per peer — the rate limiter's bucket counter.
    peer_sends: BTreeMap<NodeId, u64>,
    /// The observability plane: `None` (the default) keeps every emission
    /// site a single branch with no allocation, so traced-off runs are
    /// bit-identical to pre-trace builds.
    trace: Option<Box<TraceSink>>,
}

impl<M> std::fmt::Debug for Sim<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'p, M> Sim<'p, M> {
    /// Creates a simulator with the default unit-latency model and no
    /// faults, seeded deterministically.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: 0,
            seq: 0,
            seed,
            queue: BinaryHeap::new(),
            cur: VecDeque::new(),
            next: VecDeque::new(),
            rng: crate::rng_from_seed(seed),
            latency: LatencyModel::Unit,
            net: NetModel::unit(),
            faults: Cow::Owned(FaultPlan::default()),
            stats: SimStats::default(),
            edge_attempts: BTreeMap::new(),
            peer_sends: BTreeMap::new(),
            trace: None,
        }
    }

    /// [`new`](Sim::new), recycling the collections parked in `scratch` by a
    /// previous run's [`recycle`](Sim::recycle) — the event heap and cohort
    /// lanes keep their grown capacity, so steady-state queries allocate
    /// nothing for scheduling. The scratch's collections are left empty.
    pub fn from_scratch(seed: u64, scratch: &mut SimScratch<M>) -> Self {
        let mut sim = Sim::new(seed);
        sim.queue = std::mem::take(&mut scratch.queue);
        sim.cur = std::mem::take(&mut scratch.cur);
        sim.next = std::mem::take(&mut scratch.next);
        sim.edge_attempts = std::mem::take(&mut scratch.edge_attempts);
        sim.peer_sends = std::mem::take(&mut scratch.peer_sends);
        debug_assert!(sim.pending() == 0, "recycled scratch must arrive empty");
        sim
    }

    /// Parks this simulator's collections in `scratch` for the next
    /// [`from_scratch`](Sim::from_scratch), clearing them first. The heap
    /// and lanes retain capacity across the round trip; the fault
    /// bookkeeping maps are node-allocated (`BTreeMap`) so clearing frees
    /// them, but they are only ever populated under hostile plans.
    pub fn recycle(mut self, scratch: &mut SimScratch<M>) {
        self.queue.clear();
        self.cur.clear();
        self.next.clear();
        self.edge_attempts.clear();
        self.peer_sends.clear();
        scratch.queue = std::mem::take(&mut self.queue);
        scratch.cur = std::mem::take(&mut self.cur);
        scratch.next = std::mem::take(&mut self.next);
        scratch.edge_attempts = std::mem::take(&mut self.edge_attempts);
        scratch.peer_sends = std::mem::take(&mut self.peer_sends);
    }

    /// Attaches a [`TraceSink`]: from here on every send verdict, scheduled
    /// hop, and delivery emits a structured virtual-time event. Tracing
    /// never changes scheduling, stats, or RNG consumption — it only
    /// records what already happened.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(Box::new(sink));
        self
    }

    /// Detaches and returns the trace sink, if one was attached.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take().map(|b| *b)
    }

    /// True when a trace sink is attached (protocols may use this to skip
    /// building event metadata on the hot path).
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Records that the delivery in `env` *answers* the query — called by
    /// protocol handlers at the site where they push an arrival. No-op
    /// without an attached sink.
    pub fn trace_answer(&mut self, env: &Envelope<M>) {
        if self.trace.is_some() {
            let ev = TraceEvent::Answer { node: env.to, hop: env.hop, cost_ms: env.cost };
            self.emit(ev);
        }
    }

    /// Appends `event` at the current virtual time. No-op when no sink is
    /// attached.
    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.emit(self.now, event);
        }
    }

    /// Replaces the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the [`NetModel`] whose per-edge costs accumulate into
    /// [`Envelope::cost`]. Scheduling (and therefore event order, hop
    /// metrics, and message sets) is unaffected: the cost layer rides on
    /// top of the unit-tick clock.
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// The cost model in force.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Replaces the fault plan (owned — the sim may mutate it mid-run via
    /// [`faults_mut`](Sim::faults_mut) without touching the caller's copy).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Cow::Owned(faults);
        self
    }

    /// Replaces the fault plan by reference — the per-query hot path: no
    /// clone, the plan is shared for the run. A later
    /// [`faults_mut`](Sim::faults_mut) clones on first write, so borrowed
    /// plans stay safe under mid-run mutation too.
    pub fn with_faults_ref(mut self, faults: &'p FaultPlan) -> Self {
        self.faults = Cow::Borrowed(faults);
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Clears statistics (keeps clock, faults and RNG state).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Mutable access to the fault plan (e.g. to crash nodes mid-run).
    /// Clones a borrowed plan on first call — cold paths only.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        self.faults.to_mut()
    }

    /// The fault plan in force.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Deterministic RNG for protocol-level decisions.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Sends a protocol message from `from` to `to` with explicit hop depth.
    ///
    /// Counts one message (unless `from == to`, which models local
    /// self-delivery used to start protocols and is free, like the paper's
    /// convention that the origin peer's local processing costs no hops).
    /// The message may be dropped or ignored according to the [`FaultPlan`].
    pub fn send(&mut self, from: NodeId, to: NodeId, hop: u32, payload: M) {
        self.send_with_cost(from, to, hop, 0, payload);
    }

    /// [`send`](Self::send) with an explicit accumulated-cost base: the
    /// envelope's [`cost`](Envelope::cost) is `base_cost` plus the edge's
    /// [`NetModel`] cost. Protocols use this where a message chain
    /// continues through a local hand-off (e.g. a routing phase switching
    /// to a flooding phase by self-delivery), so the chain's cost is not
    /// reset to zero.
    pub fn send_with_cost(
        &mut self,
        from: NodeId,
        to: NodeId,
        hop: u32,
        base_cost: u64,
        payload: M,
    ) {
        let is_network = from != to;
        // The rate limiter's queueing delay for this message (computed up
        // front so the token bucket counts every send attempt — a throttled
        // sender queues messages whether or not the network then loses
        // them — but priced only onto messages that actually schedule).
        let mut queueing = 0;
        if is_network {
            self.stats.messages_sent += 1;
            if let Some(rl) = self.faults.rate_limit() {
                let sent = self.peer_sends.entry(from).or_insert(0);
                *sent += 1;
                queueing = rl.queue_delay(*sent);
                if queueing > 0 {
                    self.stats.messages_throttled += 1;
                    if self.trace.is_some() {
                        // Throttled is a *pricing* verdict: the message
                        // still schedules, with `queueing` folded into its
                        // edge cost below.
                        let plan = format!("rate-limit +{queueing}ms");
                        let ev = TraceEvent::FaultVerdict {
                            src: from,
                            dst: to,
                            verdict: Verdict::Throttled,
                            plan,
                        };
                        self.emit(ev);
                    }
                }
            }
            // Partition: cross-side delivery is refused while the split is
            // open. Checked at send time only — the epoch advances between
            // protocol runs, never mid-run.
            if let Some(part) = self.faults.partition() {
                let seed = self.faults.plan_seed() ^ self.seed;
                let epoch = self.faults.epoch();
                if part.severed(seed, epoch, from, to, &self.net) {
                    self.stats.messages_blocked += 1;
                    if self.trace.is_some() {
                        let plan = format!("partition epoch {epoch}");
                        let ev = TraceEvent::FaultVerdict {
                            src: from,
                            dst: to,
                            verdict: Verdict::Blocked,
                            plan,
                        };
                        self.emit(ev);
                    }
                    return;
                }
            }
            if self.faults.should_drop(&mut self.rng) {
                self.stats.messages_dropped += 1;
                if self.trace.is_some() {
                    let ev = TraceEvent::FaultVerdict {
                        src: from,
                        dst: to,
                        verdict: Verdict::Dropped,
                        plan: "drop-prob".to_string(),
                    };
                    self.emit(ev);
                }
                return;
            }
            // Hash-verdict loss: the attempt index is this edge's delivery
            // counter, so re-sends (retries) of the same edge get fresh
            // verdicts while the whole stream stays a pure function of the
            // event order — itself deterministic per seed.
            if let Some(loss) = self.faults.loss() {
                let attempt = self.edge_attempts.get(&(from, to)).copied().unwrap_or(0);
                let verdict = loss.lost(self.faults.plan_seed() ^ self.seed, from, to, attempt);
                self.edge_attempts.insert((from, to), attempt + 1);
                if verdict {
                    self.stats.messages_lost += 1;
                    if self.trace.is_some() {
                        let plan = format!("hash-loss attempt {attempt}");
                        let ev = TraceEvent::FaultVerdict {
                            src: from,
                            dst: to,
                            verdict: Verdict::Lost,
                            plan,
                        };
                        self.emit(ev);
                    }
                    return;
                }
            }
        }
        if self.faults.is_crashed(to) {
            self.stats.messages_to_crashed += 1;
            if self.trace.is_some() {
                let ev = TraceEvent::FaultVerdict {
                    src: from,
                    dst: to,
                    verdict: Verdict::ToCrashed,
                    plan: "crashed receiver".to_string(),
                };
                self.emit(ev);
            }
            return;
        }
        let latency = if is_network { self.latency.cost(self.seed, from, to) } else { 0 };
        let edge_cost = queueing + if is_network { self.net.edge_cost(from, to) } else { 0 };
        let cost = base_cost + edge_cost;
        if self.trace.is_some() {
            let kind = if is_network { HopKind::Network } else { HopKind::Local };
            let ev = TraceEvent::Hop {
                src: from,
                dst: to,
                hop,
                edge_cost_ms: edge_cost,
                cost_ms: cost,
                kind,
            };
            self.emit(ev);
        }
        let env = Envelope { from, to, hop, at: self.now + latency, cost, payload };
        self.enqueue(env);
    }

    /// Routes an event to the ready-time lane for its delivery time, or to
    /// the heap when it lands further out than `now + 1`.
    fn enqueue(&mut self, env: Envelope<M>) {
        self.seq += 1;
        if env.at == self.now {
            self.cur.push_back(env);
        } else if env.at == self.now + 1 {
            self.next.push_back(env);
        } else {
            self.queue.push(Scheduled { at: env.at, seq: self.seq, env });
        }
    }

    /// Forwards in response to a received envelope: hop depth increments
    /// and the accumulated [`NetModel`] cost carries over automatically.
    pub fn forward(&mut self, received: &Envelope<M>, to: NodeId, payload: M) {
        self.send_with_cost(received.to, to, received.hop + 1, received.cost, payload);
    }

    /// Schedules a local (non-network) event at `delay` ticks in the future;
    /// hop depth is preserved. Used for timers/retries. Not counted as a
    /// message and free under every cost model.
    pub fn schedule_local(&mut self, node: NodeId, delay: u64, hop: u32, payload: M) {
        if self.faults.is_crashed(node) {
            return;
        }
        let env = Envelope { from: node, to: node, hop, at: self.now + delay, cost: 0, payload };
        self.enqueue(env);
    }

    /// Runs until the queue drains, calling `handler` for each delivery.
    ///
    /// Events are drained in ready-time cohorts: the whole cohort for the
    /// current tick is assembled once, then delivered FIFO — the exact
    /// `(at, seq)` order the per-event heap pops produced, without a heap
    /// operation per unit-latency event.
    ///
    /// A node crashed *after* a message to it was scheduled still does not
    /// receive it (the crash check is repeated at delivery time).
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Sim<'p, M>, Envelope<M>),
    {
        loop {
            let Some(env) = self.cur.pop_front() else {
                if self.advance() {
                    continue;
                }
                break;
            };
            debug_assert!(env.at == self.now, "cohort member off its tick");
            if self.faults.is_crashed(env.to) {
                self.stats.messages_to_crashed += 1;
                if self.trace.is_some() {
                    let ev = TraceEvent::FaultVerdict {
                        src: env.from,
                        dst: env.to,
                        verdict: Verdict::ToCrashed,
                        plan: "crashed at delivery".to_string(),
                    };
                    self.emit(ev);
                }
                continue;
            }
            self.stats.deliveries += 1;
            if env.from != env.to {
                self.stats.max_hop_delivered = self.stats.max_hop_delivered.max(env.hop);
            }
            if self.trace.is_some() {
                let ev = TraceEvent::Delivery { node: env.to, hop: env.hop, cost_ms: env.cost };
                self.emit(ev);
            }
            handler(self, env);
        }
    }

    /// Advances the clock to the earliest pending tick and assembles that
    /// tick's cohort in `cur`. Heap events at the new tick were pushed
    /// before its lane opened (at a smaller `now`), so they carry smaller
    /// sequence numbers and drain first — the heap itself yields equal-time
    /// events in seq order, and the lane is already FIFO-by-seq. Returns
    /// `false` when nothing is pending.
    fn advance(&mut self) -> bool {
        debug_assert!(self.cur.is_empty(), "advance with an undelivered cohort");
        let lane_t = if self.next.is_empty() { None } else { Some(self.now + 1) };
        let heap_t = self.queue.peek().map(|s| s.at);
        let Some(t) = [lane_t, heap_t].into_iter().flatten().min() else {
            return false;
        };
        debug_assert!(t > self.now, "time must not run backwards");
        while self.queue.peek().is_some_and(|s| s.at == t) {
            let s = self.queue.pop().expect("peeked above");
            self.cur.push_back(s.env);
        }
        if t == self.now + 1 {
            self.cur.append(&mut self.next);
        }
        self.now = t;
        true
    }

    /// Number of undelivered events still queued (non-zero only if `run`
    /// has not been called or a handler re-enqueued work).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.cur.len() + self.next.len()
    }
}

/// Parked [`Sim`] collections for reuse across queries: the far-future
/// event heap, both cohort lanes, and the fault-bookkeeping maps. One
/// lives per driver thread; a query builds its simulator with
/// [`Sim::from_scratch`] and parks the collections back with
/// [`Sim::recycle`], so steady-state scheduling allocates nothing.
///
/// Recycling is observationally inert: a recycled `Sim` starts from the
/// identical logical state as a fresh one (empty collections, fresh RNG,
/// clock at zero) — only retained *capacity* differs, which no metric,
/// digest, or trace can see.
pub struct SimScratch<M> {
    queue: BinaryHeap<Scheduled<M>>,
    cur: VecDeque<Envelope<M>>,
    next: VecDeque<Envelope<M>>,
    edge_attempts: BTreeMap<(NodeId, NodeId), u64>,
    peer_sends: BTreeMap<NodeId, u64>,
}

impl<M> Default for SimScratch<M> {
    fn default() -> Self {
        SimScratch {
            queue: BinaryHeap::new(),
            cur: VecDeque::new(),
            next: VecDeque::new(),
            edge_attempts: BTreeMap::new(),
            peer_sends: BTreeMap::new(),
        }
    }
}

impl<M> SimScratch<M> {
    /// An empty scratch (no capacity reserved yet).
    pub fn new() -> Self {
        Self::default()
    }
}

impl<M> std::fmt::Debug for SimScratch<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimScratch")
            .field("queue_capacity", &self.queue.capacity())
            .field("lane_capacity", &(self.cur.capacity() + self.next.capacity()))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_then_fifo_order() {
        let mut sim: Sim<&str> = Sim::new(1);
        sim.send(0, 1, 0, "a"); // t=1
        sim.send(0, 2, 0, "b"); // t=1, after "a"
        sim.schedule_local(0, 0, 0, "now"); // t=0
        let mut order = Vec::new();
        sim.run(|_, env| order.push(env.payload));
        assert_eq!(order, vec!["now", "a", "b"]);
    }

    #[test]
    fn hop_depth_increments_on_forward() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.send(0, 0, 0, 3); // start at node 0 with 3 forwards to do
        sim.run(|sim, env| {
            if env.payload > 0 {
                sim.forward(&env, env.to + 1, env.payload - 1);
            }
        });
        assert_eq!(sim.stats().max_hop_delivered, 3);
        assert_eq!(sim.stats().messages_sent, 3);
    }

    #[test]
    fn self_delivery_is_free() {
        let mut sim: Sim<()> = Sim::new(1);
        sim.send(5, 5, 0, ());
        sim.run(|_, _| {});
        assert_eq!(sim.stats().messages_sent, 0);
        assert_eq!(sim.stats().deliveries, 1);
    }

    #[test]
    fn crashed_nodes_never_receive() {
        let mut sim: Sim<()> = Sim::new(1);
        sim.faults_mut().crash(1);
        sim.send(0, 1, 0, ());
        let mut delivered = 0;
        sim.run(|_, _| delivered += 1);
        assert_eq!(delivered, 0);
        assert_eq!(sim.stats().messages_to_crashed, 1);
        assert_eq!(sim.stats().messages_sent, 1); // send still cost a message
    }

    #[test]
    fn crash_after_scheduling_still_blocks_delivery() {
        let mut sim: Sim<u8> = Sim::new(1);
        sim.send(0, 0, 0, 0);
        let mut got_second = false;
        sim.run(|sim, env| {
            if env.payload == 0 {
                sim.forward(&env, 1, 1);
                sim.faults_mut().crash(1); // crash after the send
            } else {
                got_second = true;
            }
        });
        assert!(!got_second);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut sim: Sim<()> = Sim::new(1).with_faults(FaultPlan::with_drop_prob(1.0));
        sim.send(0, 1, 0, ());
        let mut delivered = 0;
        sim.run(|_, _| delivered += 1);
        assert_eq!(delivered, 0);
        assert_eq!(sim.stats().messages_dropped, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim: Sim<u64> =
                Sim::new(seed).with_latency(LatencyModel::Uniform { lo: 1, hi: 9 });
            sim.send(0, 0, 0, 10);
            let mut times = Vec::new();
            sim.run(|sim, env| {
                times.push(env.at);
                if env.payload > 0 {
                    sim.forward(&env, (env.to + 1) % 4, env.payload - 1);
                }
            });
            times
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn uniform_latency_accumulates_time() {
        let mut sim: Sim<u8> = Sim::new(3).with_latency(LatencyModel::Fixed(5));
        sim.send(0, 1, 0, 0);
        sim.run(|_, _| {});
        assert_eq!(sim.now(), 5);
    }

    #[test]
    fn uniform_latency_is_send_order_invariant() {
        // Regression: Uniform used to draw from the shared SmallRng in
        // delivery order, so an edge's virtual cost depended on how sends
        // interleaved. Edge-keyed sampling makes the cost a pure function
        // of (seed, src, dst): the same plan sent in a different order
        // yields the same per-edge delivery times.
        let edges = [(0usize, 1usize), (2, 3), (4, 5), (1, 4), (3, 0)];
        let deliver = |order: &[usize]| -> std::collections::BTreeMap<(NodeId, NodeId), SimTime> {
            let mut sim: Sim<()> =
                Sim::new(11).with_latency(LatencyModel::Uniform { lo: 1, hi: 50 });
            for &i in order {
                let (a, b) = edges[i];
                sim.send(a, b, 0, ());
            }
            let mut times = std::collections::BTreeMap::new();
            sim.run(|_, env| {
                times.insert((env.from, env.to), env.at);
            });
            times
        };
        let forward = deliver(&[0, 1, 2, 3, 4]);
        let reversed = deliver(&[4, 3, 2, 1, 0]);
        assert_eq!(forward, reversed, "edge costs must not depend on send order");
        assert!(forward.values().any(|&t| t > 1), "jitter must actually vary costs");
    }

    #[test]
    fn envelope_cost_accumulates_net_model_edges() {
        use crate::net::NetModel;
        let wan = NetModel::wan();
        let mut sim: Sim<u8> = Sim::new(5).with_net(wan);
        sim.send(0, 0, 0, 3); // free self-delivery starts the chain
        let mut costs = Vec::new();
        sim.run(|sim, env| {
            costs.push((env.to, env.cost));
            if env.payload > 0 {
                sim.forward(&env, env.to + 1, env.payload - 1);
            }
        });
        assert_eq!(costs[0], (0, 0), "self-delivery is cost-free");
        assert_eq!(costs[1].1, wan.edge_cost(0, 1));
        assert_eq!(costs[2].1, wan.edge_cost(0, 1) + wan.edge_cost(1, 2));
        // Scheduling stayed on unit ticks: hop order is unperturbed.
        assert_eq!(sim.now(), 3);
        // An explicit base cost carries a chain across a local hand-off.
        let mut sim2: Sim<u8> = Sim::new(5).with_net(wan);
        sim2.send_with_cost(7, 8, 4, 100, 0);
        sim2.run(|_, env| assert_eq!(env.cost, 100 + wan.edge_cost(7, 8)));
    }

    #[test]
    fn partition_refuses_cross_side_delivery_until_heal() {
        use crate::faults::PartitionPlan;
        let plan = FaultPlan::new().with_partition(PartitionPlan::new(2, 1, 3)).with_plan_seed(0x9);
        // Find a cross-side pair under this sim's effective verdict seed.
        let probe: Sim<()> = Sim::new(4).with_faults_ref(&plan);
        let seed = probe.faults().plan_seed() ^ 4;
        let part = *plan.partition().unwrap();
        let a = 0;
        let b = (1..64)
            .find(|&b| part.side_of(seed, a, probe.net()) != part.side_of(seed, b, probe.net()))
            .expect("a 2-island split has both sides");
        let deliveries = |epoch: u64| {
            // detlint: allow(D6) — test builds an owned per-epoch variant to mutate
            let mut p = plan.clone();
            p.set_epoch(epoch);
            let mut sim: Sim<()> = Sim::new(4).with_faults(p);
            sim.send(a, b, 0, ());
            let mut got = 0;
            sim.run(|_, _| got += 1);
            (got, sim.stats().messages_blocked)
        };
        assert_eq!(deliveries(0), (1, 0), "closed before open_epoch");
        assert_eq!(deliveries(1), (0, 1), "severed during the interval");
        assert_eq!(deliveries(2), (0, 1), "still severed");
        assert_eq!(deliveries(3), (1, 0), "healed at heal_epoch");
    }

    #[test]
    fn loss_plan_verdicts_are_replayable_and_counted() {
        use crate::faults::LossPlan;
        let run = |seed: u64| {
            let plan = FaultPlan::new().with_loss(LossPlan::bernoulli(0.3));
            let mut sim: Sim<u64> = Sim::new(seed).with_faults(plan);
            for i in 0..200 {
                sim.send(0, 1 + (i as usize % 7), 0, i);
            }
            let mut delivered = Vec::new();
            sim.run(|_, env| delivered.push(env.payload));
            (delivered, sim.stats().messages_lost)
        };
        let (delivered, lost) = run(21);
        assert_eq!(run(21), (delivered.clone(), lost), "verdicts replay exactly");
        assert!(lost > 20 && lost < 100, "lost = {lost} of 200 at p=0.3");
        assert_eq!(delivered.len() as u64 + lost, 200);
        assert_ne!(run(22).1, 0, "a different sim seed still loses messages");
    }

    #[test]
    fn loss_attempt_counter_gives_retries_fresh_verdicts() {
        use crate::faults::LossPlan;
        // p=0.5: across 64 attempts of the same edge both verdicts occur —
        // proof the per-edge attempt counter advances (a retry is not
        // doomed to repeat its predecessor's fate).
        let plan = FaultPlan::new().with_loss(LossPlan::bernoulli(0.5));
        let mut sim: Sim<u8> = Sim::new(6).with_faults(plan);
        for _ in 0..64 {
            sim.send(2, 3, 0, 0);
        }
        sim.run(|_, _| {});
        let lost = sim.stats().messages_lost;
        assert!(lost > 0 && lost < 64, "verdicts must vary across attempts, lost = {lost}");
    }

    #[test]
    fn rate_limit_prices_overflow_without_perturbing_schedule() {
        use crate::faults::RateLimitPlan;
        let plan = FaultPlan::new().with_rate_limit(RateLimitPlan::new(2, 5));
        let mut sim: Sim<u8> = Sim::new(8).with_faults(plan);
        for _ in 0..4 {
            sim.send(0, 1, 0, 0);
        }
        let mut costs = Vec::new();
        sim.run(|_, env| costs.push((env.at, env.cost)));
        // Unit net model: base edge cost 1. Bucket of 2, then 5 ms × k.
        assert_eq!(
            costs.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            vec![1, 1, 6, 11],
            "overflow queues linearly on the cost path"
        );
        // Scheduling stayed on unit ticks for all four messages.
        assert!(costs.iter().all(|&(at, _)| at == 1), "queueing must never delay the clock");
        assert_eq!(sim.stats().messages_throttled, 2);
        assert_eq!(sim.stats().deliveries, 4);
    }

    #[test]
    fn trace_records_hops_verdicts_and_deliveries() {
        use crate::faults::LossPlan;
        use crate::trace::{TraceEvent, TraceSink, Verdict};
        let plan = FaultPlan::new().with_loss(LossPlan::bernoulli(0.5));
        let run = || {
            let mut sim: Sim<u8> =
                Sim::new(6).with_faults_ref(&plan).with_trace(TraceSink::new());
            for _ in 0..16 {
                sim.send(2, 3, 0, 0);
            }
            sim.run(|sim, env| sim.trace_answer(&env));
            sim.take_trace().expect("sink attached")
        };
        let trace = run();
        let lost = trace
            .records()
            .iter()
            .filter(|r| matches!(&r.event, TraceEvent::FaultVerdict { verdict: Verdict::Lost, .. }))
            .count();
        let hops =
            trace.records().iter().filter(|r| matches!(&r.event, TraceEvent::Hop { .. })).count();
        let answers = trace
            .records()
            .iter()
            .filter(|r| matches!(&r.event, TraceEvent::Answer { .. }))
            .count();
        assert_eq!(lost + hops, 16, "every send got exactly one ruling");
        assert_eq!(answers, hops, "every delivery was marked as answering");
        assert!(lost > 0 && hops > 0, "p=0.5 over 16 attempts produces both");
        // The stream is (time, id)-ordered and replays byte-identically.
        let lines: Vec<String> = trace.records().iter().map(|r| r.to_json_line()).collect();
        let replay: Vec<String> = run().records().iter().map(|r| r.to_json_line()).collect();
        assert_eq!(lines, replay);
        let mut stamps: Vec<(u64, u64)> = trace.records().iter().map(|r| (r.time, r.id)).collect();
        let unsorted = stamps.clone();
        stamps.sort_unstable();
        assert_eq!(unsorted, stamps);
    }

    #[test]
    fn tracing_never_perturbs_stats_or_outcomes() {
        use crate::faults::LossPlan;
        use crate::trace::TraceSink;
        let plan = FaultPlan::new().with_loss(LossPlan::bernoulli(0.3));
        let run = |traced: bool| {
            let mut sim: Sim<u64> =
                Sim::new(21).with_faults_ref(&plan).with_net(NetModel::wan());
            if traced {
                sim = sim.with_trace(TraceSink::new());
            }
            sim.send(0, 0, 0, 6);
            let mut seen = Vec::new();
            sim.run(|sim, env| {
                seen.push((env.to, env.hop, env.cost, env.at));
                if env.payload > 0 {
                    sim.forward(&env, (env.to + 1) % 5, env.payload - 1);
                }
            });
            (seen, sim.stats().clone())
        };
        assert_eq!(run(false), run(true), "the sink must be observation-only");
    }

    #[test]
    fn recycled_sim_replays_a_fresh_sim_exactly() {
        // A Sim built from recycled scratch must be logically identical to
        // a fresh one: same deliveries, same stats, same virtual times —
        // under jittered latency (heap traffic) and a lossy plan (RNG +
        // bookkeeping traffic), across several recycles.
        use crate::faults::LossPlan;
        let plan = FaultPlan::new().with_loss(LossPlan::bernoulli(0.3));
        let run = |sim: &mut Sim<u64>| {
            for i in 0..40 {
                sim.send(i % 7, (i + 1) % 7, 0, i as u64);
            }
            let mut seen = Vec::new();
            sim.run(|_, env| seen.push((env.from, env.to, env.at, env.payload)));
            (seen, sim.stats().clone())
        };
        let fresh = {
            let mut sim: Sim<u64> = Sim::new(17)
                .with_latency(LatencyModel::Uniform { lo: 1, hi: 9 })
                .with_faults_ref(&plan);
            run(&mut sim)
        };
        let mut scratch = SimScratch::new();
        for round in 0..3 {
            let mut sim: Sim<u64> = Sim::from_scratch(17, &mut scratch)
                .with_latency(LatencyModel::Uniform { lo: 1, hi: 9 })
                .with_faults_ref(&plan);
            assert_eq!(run(&mut sim), fresh, "round {round} diverged");
            sim.recycle(&mut scratch);
        }
    }

    #[test]
    fn borrowed_fault_plan_clones_on_first_write_only() {
        let plan = FaultPlan::new();
        let mut sim: Sim<()> = Sim::new(1).with_faults_ref(&plan);
        sim.faults_mut().crash(3); // copy-on-write: the caller's plan is untouched
        assert!(sim.faults().is_crashed(3));
        assert!(!plan.is_crashed(3));
    }

    #[test]
    fn unit_net_model_cost_equals_hop_depth() {
        let mut sim: Sim<u8> = Sim::new(9);
        sim.send(0, 0, 0, 4);
        sim.run(|sim, env| {
            assert_eq!(env.cost, u64::from(env.hop), "unit cost reproduces hop ticks");
            if env.payload > 0 {
                sim.forward(&env, env.to + 1, env.payload - 1);
            }
        });
    }
}
