//! SCRAP (Ganesan, Yang & Garcia-Molina, WebDB 2004): multi-attribute range
//! queries by z-order mapping over a Skip Graph — the `O(logN + n)`
//! multi-attribute row of the Armada paper's Table 1.
//!
//! SCRAP composes two ideas this workspace already has: points are mapped to
//! one dimension with a space-filling curve ([`sfc`]), and the resulting
//! keys are range-partitioned over a [`skipgraph`]. A rectangle query
//! decomposes into contiguous curve ranges, each answered by a Skip Graph
//! range query (search `O(logN)` + walk `O(n)`), issued in parallel from the
//! client.
//!
//! # Example
//!
//! ```
//! use scrap::ScrapNet;
//!
//! let mut rng = simnet::rng_from_seed(10);
//! let mut net = ScrapNet::build(64, &[(0.0, 10.0), (0.0, 10.0)], &mut rng)?;
//! net.publish(&[5.0, 5.0], 1)?;
//! net.publish(&[9.0, 1.0], 2)?;
//! let origin = net.random_node(&mut rng);
//! let out = net.range_query(origin, &[(4.0, 6.0), (4.0, 6.0)])?;
//! assert_eq!(out.results, vec![1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheme;

pub use scheme::register;

use rand::rngs::SmallRng;
use sfc::{merge_ranges, ZSpace};
use simnet::NodeId;
use skipgraph::SkipGraphNet;

/// Bits per attribute for the z-order quantisation.
pub const DEFAULT_BITS: u32 = 10;

/// Errors returned by SCRAP operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ScrapError {
    /// Wrong number of attributes.
    WrongArity {
        /// Expected attribute count.
        expected: usize,
        /// Supplied attribute count.
        got: usize,
    },
    /// An attribute domain or query range was empty.
    EmptyRange {
        /// Index of the offending attribute.
        attribute: usize,
    },
}

impl std::fmt::Display for ScrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapError::WrongArity { expected, got } => {
                write!(f, "expected {expected} attributes, got {got}")
            }
            ScrapError::EmptyRange { attribute } => {
                write!(f, "empty range for attribute {attribute}")
            }
        }
    }
}

impl std::error::Error for ScrapError {}

/// Result of a SCRAP range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapOutcome {
    /// Matching record handles, ascending.
    pub results: Vec<u64>,
    /// Critical-path delay: the slowest of the parallel per-range Skip
    /// Graph queries.
    pub delay: u32,
    /// The same parallel-range critical path in virtual milliseconds
    /// under the deployment's [`NetModel`](simnet::NetModel): the slowest
    /// per-range Skip Graph latency. Equals `delay` under `unit`.
    pub latency: u64,
    /// Total messages across all ranges.
    pub messages: u64,
    /// Curve ranges queried.
    pub ranges: usize,
}

/// A SCRAP deployment: Skip Graph keyed by curve position + z-order mapping.
#[derive(Debug, Clone)]
pub struct ScrapNet {
    skip: SkipGraphNet,
    zspace: ZSpace,
    domains: Vec<(f64, f64)>,
    /// Points by handle, for final rectangle filtering. BTreeMap so every
    /// walk over the stored points runs in handle order.
    points: std::collections::BTreeMap<u64, Vec<f64>>,
}

impl ScrapNet {
    /// Builds an `n`-peer SCRAP system over the given attribute domains.
    ///
    /// # Errors
    ///
    /// Returns [`ScrapError::EmptyRange`] for an empty domain.
    pub fn build(n: usize, domains: &[(f64, f64)], rng: &mut SmallRng) -> Result<Self, ScrapError> {
        for (i, &(lo, hi)) in domains.iter().enumerate() {
            if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
                return Err(ScrapError::EmptyRange { attribute: i });
            }
        }
        let zspace = ZSpace::new(domains.len() as u32, DEFAULT_BITS);
        let key_max = (1u64 << zspace.key_bits()) as f64;
        let skip = SkipGraphNet::build(n, 0.0, key_max, rng);
        Ok(ScrapNet {
            skip,
            zspace,
            domains: domains.to_vec(),
            points: std::collections::BTreeMap::new(),
        })
    }

    /// Replaces the network cost model (forwarded to the underlying Skip
    /// Graph, whose searches and walks do all the routing). Hop and
    /// message metrics are model-invariant; only
    /// [`ScrapOutcome::latency`] moves.
    pub fn set_net_model(&mut self, model: simnet::NetModel) {
        self.skip.set_net_model(model);
    }

    /// The network cost model in force.
    pub fn net_model(&self) -> &simnet::NetModel {
        self.skip.net_model()
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.skip.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of attributes the system was built with.
    pub fn dims(&self) -> usize {
        self.domains.len()
    }

    /// A uniformly random peer.
    pub fn random_node(&self, rng: &mut SmallRng) -> NodeId {
        self.skip.random_node(rng)
    }

    fn zkey(&self, values: &[f64]) -> Result<u64, ScrapError> {
        if values.len() != self.domains.len() {
            return Err(ScrapError::WrongArity { expected: self.domains.len(), got: values.len() });
        }
        let coords: Vec<u32> = values
            .iter()
            .zip(self.domains.iter())
            .map(|(&v, &(lo, hi))| self.zspace.quantize((v - lo) / (hi - lo)))
            .collect();
        Ok(self.zspace.interleave(&coords))
    }

    /// Publishes a record at the peer owning its curve position.
    ///
    /// # Errors
    ///
    /// Returns [`ScrapError::WrongArity`] on arity mismatch.
    pub fn publish(&mut self, values: &[f64], handle: u64) -> Result<NodeId, ScrapError> {
        let key = self.zkey(values)? as f64;
        self.points.insert(handle, values.to_vec());
        Ok(self.skip.publish(key, handle))
    }

    /// Executes a rectangle query: decomposes into curve ranges, queries
    /// each on the Skip Graph in parallel, filters by the true rectangle.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or an empty per-attribute range.
    pub fn range_query(
        &self,
        origin: NodeId,
        query: &[(f64, f64)],
    ) -> Result<ScrapOutcome, ScrapError> {
        if query.len() != self.domains.len() {
            return Err(ScrapError::WrongArity { expected: self.domains.len(), got: query.len() });
        }
        let mut qranges = Vec::with_capacity(query.len());
        for (i, (&(lo, hi), &(dlo, dhi))) in query.iter().zip(self.domains.iter()).enumerate() {
            if lo > hi {
                return Err(ScrapError::EmptyRange { attribute: i });
            }
            let a = self.zspace.quantize((lo - dlo) / (dhi - dlo));
            let b = self.zspace.quantize((hi - dlo) / (dhi - dlo));
            qranges.push((a, b));
        }
        let ranges = merge_ranges(self.zspace.decompose(&qranges));

        let mut results = Vec::new();
        let mut delay = 0u32;
        let mut latency = 0u64;
        let mut messages = 0u64;
        for r in &ranges {
            let out = self.skip.range_query(origin, r.lo as f64, r.hi as f64);
            delay = delay.max(out.delay); // parallel ranges
            latency = latency.max(out.latency);
            messages += out.messages;
            for h in out.results {
                let point = &self.points[&h];
                let inside =
                    point.iter().zip(query.iter()).all(|(&v, &(lo, hi))| v >= lo && v <= hi);
                if inside {
                    results.push(h);
                }
            }
        }
        results.sort_unstable();
        results.dedup();
        Ok(ScrapOutcome { results, delay, latency, messages, ranges: ranges.len() })
    }

    /// Ground truth for tests: a direct scan over all published points.
    pub fn expected_results(&self, query: &[(f64, f64)]) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .points
            .iter()
            .filter(|(_, point)| {
                point.iter().zip(query.iter()).all(|(&v, &(lo, hi))| v >= lo && v <= hi)
            })
            .map(|(&h, _)| h)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn build2(n: usize, records: usize, seed: u64) -> ScrapNet {
        let mut rng = simnet::rng_from_seed(seed);
        let mut net = ScrapNet::build(n, &[(0.0, 100.0), (0.0, 100.0)], &mut rng).unwrap();
        for h in 0..records as u64 {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            net.publish(&p, h).unwrap();
        }
        net
    }

    #[test]
    fn scrap_is_exact_on_random_queries() {
        let net = build2(90, 300, 1);
        let mut rng = simnet::rng_from_seed(10);
        for _ in 0..40 {
            let q: Vec<(f64, f64)> = (0..2)
                .map(|_| {
                    let lo = rng.gen_range(0.0..80.0);
                    (lo, lo + rng.gen_range(0.5..20.0))
                })
                .collect();
            let origin = net.random_node(&mut rng);
            let out = net.range_query(origin, &q).unwrap();
            assert_eq!(out.results, net.expected_results(&q), "query {q:?}");
        }
    }

    #[test]
    fn scrap_delay_grows_with_selectivity() {
        let net = build2(600, 1200, 2);
        let mut rng = simnet::rng_from_seed(20);
        let origin = net.random_node(&mut rng);
        let small = net.range_query(origin, &[(50.0, 52.0), (50.0, 52.0)]).unwrap();
        let large = net.range_query(origin, &[(5.0, 95.0), (5.0, 95.0)]).unwrap();
        assert!(large.delay > small.delay, "O(logN + n) must grow");
        assert!(large.messages > 10 * small.messages.max(1) / 2);
    }

    #[test]
    fn scrap_whole_space_returns_everything() {
        let net = build2(40, 100, 3);
        let out = net.range_query(0, &[(0.0, 100.0), (0.0, 100.0)]).unwrap();
        assert_eq!(out.results.len(), 100);
        assert_eq!(out.ranges, 1, "the whole space is one curve range");
    }

    #[test]
    fn scrap_rejects_bad_queries() {
        let net = build2(20, 0, 4);
        assert!(matches!(net.range_query(0, &[(0.0, 1.0)]), Err(ScrapError::WrongArity { .. })));
    }
}
