//! SCRAP behind the unified [`dht_api`] query interfaces.
//!
//! Like Squid, SCRAP natively answers hyper-rectangles
//! ([`MultiRangeScheme`]); a one-dimensional build also serves the
//! single-attribute [`RangeScheme`] contract. Both impls query through
//! `&self`, so a built net is `Send + Sync` and shards across
//! parallel-driver threads; [`register`] exposes both shapes under
//! `"scrap"`.
//!
//! SCRAP does **not** opt into the dynamics layer: it rides the static
//! Skip Graph simulation, which has no join/leave/crash protocol, so
//! [`RangeScheme::as_dynamic`] honestly stays `None` and epoch-driven
//! churn runs skip it at runtime.

use crate::{ScrapError, ScrapNet, ScrapOutcome};
use dht_api::{
    BuildParams, MultiBuildParams, MultiRangeScheme, OutcomeCosts, RangeOutcome, RangeScheme,
    SchemeError, SchemeRegistry,
};
use rand::rngs::SmallRng;
use simnet::NodeId;

impl From<ScrapError> for SchemeError {
    fn from(e: ScrapError) -> Self {
        match e {
            ScrapError::WrongArity { expected, got } => SchemeError::WrongArity { expected, got },
            ScrapError::EmptyRange { .. } => SchemeError::Query(e.to_string()),
        }
    }
}

impl ScrapOutcome {
    /// Converts into the scheme-generic outcome. SCRAP's destination unit
    /// is the contiguous curve range; every range is queried, so queries
    /// are exact by construction.
    pub fn into_outcome(self) -> RangeOutcome {
        RangeOutcome::from_native(
            self.results,
            OutcomeCosts {
                hops: u64::from(self.delay),
                latency: self.latency,
                messages: self.messages,
            },
            self.ranges,
            self.ranges,
            true,
        )
    }
}

impl From<ScrapOutcome> for RangeOutcome {
    fn from(out: ScrapOutcome) -> Self {
        out.into_outcome()
    }
}

impl RangeScheme for ScrapNet {
    fn scheme_name(&self) -> &'static str {
        "scrap"
    }

    fn substrate(&self) -> String {
        if self.net_model().is_unit() {
            "Skip Graph".into()
        } else {
            format!("Skip Graph @ {}", self.net_model().name())
        }
    }

    fn degree(&self) -> String {
        "O(logN)".into()
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn supports_rect(&self) -> bool {
        true
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        if self.dims() != 1 {
            return Err(SchemeError::WrongArity { expected: self.dims(), got: 1 });
        }
        ScrapNet::publish(self, &[value], handle)?;
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.random_node(rng)
    }

    fn range_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if self.dims() != 1 {
            return Err(SchemeError::WrongArity { expected: self.dims(), got: 1 });
        }
        if lo > hi {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        Ok(ScrapNet::range_query(self, origin, &[(lo, hi)])?.into_outcome())
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn trace_query(
        &self,
        origin: NodeId,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<(RangeOutcome, dht_api::QueryTrace), SchemeError> {
        // SCRAP's costs come from the analytic curve-range model, not a
        // per-message simulation, so the trace is an honestly-labeled
        // modeled decomposition of the reported totals.
        let out = RangeScheme::range_query(self, origin, lo, hi, seed)?;
        let trace = dht_api::QueryTrace::modeled(RangeScheme::scheme_name(self), origin, &out);
        Ok((out, trace))
    }
}

impl MultiRangeScheme for ScrapNet {
    fn scheme_name(&self) -> &'static str {
        "scrap"
    }

    fn substrate(&self) -> String {
        if self.net_model().is_unit() {
            "Skip Graph".into()
        } else {
            format!("Skip Graph @ {}", self.net_model().name())
        }
    }

    fn degree(&self) -> String {
        "O(logN)".into()
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn dims(&self) -> usize {
        ScrapNet::dims(self)
    }

    fn publish_point(&mut self, point: &[f64], handle: u64) -> Result<(), SchemeError> {
        ScrapNet::publish(self, point, handle)?;
        Ok(())
    }

    fn random_origin(&self, rng: &mut SmallRng) -> NodeId {
        self.random_node(rng)
    }

    fn rect_query(
        &self,
        origin: NodeId,
        rect: &[(f64, f64)],
        _seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        if let Some(&(lo, hi)) = rect.iter().find(|&&(lo, hi)| lo > hi) {
            return Err(SchemeError::EmptyRange { lo, hi });
        }
        Ok(ScrapNet::range_query(self, origin, rect)?.into_outcome())
    }
}

/// Registers `"scrap"` as both a single-attribute scheme (1-D build) and a
/// multi-attribute scheme.
pub fn register(reg: &mut SchemeRegistry) {
    reg.register_single(
        "scrap",
        Box::new(|p: &BuildParams, rng| {
            let mut net = ScrapNet::build(p.n, &[p.domain], rng)
                .map_err(|e| SchemeError::Build(e.to_string()))?;
            net.set_net_model(p.net);
            Ok(Box::new(net))
        }),
    );
    reg.register_multi(
        "scrap",
        Box::new(|p: &MultiBuildParams, rng| {
            let mut net = ScrapNet::build(p.n, &p.domains, rng)
                .map_err(|e| SchemeError::Build(e.to_string()))?;
            net.set_net_model(p.net);
            Ok(Box::new(net))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn one_dimensional_build_serves_the_single_attr_contract() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        let mut rng = simnet::rng_from_seed(940);
        let mut scheme =
            reg.build_single("scrap", &BuildParams::new(70, 0.0, 1000.0), &mut rng).unwrap();
        let mut data = Vec::new();
        for h in 0..200u64 {
            let v = rng.gen_range(0.0..=1000.0);
            scheme.publish(v, h).unwrap();
            data.push((v, h));
        }
        for _ in 0..15 {
            let lo = rng.gen_range(0.0..900.0);
            let hi = lo + rng.gen_range(0.5..80.0);
            let origin = scheme.random_origin(&mut rng);
            let out = scheme.range_query(origin, lo, hi, 0).unwrap();
            let mut expect: Vec<u64> =
                data.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
            expect.sort_unstable();
            assert_eq!(out.results, expect, "query [{lo}, {hi}]");
        }
    }

    #[test]
    fn multi_build_answers_rectangles_through_the_trait() {
        let mut reg = SchemeRegistry::new();
        register(&mut reg);
        let mut rng = simnet::rng_from_seed(941);
        let params = MultiBuildParams::new(60, &[(0.0, 100.0), (0.0, 100.0)]);
        let mut multi = reg.build_multi("scrap", &params, &mut rng).unwrap();
        let mut pts = Vec::new();
        for h in 0..150u64 {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            multi.publish_point(&p, h).unwrap();
            pts.push(p);
        }
        let rect = [(10.0, 60.0), (20.0, 80.0)];
        let origin = multi.random_origin(&mut rng);
        let out = multi.rect_query(origin, &rect, 0).unwrap();
        let mut expect: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().zip(rect.iter()).all(|(&v, &(lo, hi))| v >= lo && v <= hi))
            .map(|(h, _)| h as u64)
            .collect();
        expect.sort_unstable();
        assert_eq!(out.results, expect);
    }
}
