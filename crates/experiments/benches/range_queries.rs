//! Criterion benches: wall-clock cost of simulated range queries for every
//! scheme, selected by name from the unified registry and driven through
//! the [`dht_api`] traits — adding a scheme to the bench is one name in a
//! list.

use armada_experiments::standard_registry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_api::{BuildParams, MultiBuildParams};
use rand::Rng;

const N: usize = 1000;

fn bench_single_schemes(c: &mut Criterion) {
    let registry = standard_registry();
    for name in ["pira", "dcf-can", "pht-fissione", "skipgraph", "scrap"] {
        let mut rng = simnet::rng_from_seed(1);
        let params = BuildParams::new(N, 0.0, 1000.0);
        let mut scheme = registry.build_single(name, &params, &mut rng).expect("build");
        for h in 0..N as u64 {
            scheme.publish(rng.gen_range(0.0..=1000.0), h).expect("publish");
        }
        let mut group = c.benchmark_group(format!("{name}_query"));
        group.sample_size(20);
        for size in [2.0f64, 50.0, 300.0] {
            group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
                let mut q = 0u64;
                b.iter(|| {
                    let lo = rng.gen_range(0.0..(1000.0 - size));
                    let origin = scheme.random_origin(&mut rng);
                    q += 1;
                    scheme.range_query(origin, lo, lo + size, q).unwrap()
                });
            });
        }
        group.finish();
    }
}

fn bench_multi_schemes(c: &mut Criterion) {
    let registry = standard_registry();
    for name in ["mira", "squid", "scrap"] {
        let mut rng = simnet::rng_from_seed(2);
        let params = MultiBuildParams::new(N, &[(0.0, 100.0), (0.0, 100.0)]);
        let mut scheme = registry.build_multi(name, &params, &mut rng).expect("build");
        for h in 0..N as u64 {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            scheme.publish_point(&p, h).expect("publish");
        }
        let mut group = c.benchmark_group(format!("{name}_rect_query"));
        group.sample_size(20);
        for side in [1.0f64, 20.0] {
            group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
                let mut q = 0u64;
                b.iter(|| {
                    let lo0 = rng.gen_range(0.0..(100.0 - side));
                    let lo1 = rng.gen_range(0.0..(100.0 - side));
                    let origin = scheme.random_origin(&mut rng);
                    q += 1;
                    scheme.rect_query(origin, &[(lo0, lo0 + side), (lo1, lo1 + side)], q).unwrap()
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_single_schemes, bench_multi_schemes);
criterion_main!(benches);
