//! Criterion benches: wall-clock cost of simulated range queries for every
//! scheme (PIRA, MIRA, DCF-CAN, PHT) at a fixed network size.

use armada::{MultiArmada, SingleArmada};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_can::dcf::{self, FloodMode};
use dht_can::{CanConfig, CanNet};
use fissione::FissioneConfig;
use pht::Pht;
use rand::Rng;

const N: usize = 1000;

fn cfg() -> FissioneConfig {
    FissioneConfig { object_id_len: 100, ..FissioneConfig::default() }
}

fn bench_pira(c: &mut Criterion) {
    let mut rng = simnet::rng_from_seed(1);
    let armada = SingleArmada::build_with(cfg(), N, 0.0, 1000.0, &mut rng).unwrap();
    let mut group = c.benchmark_group("pira_query");
    group.sample_size(20);
    for size in [2.0f64, 50.0, 300.0] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut q = 0u64;
            b.iter(|| {
                let lo = rng.gen_range(0.0..(1000.0 - size));
                let origin = armada.net().random_peer(&mut rng);
                q += 1;
                armada.pira_query(origin, lo, lo + size, q).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_mira(c: &mut Criterion) {
    let mut rng = simnet::rng_from_seed(2);
    let armada =
        MultiArmada::build_with(cfg(), N, &[(0.0, 100.0), (0.0, 100.0)], &mut rng).unwrap();
    let mut group = c.benchmark_group("mira_query");
    group.sample_size(20);
    for side in [1.0f64, 20.0] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let mut q = 0u64;
            b.iter(|| {
                let lo0 = rng.gen_range(0.0..(100.0 - side));
                let lo1 = rng.gen_range(0.0..(100.0 - side));
                let origin = armada.net().random_peer(&mut rng);
                q += 1;
                armada
                    .mira_query(origin, &[(lo0, lo0 + side), (lo1, lo1 + side)], q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_dcf(c: &mut Criterion) {
    let mut rng = simnet::rng_from_seed(3);
    let can_cfg = CanConfig { domain_lo: 0.0, domain_hi: 1000.0, ..CanConfig::default() };
    let net = CanNet::build(can_cfg, N, &mut rng).unwrap();
    let mut group = c.benchmark_group("dcf_query");
    group.sample_size(20);
    for size in [2.0f64, 50.0, 300.0] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut q = 0u64;
            b.iter(|| {
                let lo = rng.gen_range(0.0..(1000.0 - size));
                let origin = net.random_zone(&mut rng);
                q += 1;
                dcf::range_query(&net, origin, lo, lo + size, q, FloodMode::Directed).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_pht(c: &mut Criterion) {
    let mut rng = simnet::rng_from_seed(4);
    let dht = fissione::FissioneNet::build(cfg(), N, &mut rng).unwrap();
    let mut pht = Pht::new(dht, 0.0, 1000.0);
    for h in 0..N as u64 {
        pht.insert(rng.gen_range(0.0..=1000.0), h);
    }
    let mut group = c.benchmark_group("pht_query");
    group.sample_size(20);
    for size in [2.0f64, 50.0] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let lo = rng.gen_range(0.0..(1000.0 - size));
                pht.range_query(0, lo, lo + size)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pira, bench_mira, bench_dcf, bench_pht);
criterion_main!(benches);
