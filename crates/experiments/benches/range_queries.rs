//! Criterion benches: wall-clock cost of simulated range queries for every
//! scheme, selected by name from the unified registry and driven through
//! the [`dht_api`] traits over the named workload catalog — adding a scheme
//! or a workload to the bench is one name in a list.

use armada_experiments::standard_registry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_api::{BuildParams, MultiBuildParams, WorkloadGen};
use rand::Rng;

const N: usize = 1000;
const DOMAIN: (f64, f64) = (0.0, 1000.0);

fn bench_single_schemes(c: &mut Criterion) {
    let registry = standard_registry();
    for name in ["pira", "dcf-can", "pht-fissione", "skipgraph", "scrap"] {
        let mut rng = simnet::rng_from_seed(1);
        let params = BuildParams::new(N, DOMAIN.0, DOMAIN.1);
        let mut scheme = registry.build_single(name, &params, &mut rng).expect("build");
        for h in 0..N as u64 {
            scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
        }
        let mut group = c.benchmark_group(format!("{name}_query"));
        group.sample_size(20);
        for wl_name in ["uniform", "zipf-hot", "wide-scan"] {
            let workload = WorkloadGen::named(wl_name, DOMAIN).expect("cataloged");
            group.bench_with_input(BenchmarkId::from_parameter(wl_name), &workload, |b, wl| {
                let mut q = 0u64;
                b.iter(|| {
                    let (lo, hi) = wl.range(1, q);
                    let origin = scheme.random_origin(&mut rng);
                    q += 1;
                    scheme.range_query(origin, lo, hi, q).unwrap()
                });
            });
        }
        group.finish();
    }
}

fn bench_multi_schemes(c: &mut Criterion) {
    let registry = standard_registry();
    let domains = [(0.0, 100.0), (0.0, 100.0)];
    for name in ["mira", "squid", "scrap"] {
        let mut rng = simnet::rng_from_seed(2);
        let params = MultiBuildParams::new(N, &domains);
        let mut scheme = registry.build_multi(name, &params, &mut rng).expect("build");
        for h in 0..N as u64 {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            scheme.publish_point(&p, h).expect("publish");
        }
        let mut group = c.benchmark_group(format!("{name}_rect_query"));
        group.sample_size(20);
        for wl_name in ["rect-correlated", "mixed"] {
            let workload = WorkloadGen::named(wl_name, (0.0, 100.0)).expect("cataloged");
            group.bench_with_input(BenchmarkId::from_parameter(wl_name), &workload, |b, wl| {
                let mut q = 0u64;
                b.iter(|| {
                    let rect = wl.rect(&domains, 2, q);
                    let origin = scheme.random_origin(&mut rng);
                    q += 1;
                    scheme.rect_query(origin, &rect, q).unwrap()
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_single_schemes, bench_multi_schemes);
criterion_main!(benches);
