//! Criterion benches for the substrate building blocks: naming, routing and
//! network construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fissione::{FissioneConfig, FissioneNet};
use kautz::naming::{MultiHash, SingleHash};
use kautz::KautzStr;
use rand::Rng;

fn bench_naming(c: &mut Criterion) {
    let single = SingleHash::new(0.0, 1000.0, 100).unwrap();
    let multi = MultiHash::new(&[(0.0, 100.0), (0.0, 100.0), (0.0, 100.0)], 100).unwrap();
    let mut rng = simnet::rng_from_seed(5);
    c.bench_function("single_hash_k100", |b| {
        b.iter(|| single.object_id(rng.gen_range(0.0..=1000.0)))
    });
    c.bench_function("multiple_hash_m3_k100", |b| {
        b.iter(|| {
            multi
                .object_id(&[
                    rng.gen_range(0.0..=100.0),
                    rng.gen_range(0.0..=100.0),
                    rng.gen_range(0.0..=100.0),
                ])
                .unwrap()
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fissione_route");
    group.sample_size(30);
    for n in [1000usize, 4000] {
        let cfg = FissioneConfig { object_id_len: 100, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(6 + n as u64);
        let net = FissioneNet::build(cfg, n, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let target = KautzStr::random(2, 100, &mut rng);
                let from = net.random_peer(&mut rng);
                net.route(from, &target).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_build");
    group.sample_size(10);
    group.bench_function("fissione_1000", |b| {
        let cfg = FissioneConfig { object_id_len: 100, ..FissioneConfig::default() };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = simnet::rng_from_seed(seed);
            FissioneNet::build(cfg, 1000, &mut rng).unwrap()
        });
    });
    group.bench_function("chord_1000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = simnet::rng_from_seed(seed);
            chord::ChordNet::build(1000, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_naming, bench_routing, bench_build);
criterion_main!(benches);
