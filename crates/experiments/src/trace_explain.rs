//! Per-query cost explainers: build any registry scheme with tracing on,
//! replay one (or a sampled set of) driver queries, and render the causal
//! tree — as human-readable text, as the raw JSON-Lines event stream, or
//! as a Chrome-trace array for `chrome://tracing` / Perfetto.
//!
//! The module is the library half of the `trace_explain` binary. Every
//! function returns a `String` (or a structured report) rather than
//! printing — the workspace determinism linter bans stdout in library
//! crates — and every rendered explanation is checked against the
//! accounting invariant first: the explain tree's recursive cost total
//! must reproduce the query's reported `delay`, `latency`, and `messages`
//! exactly, or [`run_one`]/[`run_sampled`] refuse to render it.
//!
//! Queries are addressed by driver index: query `q` here is byte-for-byte
//! the query a [`ParallelDriver`] with the same `(seed, queries)` would
//! run at index `q` — same workload draw, same origin, same scheme seed —
//! so a surprising number in a sweep can be replayed and explained after
//! the fact. Sampling (`--sample 1/K`) selects indices by a pure FNV-1a
//! hash of the index, so the 1-in-K stream is a strict subset of the
//! 1-in-1 stream for the same configuration.

use crate::standard_registry;
use dht_api::{BuildParams, ParallelDriver, QueryTrace, RangeOutcome, SchemeError, WorkloadGen};
use rand::Rng;
use std::fmt::Write as _;

/// Salt mixed into the per-index sampling hash (distinct from every other
/// salt in the workspace so sampling never correlates with origin or
/// retry draws).
const SAMPLE_SALT: u64 = 0x5a3b_5a3b_5a3b_5a3b;

/// Configuration for a trace-explain run. The defaults mirror the quick
/// baseline so a bare `--scheme pira` invocation is fast and meaningful.
#[derive(Debug, Clone)]
pub struct TraceExplainConfig {
    /// Full registry name, suffixes included (`pira+r3@wan@lossy-10/r2`).
    pub scheme: String,
    /// Network size to build at.
    pub n: usize,
    /// Driver batch size — query indices live in `0..queries`.
    pub queries: usize,
    /// Master seed (build, publish, workload, and origins derive from it).
    pub seed: u64,
    /// ObjectID length for Kautz-named schemes.
    pub object_id_len: usize,
    /// Workload the driver batch draws ranges from.
    pub workload: String,
}

impl Default for TraceExplainConfig {
    fn default() -> Self {
        TraceExplainConfig {
            scheme: "pira".to_string(),
            n: 250,
            queries: 1000,
            seed: 0xba5e,
            object_id_len: 32,
            workload: "uniform".to_string(),
        }
    }
}

/// Output format for a rendered explanation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable totals + indented causal tree.
    Text,
    /// Raw JSON-Lines event stream (one event per line, schema-validated
    /// by CI against `schemas/trace.schema.json`).
    Jsonl,
    /// Chrome-trace JSON array (`chrome://tracing` / Perfetto).
    Chrome,
}

impl Format {
    /// Parses the `--format` spelling.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "jsonl" => Some(Format::Jsonl),
            "chrome" => Some(Format::Chrome),
            _ => None,
        }
    }
}

/// One explained query: the outcome the driver reported and the causal
/// trace behind it, accounting-checked.
#[derive(Debug, Clone)]
pub struct Explained {
    /// The driver index the query ran at.
    pub query: usize,
    /// The range the workload drew for this index.
    pub range: (f64, f64),
    /// The reported outcome (delay/latency/messages the tree must match).
    pub outcome: RangeOutcome,
    /// The causal trace.
    pub trace: QueryTrace,
}

/// Checks the accounting invariant: the explain tree's recursive total
/// must equal the reported `(delay, latency, messages)` exactly.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatching column.
pub fn verify_accounting(out: &RangeOutcome, trace: &QueryTrace) -> Result<(), String> {
    let (hops, latency, messages) = trace.root.total();
    if hops != out.delay {
        return Err(format!("explain tree sums {hops} hops, query reported delay {}", out.delay));
    }
    if latency != out.latency {
        return Err(format!(
            "explain tree sums {latency} ms, query reported latency {} ms",
            out.latency
        ));
    }
    if messages != out.messages {
        return Err(format!(
            "explain tree sums {messages} messages, query reported {}",
            out.messages
        ));
    }
    Ok(())
}

/// The driver-index subset a `1/k` sample selects: index `q` is in iff
/// `fnv1a(SAMPLE_SALT ‖ q) % k == 0`. Pure in `q` — no RNG, no state — so
/// the selection is stable across runs, thread counts, and shard salts,
/// and `1/k` selects a subset of `1/1` (which selects everything).
pub fn sampled_indices(queries: usize, k: u64) -> Vec<usize> {
    let k = k.max(1);
    (0..queries)
        .filter(|&q| {
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&SAMPLE_SALT.to_le_bytes());
            bytes[8..].copy_from_slice(&(q as u64).to_le_bytes());
            dht_api::fnv1a(&bytes).is_multiple_of(k)
        })
        .collect()
}

/// Builds the configured scheme with tracing on and replays query `q`
/// through [`ParallelDriver::trace_one`], verifying the accounting
/// invariant before returning.
///
/// # Errors
///
/// Propagates build and query errors; an accounting mismatch (which would
/// mean a tracing bug, not a user error) comes back as
/// [`SchemeError::Query`].
pub fn explain_one(cfg: &TraceExplainConfig, q: usize) -> Result<Explained, SchemeError> {
    let (scheme, driver, workload) = build(cfg)?;
    explain_with(cfg, scheme.as_ref(), &driver, &workload, q)
}

/// Builds once and explains every index a `1/k` sample selects (in index
/// order — the stream order is part of the determinism contract).
///
/// # Errors
///
/// Propagates build and query errors.
pub fn explain_sampled(cfg: &TraceExplainConfig, k: u64) -> Result<Vec<Explained>, SchemeError> {
    let (scheme, driver, workload) = build(cfg)?;
    sampled_indices(cfg.queries, k)
        .into_iter()
        .map(|q| explain_with(cfg, scheme.as_ref(), &driver, &workload, q))
        .collect()
}

/// Renders one explained query in the requested format.
///
/// Text output leads with a header (scheme, query, range, outcome) and
/// the tree; `jsonl` output leads with a `"type":"query"` header line
/// carrying the reported totals, then the raw event lines — the shape
/// `schemas/trace.schema.json` validates.
pub fn render(cfg: &TraceExplainConfig, e: &Explained, format: Format) -> String {
    match format {
        Format::Text => {
            let mut s = String::new();
            let _ = writeln!(
                s,
                "query {} on {} (N = {}, workload {}, seed {:#x})",
                e.query, cfg.scheme, cfg.n, cfg.workload, cfg.seed
            );
            let _ = writeln!(
                s,
                "range [{:.3}, {:.3}] \u{2192} {} results, exact: {}",
                e.range.0,
                e.range.1,
                e.outcome.results.len(),
                e.outcome.exact
            );
            s.push_str(&e.trace.explain_text());
            s
        }
        Format::Jsonl => {
            let mut s = query_header_line(cfg, e);
            s.push('\n');
            s.push_str(&e.trace.to_jsonl());
            s
        }
        Format::Chrome => e.trace.to_chrome(),
    }
}

/// Runs and renders one query.
///
/// # Errors
///
/// Propagates [`explain_one`] errors.
pub fn run_one(cfg: &TraceExplainConfig, q: usize, format: Format) -> Result<String, SchemeError> {
    let e = explain_one(cfg, q)?;
    Ok(render(cfg, &e, format))
}

/// Runs a `1/k` sample and concatenates the renderings (text gets a blank
/// line between queries; `jsonl` concatenates line streams — the sampled
/// stream is a strict subset of the `1/1` stream by construction).
///
/// # Errors
///
/// Propagates [`explain_sampled`] errors; refuses [`Format::Chrome`],
/// which has no multi-query concatenation.
pub fn run_sampled(
    cfg: &TraceExplainConfig,
    k: u64,
    format: Format,
) -> Result<String, SchemeError> {
    if format == Format::Chrome {
        return Err(SchemeError::Query(
            "chrome format renders one query; use --query, or --format jsonl with --sample".into(),
        ));
    }
    let explained = explain_sampled(cfg, k)?;
    let mut out = String::new();
    for (i, e) in explained.iter().enumerate() {
        if format == Format::Text && i > 0 {
            out.push('\n');
        }
        out.push_str(&render(cfg, e, format));
    }
    Ok(out)
}

/// The `"type":"query"` JSON-Lines header: which query the following
/// events explain, and the totals the tree was verified against.
fn query_header_line(cfg: &TraceExplainConfig, e: &Explained) -> String {
    format!(
        "{{\"type\":\"query\",\"q\":{},\"scheme\":\"{}\",\"delay\":{},\"latency_ms\":{},\
         \"messages\":{},\"results\":{},\"exact\":{}}}",
        e.query,
        json_escape(&cfg.scheme),
        e.outcome.delay,
        e.outcome.latency,
        e.outcome.messages,
        e.outcome.results.len(),
        e.outcome.exact
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Builds the configured scheme (tracing on), publishes `n` records, and
/// wires the driver + workload the explain replays run under. The build
/// and publish seeds follow the baseline convention (`seed ^
/// fnv1a(scheme)`), so explains line up with baseline cells of the same
/// seed.
fn build(
    cfg: &TraceExplainConfig,
) -> Result<(Box<dyn dht_api::RangeScheme>, ParallelDriver, WorkloadGen), SchemeError> {
    let registry = standard_registry();
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let params = BuildParams::new(cfg.n, domain.0, domain.1)
        .with_object_id_len(cfg.object_id_len)
        .with_trace(true);
    let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(cfg.scheme.as_bytes()));
    let mut scheme = registry.build_single(&cfg.scheme, &params, &mut rng)?;
    for h in 0..cfg.n as u64 {
        scheme
            .publish(rng.gen_range(domain.0..=domain.1), h)
            .map_err(|e| SchemeError::Build(format!("publish: {e}")))?;
    }
    let workload = WorkloadGen::named(&cfg.workload, domain)?;
    let driver = ParallelDriver {
        queries: cfg.queries,
        seed: cfg.seed,
        threads: 1,
        shard_salt: 0,
        metrics: false,
    };
    Ok((scheme, driver, workload))
}

/// Replays one query on an already-built scheme and accounting-checks it.
fn explain_with(
    cfg: &TraceExplainConfig,
    scheme: &dyn dht_api::RangeScheme,
    driver: &ParallelDriver,
    workload: &WorkloadGen,
    q: usize,
) -> Result<Explained, SchemeError> {
    if q >= cfg.queries {
        return Err(SchemeError::Query(format!(
            "query index {q} out of range (batch runs 0..{})",
            cfg.queries
        )));
    }
    let (outcome, trace) = driver.trace_one(scheme, workload, q)?;
    verify_accounting(&outcome, &trace).map_err(|e| {
        SchemeError::Query(format!("accounting mismatch on query {q} of {}: {e}", cfg.scheme))
    })?;
    let range = workload.range(driver.seed, q as u64);
    Ok(Explained { query: q, range, outcome, trace })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: &str) -> TraceExplainConfig {
        TraceExplainConfig {
            scheme: scheme.to_string(),
            n: 120,
            queries: 64,
            ..TraceExplainConfig::default()
        }
    }

    #[test]
    fn explain_matches_the_untraced_driver_query() {
        let cfg = quick("pira");
        let e = explain_one(&cfg, 7).unwrap();
        // The replayed query must be byte-for-byte the driver's query 7.
        let registry = standard_registry();
        let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
        let params =
            BuildParams::new(cfg.n, domain.0, domain.1).with_object_id_len(cfg.object_id_len);
        let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(cfg.scheme.as_bytes()));
        let mut scheme = registry.build_single(&cfg.scheme, &params, &mut rng).unwrap();
        for h in 0..cfg.n as u64 {
            scheme.publish(rng.gen_range(domain.0..=domain.1), h).unwrap();
        }
        let workload = WorkloadGen::named(&cfg.workload, domain).unwrap();
        let driver = ParallelDriver {
            queries: cfg.queries,
            seed: cfg.seed,
            threads: 1,
            shard_salt: 0,
            metrics: false,
        };
        let (lo, hi) = workload.range(driver.seed, 7);
        let origin = driver.query_origin(scheme.as_ref(), 7);
        let plain = scheme.range_query(origin, lo, hi, driver.query_seed(7)).unwrap();
        assert_eq!(e.outcome.results, plain.results);
        assert_eq!(e.outcome.delay, plain.delay);
        assert_eq!(e.outcome.latency, plain.latency);
        assert_eq!(e.outcome.messages, plain.messages);
    }

    #[test]
    fn accounting_holds_through_the_full_suffix_stack() {
        // The acceptance spec's worked example: replication + WAN pricing
        // + loss with a retry budget, all composed.
        let cfg = quick("pira+r3@wan@lossy-10/r2");
        for q in [0, 3, 11] {
            let e = explain_one(&cfg, q).unwrap();
            assert_eq!(
                e.trace.root.total(),
                (e.outcome.delay, e.outcome.latency, e.outcome.messages)
            );
        }
    }

    #[test]
    fn renders_are_deterministic_and_carry_the_header() {
        let cfg = quick("seqwalk");
        let a = run_one(&cfg, 5, Format::Jsonl).unwrap();
        let b = run_one(&cfg, 5, Format::Jsonl).unwrap();
        assert_eq!(a, b, "jsonl must be byte-identical across runs");
        let first = a.lines().next().unwrap();
        assert!(first.contains("\"type\":\"query\""), "{first}");
        assert!(first.contains("\"q\":5"), "{first}");
        let text = run_one(&cfg, 5, Format::Text).unwrap();
        assert!(text.contains("query 5 on seqwalk"), "{text}");
        assert!(text.contains("total: delay"), "{text}");
        let chrome = run_one(&cfg, 5, Format::Chrome).unwrap();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
    }

    #[test]
    fn sampling_is_a_pure_strict_subset() {
        let all = sampled_indices(512, 1);
        assert_eq!(all.len(), 512, "1/1 selects everything");
        let some = sampled_indices(512, 8);
        assert!(!some.is_empty() && some.len() < 512, "1/8 thins ({} left)", some.len());
        assert!(some.iter().all(|q| all.contains(q)));
        assert_eq!(some, sampled_indices(512, 8), "selection is pure");
        // And the rendered sampled stream is a line-subset of the full one.
        let cfg = TraceExplainConfig { queries: 24, n: 100, ..quick("pira") };
        let full = run_sampled(&cfg, 1, Format::Jsonl).unwrap();
        let sampled = run_sampled(&cfg, 4, Format::Jsonl).unwrap();
        assert!(!sampled.is_empty());
        let full_lines: std::collections::BTreeSet<&str> = full.lines().collect();
        for line in sampled.lines() {
            assert!(full_lines.contains(line), "sampled line missing from full stream: {line}");
        }
        assert!(sampled.lines().count() < full.lines().count());
    }

    #[test]
    fn chrome_refuses_multi_query_sampling() {
        let cfg = quick("pira");
        assert!(run_sampled(&cfg, 4, Format::Chrome).is_err());
    }

    #[test]
    fn out_of_range_indices_and_unknown_workloads_err() {
        let cfg = quick("pira");
        assert!(explain_one(&cfg, cfg.queries).is_err());
        let bad = TraceExplainConfig { workload: "no-such".into(), ..quick("pira") };
        assert!(explain_one(&bad, 0).is_err());
    }
}
