//! E1 — top-k query evaluation (the §6 future work, measured): cost of the
//! expanding-probe algorithm as `k` and the data skew vary.

use crate::output::Table;
use crate::{paper, Scale};
use armada::SingleArmada;
use fissione::FissioneConfig;
use rand::Rng;

/// Runs the top-k evaluation.
pub fn run(scale: Scale) -> Table {
    let n = match scale {
        Scale::Full => paper::FIG56_N,
        Scale::Quick => 300,
    };
    let queries = scale.queries() / 5;
    let records = 5 * n;
    let log_n = (n as f64).log2();
    let mut t = Table::new(
        format!("E1 — top-k queries (N = {n}, {records} records)"),
        &[
            "distribution",
            "k",
            "avg probes",
            "avg delay",
            "per-probe bound 2logN",
            "avg messages",
            "exact rate",
        ],
    );
    for (dist, skew) in [("uniform", 1), ("skewed (x²)", 2)] {
        let cfg =
            FissioneConfig { object_id_len: paper::OBJECT_ID_LEN, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(0x70c0 ^ skew as u64);
        let mut armada =
            SingleArmada::build_with(cfg, n, paper::DOMAIN_LO, paper::DOMAIN_HI, &mut rng)
                .expect("build");
        for _ in 0..records {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            armada.publish(u.powi(skew) * paper::DOMAIN_HI);
        }
        for &k in &[1usize, 10, 100] {
            let mut probes = 0f64;
            let mut delay = 0f64;
            let mut messages = 0f64;
            let mut exact = 0usize;
            for q in 0..queries {
                let origin = armada.net().random_peer(&mut rng);
                let out = armada.top_k(origin, k, q as u64).expect("query");
                probes += out.probes as f64;
                delay += f64::from(out.delay);
                messages += out.messages as f64;
                if out.results == armada.expected_top_k(paper::DOMAIN_HI, k) {
                    exact += 1;
                }
            }
            let qf = queries as f64;
            t.push_row(vec![
                dist.into(),
                k.to_string(),
                format!("{:.2}", probes / qf),
                format!("{:.2}", delay / qf),
                format!("{:.2}", 2.0 * log_n),
                format!("{:.1}", messages / qf),
                format!("{:.3}", exact as f64 / qf),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_eval_is_exact_and_cheap() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let exact: f64 = row[6].parse().unwrap();
            assert_eq!(exact, 1.0, "row {row:?}");
            let probes: f64 = row[2].parse().unwrap();
            assert!(probes <= 11.0, "probe count bounded by the doubling depth");
        }
    }
}
