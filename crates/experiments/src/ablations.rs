//! Ablations: design choices the paper fixes, quantified.
//!
//! * [`flood`] — DCF's duplicate suppression vs a naive flood (A1).
//! * [`balance`] — FISSIONE's locally-minimal split vs random splits (A2).
//! * [`pht_substrate`] — PHT over a constant-degree vs `O(log N)`-degree
//!   DHT, against PIRA (A3).

use crate::output::Table;
use crate::{paper, Scale};
use rand::Rng;

/// A1 — DCF duplicate suppression vs naive flooding, selected by registry
/// name (`dcf-can` vs `dcf-can-naive`) and driven through the unified
/// interface.
pub mod flood {
    use super::*;
    use dht_api::BuildParams;

    /// Runs the flooding ablation at fixed `N` over swept range sizes.
    pub fn run(scale: Scale) -> Table {
        let n = match scale {
            Scale::Full => paper::FIG56_N,
            Scale::Quick => 400,
        };
        let queries = scale.queries() / 2;
        let registry = crate::standard_registry();
        let params = BuildParams::new(n, paper::DOMAIN_LO, paper::DOMAIN_HI);
        // Identical seed streams give both variants the same CAN tiling, so
        // the comparison is paired query-for-query.
        let mut rng = simnet::rng_from_seed(0xab1a);
        let directed = registry.build_single("dcf-can", &params, &mut rng).expect("build");
        let mut rng2 = simnet::rng_from_seed(0xab1a);
        let naive = registry.build_single("dcf-can-naive", &params, &mut rng2).expect("build");
        let mut t = Table::new(
            format!("A1 — DCF duplicate suppression vs naive flooding (N = {n})"),
            &[
                "range_size",
                "directed_msgs",
                "naive_msgs",
                "overhead",
                "directed_delay",
                "naive_delay",
            ],
        );
        for &size in &[10.0f64, 100.0, 300.0] {
            let mut dm = 0f64;
            let mut nm = 0f64;
            let mut dd = 0f64;
            let mut nd = 0f64;
            for q in 0..queries {
                let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - size));
                let origin = directed.random_origin(&mut rng);
                let d = directed.range_query(origin, lo, lo + size, q as u64).expect("query");
                let nv = naive.range_query(origin, lo, lo + size, q as u64).expect("query");
                dm += d.messages as f64;
                nm += nv.messages as f64;
                dd += d.delay as f64;
                nd += nv.delay as f64;
            }
            let q = queries as f64;
            t.push_row(vec![
                Table::fmt_f64(size),
                Table::fmt_f64(dm / q),
                Table::fmt_f64(nm / q),
                format!("{:.2}x", nm / dm.max(1.0)),
                Table::fmt_f64(dd / q),
                Table::fmt_f64(nd / q),
            ]);
        }
        t
    }
}

/// A2 — split balancing: locally-minimal vs random-owner splits.
pub mod balance {
    use super::*;
    use armada::SingleArmada;
    use fissione::{BalanceRule, FissioneConfig};

    /// Runs the balance ablation.
    pub fn run(scale: Scale) -> Table {
        let n = match scale {
            Scale::Full => paper::FIG56_N,
            Scale::Quick => 400,
        };
        let queries = scale.queries() / 2;
        let log_n = (n as f64).log2();
        let mut t = Table::new(
            format!("A2 — join balancing rule (N = {n}, logN = {log_n:.1})"),
            &[
                "rule",
                "avg depth",
                "max depth",
                "nbhd violations",
                "pira_avg_delay",
                "pira_max_delay",
            ],
        );
        for (name, rule) in [
            ("LocalMin (paper)", BalanceRule::LocalMin { max_steps: 32 }),
            ("RandomOwner", BalanceRule::RandomOwner),
        ] {
            let cfg = FissioneConfig {
                object_id_len: paper::OBJECT_ID_LEN,
                balance: rule,
                ..FissioneConfig::default()
            };
            let mut rng = simnet::rng_from_seed(0xba1a ^ name.len() as u64);
            let armada =
                SingleArmada::build_with(cfg, n, paper::DOMAIN_LO, paper::DOMAIN_HI, &mut rng)
                    .expect("build");
            let report = armada.net().check_invariants().expect("hard invariants hold");
            let depth = armada.net().depth_stats();
            let mut sum = 0f64;
            let mut max = 0f64;
            for q in 0..queries {
                let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - 20.0));
                let origin = armada.net().random_peer(&mut rng);
                let out = armada.pira_query(origin, lo, lo + 20.0, q as u64).expect("query");
                sum += f64::from(out.metrics.delay);
                max = max.max(f64::from(out.metrics.delay));
            }
            t.push_row(vec![
                name.into(),
                format!("{:.2}", depth.summary.mean),
                format!("{}", report.max_depth),
                report.neighborhood_violations.to_string(),
                format!("{:.2}", sum / queries as f64),
                format!("{max:.0}"),
            ]);
        }
        t
    }
}

/// A3 — PHT delay decomposition over constant-degree vs logarithmic-degree
/// substrates, against PIRA — three registry names, one measurement loop.
pub mod pht_substrate {
    use super::*;
    use dht_api::{BuildParams, DriverReport, QueryDriver, SchemeRegistry};
    use rand::rngs::SmallRng;

    /// Runs the PHT substrate ablation over swept `N`.
    pub fn run(scale: Scale) -> Table {
        let ns: Vec<usize> = match scale {
            Scale::Full => vec![500, 1000, 2000, 4000],
            Scale::Quick => vec![200, 500],
        };
        let queries = scale.queries() / 2;
        let range = paper::FIG78_RANGE;
        let registry = crate::standard_registry();
        let mut t = Table::new(
            format!("A3 — PHT substrate vs PIRA (range = {range})"),
            &[
                "N",
                "pht_fissione_delay",
                "pht_chord_delay",
                "pira_delay",
                "pht_fissione_msgs",
                "pht_chord_msgs",
                "pira_msgs",
            ],
        );
        for n in ns {
            let mut rng = simnet::rng_from_seed(0x9417 ^ n as u64);
            let f = measure(&registry, "pht-fissione", n, queries, range, true, &mut rng);
            let c = measure(&registry, "pht-chord", n, queries, range, true, &mut rng);
            let p = measure(&registry, "pira", n, queries, range, false, &mut rng);
            t.push_row(vec![
                n.to_string(),
                Table::fmt_f64(f.delay.mean),
                Table::fmt_f64(c.delay.mean),
                Table::fmt_f64(p.delay.mean),
                Table::fmt_f64(f.messages.mean),
                Table::fmt_f64(c.messages.mean),
                Table::fmt_f64(p.messages.mean),
            ]);
        }
        t
    }

    fn measure(
        registry: &SchemeRegistry,
        name: &str,
        n: usize,
        queries: usize,
        range: f64,
        publish: bool,
        rng: &mut SmallRng,
    ) -> DriverReport {
        let params = BuildParams::new(n, paper::DOMAIN_LO, paper::DOMAIN_HI);
        let mut scheme = registry.build_single(name, &params, rng).expect("build");
        if publish {
            for h in 0..n as u64 {
                let v = rng.gen_range(paper::DOMAIN_LO..=paper::DOMAIN_HI);
                scheme.publish(v, h).expect("publish");
            }
        }
        QueryDriver::new(queries)
            .run(scheme.as_ref(), rng, |rng| {
                let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
                (lo, lo + range)
            })
            .expect("query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_ablation_shows_directed_wins() {
        let t = flood::run(Scale::Quick);
        for row in &t.rows {
            let directed: f64 = row[1].parse().unwrap();
            let naive: f64 = row[2].parse().unwrap();
            assert!(naive > directed, "row {row:?}");
        }
    }

    #[test]
    fn balance_ablation_shows_local_min_is_flatter() {
        let t = balance::run(Scale::Quick);
        let local_max: f64 = t.rows[0][2].parse().unwrap();
        let random_max: f64 = t.rows[1][2].parse().unwrap();
        assert!(local_max <= random_max, "LocalMin must not be deeper");
        let local_viol: usize = t.rows[0][3].parse().unwrap();
        assert_eq!(local_viol, 0);
    }

    #[test]
    fn pht_ablation_shows_pira_fastest() {
        let t = pht_substrate::run(Scale::Quick);
        for row in &t.rows {
            let pht_f: f64 = row[1].parse().unwrap();
            let pht_c: f64 = row[2].parse().unwrap();
            let pira: f64 = row[3].parse().unwrap();
            assert!(pira < pht_f, "PIRA beats PHT/FissionE, row {row:?}");
            assert!(pira < pht_c, "PIRA beats PHT/Chord, row {row:?}");
        }
    }
}
