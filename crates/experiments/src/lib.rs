//! Experiment harness regenerating every table and figure of the ICDCS'06
//! Armada paper, plus ablations and robustness studies.
//!
//! Every experiment is a library function returning a [`Table`]; the
//! `src/bin/*` wrappers print the paper-style series and write CSVs to
//! `target/experiments/`. The mapping from paper artifact to module:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 1 (scheme comparison) | [`table1`] | `table1` |
//! | Figure 5 (delay vs range size) | [`figures::fig5`] | `fig5` |
//! | Figure 6 (messages vs range size) | [`figures::fig6`] | `fig6` |
//! | Figure 7 (delay vs network size) | [`figures::fig7`] | `fig7` |
//! | Figure 8 (messages vs network size) | [`figures::fig8`] | `fig8` |
//! | §3 substrate claims | [`substrate`] | `fissione_props` |
//! | §5 MIRA analysis | [`mira_eval`] | `mira_bounds` |
//! | §6 future work (top-k) | [`topk_eval`] | `topk_eval` |
//! | ablations (ours) | [`ablations`] | `ablation_*` |
//! | robustness (ours) | [`faults`] | `fault_tolerance` |
//! | churn dynamics (ours) | [`churn_sweep`] | `churn_sweep` |
//! | perf baseline (ours) | [`baseline`] | `bench_baseline` |
//!
//! All runs are deterministic given a seed — including under the parallel
//! driver, whose per-thread statistics merge identically for any thread
//! count. The paper's setup (§4.3.3) is the default: attribute interval
//! `[0, 1000]`, 1000 random queries per measurement, random origins;
//! Figures 5/6 fix `N = 2000` and sweep the range size over
//! `{2, 10, 50, 100, 150, 200, 250, 300}`; Figures 7/8 fix the range size
//! at 20 and sweep `N` over `1000..=8000`. Beyond the paper, the workload
//! axis is open too: `bench_baseline` measures every scheme under the
//! [`dht_api::WorkloadGen`] catalog (uniform, Zipf-skewed hot ranges,
//! clustered, wide scans, correlated rectangles, a production blend).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod baseline;
pub mod churn_sweep;
pub mod faults;
pub mod figures;
pub mod mira_eval;
pub mod output;
pub mod substrate;
pub mod sweeps;
pub mod table1;
pub mod topk_eval;

pub use output::Table;

/// The full workspace registry: every scheme of the paper's Table 1,
/// selectable by name at runtime.
///
/// Single-attribute names: `pira`, `seqwalk`, `dcf-can`, `dcf-can-naive`,
/// `pht-fissione`, `pht-chord`, `skipgraph`, `squid`, `scrap`.
/// Multi-attribute names: `mira`, `squid`, `scrap`.
///
/// # Example
///
/// ```
/// use dht_api::BuildParams;
///
/// let reg = armada_experiments::standard_registry();
/// let mut rng = simnet::rng_from_seed(7);
/// let params = BuildParams::new(100, 0.0, 1000.0).with_object_id_len(24);
/// let mut scheme = reg.build_single("pira", &params, &mut rng).unwrap();
/// scheme.publish(500.0, 1).unwrap();
/// let origin = scheme.random_origin(&mut rng);
/// let out = scheme.range_query(origin, 499.0, 501.0, 0).unwrap();
/// assert_eq!(out.results, vec![1]);
/// ```
pub fn standard_registry() -> dht_api::SchemeRegistry {
    let mut reg = dht_api::SchemeRegistry::new();
    armada::register(&mut reg);
    dht_can::register(&mut reg);
    pht::register(&mut reg);
    skipgraph::register(&mut reg);
    squid::register(&mut reg);
    scrap::register(&mut reg);
    reg
}

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-faithful: 1000 queries per point, full network sizes.
    Full,
    /// Reduced: 100 queries per point, smaller sweeps — used by integration
    /// tests and quick local runs.
    Quick,
}

impl Scale {
    /// Queries per measurement point.
    pub fn queries(self) -> usize {
        match self {
            Scale::Full => 1000,
            Scale::Quick => 100,
        }
    }

    /// Parses `--quick` from CLI arguments (binaries' shared convention).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// The paper's simulation constants (§4.3.3).
pub mod paper {
    /// Attribute interval lower bound.
    pub const DOMAIN_LO: f64 = 0.0;
    /// Attribute interval upper bound.
    pub const DOMAIN_HI: f64 = 1000.0;
    /// Network size for the range-size sweeps (Figures 5 and 6).
    pub const FIG56_N: usize = 2000;
    /// Range sizes swept in Figures 5 and 6.
    pub const RANGE_SIZES: [f64; 8] = [2.0, 10.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0];
    /// Range size for the network-size sweeps (Figures 7 and 8).
    pub const FIG78_RANGE: f64 = 20.0;
    /// Network sizes swept in Figures 7 and 8.
    pub const NETWORK_SIZES: [usize; 8] = [1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000];
    /// ObjectID length (§3: "generally k = 100").
    pub const OBJECT_ID_LEN: usize = 100;
}
