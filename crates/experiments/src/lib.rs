//! Experiment harness regenerating every table and figure of the ICDCS'06
//! Armada paper, plus ablations and robustness studies.
//!
//! Every experiment is a library function returning a [`Table`]; the
//! `src/bin/*` wrappers print the paper-style series and write CSVs to
//! `target/experiments/`. The mapping from paper artifact to module:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 1 (scheme comparison) | [`table1`] | `table1` |
//! | Figure 5 (delay vs range size) | [`figures::fig5`] | `fig5` |
//! | Figure 6 (messages vs range size) | [`figures::fig6`] | `fig6` |
//! | Figure 7 (delay vs network size) | [`figures::fig7`] | `fig7` |
//! | Figure 8 (messages vs network size) | [`figures::fig8`] | `fig8` |
//! | §3 substrate claims | [`substrate`] | `fissione_props` |
//! | §5 MIRA analysis | [`mira_eval`] | `mira_bounds` |
//! | §6 future work (top-k) | [`topk_eval`] | `topk_eval` |
//! | ablations (ours) | [`ablations`] | `ablation_*` |
//! | robustness (ours) | [`faults`] | `fault_tolerance` |
//! | churn dynamics (ours) | [`churn_sweep`] | `churn_sweep` |
//! | replication (ours) | [`replication_sweep`] | `replication_sweep` |
//! | hostile networks (ours) | [`partition_sweep`] | `partition_sweep` |
//! | latency in ms (ours) | [`latency_sweep`] | `latency_sweep` |
//! | perf baseline (ours) | [`baseline`] | `bench_baseline` |
//! | query tracing (ours) | [`trace_explain`] | `trace_explain` |
//!
//! All runs are deterministic given a seed — including under the parallel
//! driver, whose per-thread statistics merge identically for any thread
//! count. The paper's setup (§4.3.3) is the default: attribute interval
//! `[0, 1000]`, 1000 random queries per measurement, random origins;
//! Figures 5/6 fix `N = 2000` and sweep the range size over
//! `{2, 10, 50, 100, 150, 200, 250, 300}`; Figures 7/8 fix the range size
//! at 20 and sweep `N` over `1000..=8000`. Beyond the paper, the workload
//! axis is open too: `bench_baseline` measures every scheme under the
//! [`dht_api::WorkloadGen`] catalog (uniform, Zipf-skewed hot ranges,
//! clustered, wide scans, correlated rectangles, a production blend).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// With the `bench-alloc` feature on, every binary and test of this crate
// runs under the counting allocator, and the baseline's scaling section
// reports allocations per query instead of `null`. The declaration is
// safe code — the (audited) unsafe forwarding lives in `counting-alloc`.
#[cfg(feature = "bench-alloc")]
#[global_allocator]
static COUNTING_ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

pub mod ablations;
pub mod baseline;
pub mod churn_sweep;
pub mod faults;
pub mod figures;
pub mod latency_sweep;
pub mod mira_eval;
pub mod output;
pub mod partition_sweep;
pub mod replication_sweep;
pub mod substrate;
pub mod sweeps;
pub mod table1;
pub mod topk_eval;
pub mod trace_explain;

pub use output::Table;

/// Names of every registered single-attribute scheme that opts into the
/// dynamics layer, discovered at runtime through the capability hook (no
/// hard-coded scheme list — a new dynamic scheme joins every churn and
/// replication experiment by registering itself).
pub fn dynamic_single_names() -> Vec<String> {
    let registry = standard_registry();
    let params = dht_api::BuildParams::new(40, 0.0, 1000.0).with_object_id_len(24);
    registry
        .single_names()
        .into_iter()
        .filter(|name| {
            let mut rng = simnet::rng_from_seed(0xd1a9);
            let mut scheme = registry.build_single(name, &params, &mut rng).expect("build");
            scheme.as_dynamic().is_some()
        })
        .map(str::to_string)
        .collect()
}

/// Shared CLI convention for the experiment binaries: the value following
/// `--name` (or inline as `--name=value`), if present.
pub fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let inline = format!("--{name}=");
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&inline) {
            return Some(v.to_string());
        }
        if *a == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Parses a comma-separated `--name a,b,c` CLI filter into a list.
pub fn arg_list(name: &str) -> Option<Vec<String>> {
    arg_value(name)
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect())
}

/// The shared `--schemes` / `--plans` / `--threads` CLI contract of the
/// sweep binaries (`churn_sweep`, `replication_sweep`): parses and
/// validates the three filters, exiting with a usage error on an unknown
/// plan name or a non-positive thread count. Each slot is `None` when its
/// flag is absent.
pub fn sweep_filter_args() -> (Option<Vec<String>>, Option<Vec<String>>, Option<usize>) {
    let schemes = arg_list("schemes");
    let plans = arg_list("plans");
    if let Some(plans) = &plans {
        for plan in plans {
            if dht_api::ChurnPlan::named(plan).is_err() {
                // detlint: allow(D5) — shared CLI usage error; exits before any report runs
                eprintln!(
                    "error: unknown churn plan {plan:?} (catalog: {})",
                    dht_api::CHURN_PLAN_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    let threads = arg_value("threads").map(|raw| match raw.parse::<usize>() {
        Ok(t) if t > 0 => t,
        _ => {
            eprintln!("error: --threads wants a positive integer, got {raw:?}"); // detlint: allow(D5) — shared CLI usage error; exits before any report runs
            std::process::exit(2);
        }
    });
    (schemes, plans, threads)
}

/// Exits with a usage error when a `--schemes` filter matched nothing.
pub fn require_schemes(selected: &[String]) {
    if selected.is_empty() {
        // detlint: allow(D5) — shared CLI usage error; exits before any report runs
        eprintln!(
            "error: no dynamic scheme matches the --schemes filter (have: {})",
            dynamic_single_names().join(", ")
        );
        std::process::exit(2);
    }
}

/// The full workspace registry: every scheme of the paper's Table 1,
/// selectable by name at runtime.
///
/// Single-attribute names: `pira`, `seqwalk`, `dcf-can`, `dcf-can-naive`,
/// `pht-fissione`, `pht-chord`, `skipgraph`, `squid`, `scrap`.
/// Multi-attribute names: `mira`, `squid`, `scrap`.
///
/// # Example
///
/// ```
/// use dht_api::BuildParams;
///
/// let reg = armada_experiments::standard_registry();
/// let mut rng = simnet::rng_from_seed(7);
/// let params = BuildParams::new(100, 0.0, 1000.0).with_object_id_len(24);
/// let mut scheme = reg.build_single("pira", &params, &mut rng).unwrap();
/// scheme.publish(500.0, 1).unwrap();
/// let origin = scheme.random_origin(&mut rng);
/// let out = scheme.range_query(origin, 499.0, 501.0, 0).unwrap();
/// assert_eq!(out.results, vec![1]);
/// ```
pub fn standard_registry() -> dht_api::SchemeRegistry {
    let mut reg = dht_api::SchemeRegistry::new();
    armada::register(&mut reg);
    dht_can::register(&mut reg);
    pht::register(&mut reg);
    skipgraph::register(&mut reg);
    squid::register(&mut reg);
    scrap::register(&mut reg);
    reg
}

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-faithful: 1000 queries per point, full network sizes.
    Full,
    /// Reduced: 100 queries per point, smaller sweeps — used by integration
    /// tests and quick local runs.
    Quick,
}

impl Scale {
    /// Queries per measurement point.
    pub fn queries(self) -> usize {
        match self {
            Scale::Full => 1000,
            Scale::Quick => 100,
        }
    }

    /// Parses `--quick` from CLI arguments (binaries' shared convention).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// The paper's simulation constants (§4.3.3).
pub mod paper {
    /// Attribute interval lower bound.
    pub const DOMAIN_LO: f64 = 0.0;
    /// Attribute interval upper bound.
    pub const DOMAIN_HI: f64 = 1000.0;
    /// Network size for the range-size sweeps (Figures 5 and 6).
    pub const FIG56_N: usize = 2000;
    /// Range sizes swept in Figures 5 and 6.
    pub const RANGE_SIZES: [f64; 8] = [2.0, 10.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0];
    /// Range size for the network-size sweeps (Figures 7 and 8).
    pub const FIG78_RANGE: f64 = 20.0;
    /// Network sizes swept in Figures 7 and 8.
    pub const NETWORK_SIZES: [usize; 8] = [1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000];
    /// ObjectID length (§3: "generally k = 100").
    pub const OBJECT_ID_LEN: usize = 100;
}
