//! R2 — dynamics: recall and delay under membership churn, across every
//! dynamic scheme.
//!
//! The paper evaluates fully-stabilized networks; this extension measures
//! what the related systems literature says actually differentiates
//! schemes — behaviour *while the membership changes*. Every scheme whose
//! [`as_dynamic`](dht_api::RangeScheme::as_dynamic) hook opts in runs the
//! same epoch-driven workload under a churn plan at a sweep of churn rates;
//! the rate-0 run of each scheme is its frozen control, so "result recall"
//! is directly the fraction of the control's answers that survive churn.
//!
//! The default plan is `massacre`, which defers stabilization (every
//! *other* epoch), so the per-epoch series visibly dips where crashes have
//! eaten records and recovers where the stabilize pass re-published them;
//! the table reports both the mean and the worst epoch. The sweep is
//! filterable for local iteration — [`ChurnSweepConfig`] selects schemes,
//! plans, and the worker thread count, mirrored by the binary's
//! `--schemes`, `--plans`, and `--threads` flags.

use crate::output::Table;
use crate::{standard_registry, Scale};
use dht_api::{BuildParams, ChurnPlan, DriverReport, ParallelDriver, WorkloadGen};
use rand::Rng;

/// Churn rates swept (membership events per epoch transition); 0 is the
/// frozen control every other rate is compared against.
pub const CHURN_RATES: [usize; 3] = [0, 4, 16];

/// Names of every registered single-attribute scheme that opts into the
/// dynamics layer (re-exported for compatibility; see
/// [`crate::dynamic_single_names`]).
pub fn dynamic_single_names() -> Vec<String> {
    crate::dynamic_single_names()
}

/// What the sweep runs: scale plus optional scheme/plan filters — the
/// all-defaults config reproduces the committed R2 numbers.
#[derive(Debug, Clone)]
pub struct ChurnSweepConfig {
    /// Experiment scale (network size, epochs, queries per epoch).
    pub scale: Scale,
    /// Schemes to sweep; `None` = every dynamic scheme.
    pub schemes: Option<Vec<String>>,
    /// Churn plans to sweep; the default is `["massacre"]`, the
    /// recall-stress plan.
    pub plans: Vec<String>,
    /// Worker threads for the parallel driver (the report is identical for
    /// any value; this only tunes wall-clock time).
    pub threads: usize,
}

impl ChurnSweepConfig {
    /// The default sweep at the given scale.
    pub fn new(scale: Scale) -> Self {
        ChurnSweepConfig {
            scale,
            schemes: None,
            plans: vec!["massacre".to_string()],
            threads: dht_api::default_threads(),
        }
    }

    /// The scheme names this config selects, in registry order.
    pub fn scheme_names(&self) -> Vec<String> {
        match &self.schemes {
            None => crate::dynamic_single_names(),
            Some(filter) => crate::dynamic_single_names()
                .into_iter()
                .filter(|n| filter.iter().any(|f| f == n))
                .collect(),
        }
    }
}

/// One scheme × plan × churn-rate measurement.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Churn plan name.
    pub plan: String,
    /// Membership events per epoch transition.
    pub rate: usize,
    /// The merged epoch-driven report (carries the per-epoch series).
    pub report: DriverReport,
    /// `results_returned / control results_returned` — 1.0 when churn cost
    /// no answers overall.
    pub result_recall: f64,
    /// The worst single epoch's share of the control's answers for that
    /// epoch — where deferred stabilization shows.
    pub worst_epoch_recall: f64,
    /// Live peers after the final epoch.
    pub final_peers: usize,
}

/// Runs the default sweep (every dynamic scheme, the `massacre` plan) and
/// returns each scheme's points in rate order.
///
/// # Panics
///
/// Panics if a dynamic scheme fails to build or errors on a fault-free
/// query — the sweep is meaningless with missing cells.
pub fn run_points(scale: Scale) -> Vec<ChurnPoint> {
    run_points_with(&ChurnSweepConfig::new(scale))
}

/// Runs the sweep under an explicit config (scheme/plan/thread filters).
///
/// # Panics
///
/// As [`run_points`].
pub fn run_points_with(cfg: &ChurnSweepConfig) -> Vec<ChurnPoint> {
    let registry = standard_registry();
    let (n, epochs) = match cfg.scale {
        Scale::Full => (600, 6),
        Scale::Quick => (150, 4),
    };
    let queries_per_epoch = (cfg.scale.queries() / epochs).max(10);
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let params = BuildParams::new(n, domain.0, domain.1).with_object_id_len(32);
    let workload = WorkloadGen::named("uniform", domain).expect("cataloged");
    let driver = ParallelDriver::new(queries_per_epoch).with_seed(0xc482).with_threads(cfg.threads);

    let mut points = Vec::new();
    for name in cfg.scheme_names() {
        for plan_name in &cfg.plans {
            let mut control_epochs: Vec<u64> = Vec::new();
            for &rate in &CHURN_RATES {
                let mut rng = simnet::rng_from_seed(0xc482 ^ dht_api::fnv1a(name.as_bytes()));
                let mut scheme =
                    registry.build_single(&name, &params, &mut rng).expect("scheme builds");
                for h in 0..n as u64 {
                    scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
                }
                let plan = ChurnPlan::named(plan_name).expect("cataloged").with_rate(rate);
                let report = driver
                    .run_epochs(scheme.as_mut(), &workload, &plan, epochs)
                    .expect("epoch run");
                let per_epoch: Vec<u64> =
                    report.epochs.iter().map(|e| e.results_returned).collect();
                if rate == 0 {
                    control_epochs = per_epoch.clone();
                }
                let control_total: u64 = control_epochs.iter().sum();
                let result_recall = if control_total == 0 {
                    1.0
                } else {
                    report.results_returned as f64 / control_total as f64
                };
                let worst_epoch_recall = per_epoch
                    .iter()
                    .zip(&control_epochs)
                    .map(|(&got, &want)| if want == 0 { 1.0 } else { got as f64 / want as f64 })
                    .fold(f64::INFINITY, f64::min);
                let final_peers = report.epochs.last().expect("epochs ran").peers;
                points.push(ChurnPoint {
                    scheme: name.clone(),
                    plan: plan_name.clone(),
                    rate,
                    report,
                    result_recall,
                    worst_epoch_recall,
                    final_peers,
                });
            }
        }
    }
    points
}

/// Runs the sweep and renders the recall-vs-churn-rate table.
pub fn run(scale: Scale) -> Table {
    run_with(&ChurnSweepConfig::new(scale))
}

/// Renders the table for an explicit config.
pub fn run_with(cfg: &ChurnSweepConfig) -> Table {
    let points = run_points_with(cfg);
    let mut t = Table::new(
        "R2 — recall under churn (epoch-driven)",
        &[
            "scheme",
            "plan",
            "churn rate",
            "final peers",
            "avg delay",
            "exact rate",
            "peer recall",
            "result recall",
            "worst epoch",
        ],
    );
    for p in &points {
        t.push_row(vec![
            p.scheme.clone(),
            p.plan.clone(),
            p.rate.to_string(),
            p.final_peers.to_string(),
            format!("{:.2}", p.report.delay.mean),
            format!("{:.3}", p.report.exact_rate),
            format!("{:.3}", p.report.recall.mean),
            format!("{:.3}", p.result_recall),
            format!("{:.3}", p.worst_epoch_recall),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dynamic_scheme_is_swept_and_controls_are_perfect() {
        let points = run_points(Scale::Quick);
        let schemes = crate::dynamic_single_names();
        assert_eq!(
            schemes,
            vec!["dcf-can", "dcf-can-naive", "pht-chord", "pht-fissione", "pira", "seqwalk"],
            "runtime discovery should find exactly the opted-in schemes"
        );
        assert_eq!(points.len(), schemes.len() * CHURN_RATES.len());
        for p in &points {
            // Frozen controls answer everything, exactly.
            if p.rate == 0 {
                assert_eq!(p.result_recall, 1.0, "{} control", p.scheme);
                assert_eq!(p.report.exact_rate, 1.0, "{} control", p.scheme);
            }
            assert_eq!(p.plan, "massacre", "default sweep runs the stress plan");
            assert!(p.result_recall <= 1.0 + 1e-9, "{}@{}", p.scheme, p.rate);
            assert!(p.worst_epoch_recall <= p.result_recall + 1e-9);
            assert_eq!(p.report.epochs.len(), 4);
            assert!(p.final_peers > 0);
        }
    }

    #[test]
    fn filters_narrow_the_sweep() {
        let cfg = ChurnSweepConfig {
            schemes: Some(vec!["pira".into(), "no-such-scheme".into()]),
            plans: vec!["steady-churn".into(), "join-storm".into()],
            threads: 2,
            ..ChurnSweepConfig::new(Scale::Quick)
        };
        assert_eq!(cfg.scheme_names(), vec!["pira"], "unknown names filter out silently");
        let points = run_points_with(&cfg);
        // 1 scheme × 2 plans × 3 rates.
        assert_eq!(points.len(), 2 * CHURN_RATES.len());
        assert!(points.iter().all(|p| p.scheme == "pira"));
        assert!(points.iter().any(|p| p.plan == "join-storm"));
        // Graceful plans lose nothing: recall stays perfect at every rate.
        for p in &points {
            assert!(p.result_recall > 0.999, "{}/{}@{}", p.scheme, p.plan, p.rate);
        }
    }
}
