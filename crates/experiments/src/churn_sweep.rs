//! R2 — dynamics: recall and delay under membership churn, across every
//! dynamic scheme.
//!
//! The paper evaluates fully-stabilized networks; this extension measures
//! what the related systems literature says actually differentiates
//! schemes — behaviour *while the membership changes*. Every scheme whose
//! [`as_dynamic`](dht_api::RangeScheme::as_dynamic) hook opts in runs the
//! same epoch-driven workload under the crash-heavy `massacre` plan at a
//! sweep of churn rates; the rate-0 run of each scheme is its frozen
//! control, so "result recall" is directly the fraction of the control's
//! answers that survive churn.
//!
//! `massacre` defers stabilization (every *other* epoch), so the per-epoch
//! series visibly dips where crashes have eaten records and recovers where
//! the stabilize pass re-published them; the table reports both the mean
//! and the worst epoch.

use crate::output::Table;
use crate::{standard_registry, Scale};
use dht_api::{BuildParams, ChurnPlan, DriverReport, ParallelDriver, WorkloadGen};
use rand::Rng;

/// Churn rates swept (membership events per epoch transition); 0 is the
/// frozen control every other rate is compared against.
pub const CHURN_RATES: [usize; 3] = [0, 4, 16];

/// Names of every registered single-attribute scheme that opts into the
/// dynamics layer, discovered at runtime through the capability hook (no
/// hard-coded scheme list — a new dynamic scheme joins this sweep by
/// registering itself).
pub fn dynamic_single_names() -> Vec<String> {
    let registry = standard_registry();
    let params = BuildParams::new(40, 0.0, 1000.0).with_object_id_len(24);
    registry
        .single_names()
        .into_iter()
        .filter(|name| {
            let mut rng = simnet::rng_from_seed(0xd1a9);
            let mut scheme = registry.build_single(name, &params, &mut rng).expect("build");
            scheme.as_dynamic().is_some()
        })
        .map(str::to_string)
        .collect()
}

/// One scheme × churn-rate measurement.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Membership events per epoch transition.
    pub rate: usize,
    /// The merged epoch-driven report (carries the per-epoch series).
    pub report: DriverReport,
    /// `results_returned / control results_returned` — 1.0 when churn cost
    /// no answers overall.
    pub result_recall: f64,
    /// The worst single epoch's share of the control's answers for that
    /// epoch — where deferred stabilization shows.
    pub worst_epoch_recall: f64,
    /// Live peers after the final epoch.
    pub final_peers: usize,
}

/// Runs the sweep and returns each scheme's points in rate order.
///
/// # Panics
///
/// Panics if a dynamic scheme fails to build or errors on a fault-free
/// query — the sweep is meaningless with missing cells.
pub fn run_points(scale: Scale) -> Vec<ChurnPoint> {
    let registry = standard_registry();
    let (n, epochs) = match scale {
        Scale::Full => (600, 6),
        Scale::Quick => (150, 4),
    };
    let queries_per_epoch = (scale.queries() / epochs).max(10);
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let params = BuildParams::new(n, domain.0, domain.1).with_object_id_len(32);
    let workload = WorkloadGen::named("uniform", domain).expect("cataloged");
    let driver = ParallelDriver::new(queries_per_epoch).with_seed(0xc482);

    let mut points = Vec::new();
    for name in dynamic_single_names() {
        let mut control_epochs: Vec<u64> = Vec::new();
        for &rate in &CHURN_RATES {
            let mut rng = simnet::rng_from_seed(0xc482 ^ dht_api::fnv1a(name.as_bytes()));
            let mut scheme =
                registry.build_single(&name, &params, &mut rng).expect("scheme builds");
            for h in 0..n as u64 {
                scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
            }
            let plan = ChurnPlan::named("massacre").expect("cataloged").with_rate(rate);
            let report =
                driver.run_epochs(scheme.as_mut(), &workload, &plan, epochs).expect("epoch run");
            let per_epoch: Vec<u64> = report.epochs.iter().map(|e| e.results_returned).collect();
            if rate == 0 {
                control_epochs = per_epoch.clone();
            }
            let control_total: u64 = control_epochs.iter().sum();
            let result_recall = if control_total == 0 {
                1.0
            } else {
                report.results_returned as f64 / control_total as f64
            };
            let worst_epoch_recall = per_epoch
                .iter()
                .zip(&control_epochs)
                .map(|(&got, &want)| if want == 0 { 1.0 } else { got as f64 / want as f64 })
                .fold(f64::INFINITY, f64::min);
            let final_peers = report.epochs.last().expect("epochs ran").peers;
            points.push(ChurnPoint {
                scheme: name.clone(),
                rate,
                report,
                result_recall,
                worst_epoch_recall,
                final_peers,
            });
        }
    }
    points
}

/// Runs the sweep and renders the recall-vs-churn-rate table.
pub fn run(scale: Scale) -> Table {
    let points = run_points(scale);
    let mut t = Table::new(
        "R2 — recall under churn (massacre plan, epoch-driven)",
        &[
            "scheme",
            "churn rate",
            "final peers",
            "avg delay",
            "exact rate",
            "peer recall",
            "result recall",
            "worst epoch",
        ],
    );
    for p in &points {
        t.push_row(vec![
            p.scheme.clone(),
            p.rate.to_string(),
            p.final_peers.to_string(),
            format!("{:.2}", p.report.delay.mean),
            format!("{:.3}", p.report.exact_rate),
            format!("{:.3}", p.report.recall.mean),
            format!("{:.3}", p.result_recall),
            format!("{:.3}", p.worst_epoch_recall),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dynamic_scheme_is_swept_and_controls_are_perfect() {
        let points = run_points(Scale::Quick);
        let schemes = dynamic_single_names();
        assert_eq!(
            schemes,
            vec!["dcf-can", "dcf-can-naive", "pht-chord", "pht-fissione", "pira", "seqwalk"],
            "runtime discovery should find exactly the opted-in schemes"
        );
        assert_eq!(points.len(), schemes.len() * CHURN_RATES.len());
        for p in &points {
            // Frozen controls answer everything, exactly.
            if p.rate == 0 {
                assert_eq!(p.result_recall, 1.0, "{} control", p.scheme);
                assert_eq!(p.report.exact_rate, 1.0, "{} control", p.scheme);
            }
            assert!(p.result_recall <= 1.0 + 1e-9, "{}@{}", p.scheme, p.rate);
            assert!(p.worst_epoch_recall <= p.result_recall + 1e-9);
            assert_eq!(p.report.epochs.len(), 4);
            assert!(p.final_peers > 0);
        }
    }
}
