//! R3: recall through partitions and the retry premium under loss, every
//! dynamic scheme.
//!
//! ```sh
//! cargo run --release -p armada-experiments --bin partition_sweep [-- --quick]
//!     [--schemes pira,dcf-can] [--plans split-brain,island-3]
//!     [--nets unit,cluster] [--threads 4]
//! ```
//!
//! With no filters the sweep runs every dynamic scheme under both default
//! partition plans × both net models (R3a) and the `lossy-p` retry ladder
//! r1..r3 (R3b) — the committed R3 configuration. The filters exist for
//! local iteration.

use armada_experiments::partition_sweep::{run_retry_with, run_with, PartitionSweepConfig};
use armada_experiments::{arg_list, arg_value, require_schemes, Scale};
use simnet::{FaultPlan, NetModel};

fn main() {
    let mut cfg = PartitionSweepConfig::new(Scale::from_args());
    if let Some(schemes) = arg_list("schemes") {
        cfg.schemes = Some(schemes);
    }
    if let Some(plans) = arg_list("plans") {
        for plan in &plans {
            let known = FaultPlan::named_hostile(plan).is_some_and(|p| p.partition().is_some());
            if !known {
                eprintln!("error: {plan:?} is not a partition plan (try split-brain, island-K)");
                std::process::exit(2);
            }
        }
        cfg.plans = plans;
    }
    if let Some(nets) = arg_list("nets") {
        for net in &nets {
            if NetModel::named(net).is_none() {
                eprintln!(
                    "error: unknown net model {net:?} (catalog: {})",
                    simnet::NET_MODEL_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        }
        cfg.nets = nets;
    }
    if let Some(threads) = arg_value("threads") {
        match threads.parse::<usize>() {
            Ok(t) if t > 0 => cfg.threads = t,
            _ => {
                eprintln!("error: --threads takes a positive integer");
                std::process::exit(2);
            }
        }
    }
    require_schemes(&cfg.scheme_names());
    run_with(&cfg).emit("partition_sweep");
    run_retry_with(&cfg).emit("partition_retry_premium");
}
