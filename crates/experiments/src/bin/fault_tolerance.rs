//! R1: PIRA recall under message loss and crashed peers.
//! Usage: `cargo run --release -p armada-experiments --bin fault_tolerance [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::faults::run(scale).emit("fault_tolerance");
}
