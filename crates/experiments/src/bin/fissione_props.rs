//! Validates the §3 substrate claims (degree, diameter, routing delay).
//! Usage: `cargo run --release -p armada-experiments --bin fissione_props [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::substrate::run(scale).emit("fissione_props");
}
