//! Regenerates Figure 8 (messages and ratios at different network sizes).
//! Usage: `cargo run --release -p armada-experiments --bin fig8 [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::figures::fig8::run(scale).emit("fig8");
}
