//! R3: recall, message overhead, and repair traffic vs replication factor.
//!
//! ```sh
//! cargo run --release -p armada-experiments --bin replication_sweep [-- --quick]
//!     [--schemes pira,dcf-can] [--plans massacre] [--threads 4]
//! ```
//!
//! Defaults to every dynamic scheme × every cataloged churn plan ×
//! `r ∈ {1, 2, 3, 5}` under `successor-r` placement.

use armada_experiments::replication_sweep::{run_with, ReplicationSweepConfig};
use armada_experiments::{require_schemes, sweep_filter_args, Scale};

fn main() {
    let mut cfg = ReplicationSweepConfig::new(Scale::from_args());
    let (schemes, plans, threads) = sweep_filter_args();
    if schemes.is_some() {
        cfg.schemes = schemes;
    }
    if let Some(plans) = plans {
        cfg.plans = plans;
    }
    if let Some(threads) = threads {
        cfg.threads = threads;
    }
    require_schemes(&cfg.scheme_names());
    run_with(&cfg).emit("replication_sweep");
}
