//! E1: top-k query evaluation (the paper's §6 future work, measured).
//! Usage: `cargo run --release -p armada-experiments --bin topk_eval [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::topk_eval::run(scale).emit("topk_eval");
}
