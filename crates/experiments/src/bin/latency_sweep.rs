//! R4: query latency in virtual milliseconds, every scheme × every net
//! model, over range size and network size.
//!
//! ```sh
//! cargo run --release -p armada-experiments --bin latency_sweep [-- --quick]
//!     [--schemes pira,seqwalk] [--net wan,straggler] [--threads 4]
//! ```
//!
//! With no filters the sweep runs every registered single-attribute
//! scheme under the whole [`NetModel`](dht_api::NetModel) catalog — the
//! committed R4 configuration. The filters exist for local iteration: a
//! single scheme × model cell runs in seconds where the full grid takes
//! minutes.

use armada_experiments::latency_sweep::{run_with, LatencySweepConfig};
use armada_experiments::{arg_list, arg_value, Scale};

fn main() {
    let mut cfg = LatencySweepConfig::new(Scale::from_args());
    if let Some(schemes) = arg_list("schemes") {
        cfg.schemes = Some(schemes);
    }
    if let Some(nets) = arg_list("net") {
        for net in &nets {
            if dht_api::NetModel::named(net).is_none() {
                eprintln!(
                    "error: unknown net model {net:?} (catalog: {})",
                    dht_api::NET_MODEL_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        }
        cfg.nets = nets;
    }
    if let Some(raw) = arg_value("threads") {
        match raw.parse::<usize>() {
            Ok(t) if t > 0 => cfg.threads = t,
            _ => {
                eprintln!("error: --threads wants a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        }
    }
    if cfg.scheme_names().is_empty() {
        eprintln!(
            "error: no scheme matches the --schemes filter (have: {})",
            armada_experiments::standard_registry().single_names().join(", ")
        );
        std::process::exit(2);
    }
    run_with(&cfg).emit("latency_sweep");
}
