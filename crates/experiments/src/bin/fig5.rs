//! Regenerates Figure 5 (query delay at different range sizes).
//! Usage: `cargo run --release -p armada-experiments --bin fig5 [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::figures::fig5::run(scale).emit("fig5");
}
