//! Regenerates Figure 6 (messages and ratios at different range sizes).
//! Usage: `cargo run --release -p armada-experiments --bin fig6 [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::figures::fig6::run(scale).emit("fig6");
}
