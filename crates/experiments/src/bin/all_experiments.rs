//! Runs every experiment in sequence (the full paper reproduction).
//! Usage: `cargo run --release -p armada-experiments --bin all_experiments [--quick]`

use armada_experiments as exp;

fn main() {
    let scale = exp::Scale::from_args();
    exp::substrate::run(scale).emit("fissione_props");
    exp::table1::run(scale).emit("table1");
    exp::figures::fig5::run(scale).emit("fig5");
    exp::figures::fig6::run(scale).emit("fig6");
    exp::figures::fig7::run(scale).emit("fig7");
    exp::figures::fig8::run(scale).emit("fig8");
    exp::mira_eval::run(scale).emit("mira_bounds");
    exp::topk_eval::run(scale).emit("topk_eval");
    exp::ablations::flood::run(scale).emit("ablation_flood");
    exp::ablations::balance::run(scale).emit("ablation_balance");
    exp::ablations::pht_substrate::run(scale).emit("ablation_pht");
    exp::faults::run(scale).emit("fault_tolerance");
}
