//! Regenerates Table 1 (comparison of general range-query schemes).
//! Usage: `cargo run --release -p armada-experiments --bin table1 [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::table1::run(scale).emit("table1");
}
