//! A1 ablation: DCF duplicate suppression vs naive flooding.
//! Usage: `cargo run --release -p armada-experiments --bin ablation_flood [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::ablations::flood::run(scale).emit("ablation_flood");
}
