//! R2: recall and delay under membership churn, every dynamic scheme.
//!
//! ```sh
//! cargo run --release -p armada-experiments --bin churn_sweep [-- --quick]
//!     [--schemes pira,dcf-can] [--plans massacre,steady-churn] [--threads 4]
//! ```
//!
//! With no filters the sweep runs every dynamic scheme under the
//! `massacre` stress plan — the committed R2 configuration. The filters
//! exist for local iteration: a single scheme × plan cell runs in seconds
//! where the full sweep takes minutes.

use armada_experiments::churn_sweep::{run_with, ChurnSweepConfig};
use armada_experiments::{require_schemes, sweep_filter_args, Scale};

fn main() {
    let mut cfg = ChurnSweepConfig::new(Scale::from_args());
    let (schemes, plans, threads) = sweep_filter_args();
    if schemes.is_some() {
        cfg.schemes = schemes;
    }
    if let Some(plans) = plans {
        cfg.plans = plans;
    }
    if let Some(threads) = threads {
        cfg.threads = threads;
    }
    require_schemes(&cfg.scheme_names());
    run_with(&cfg).emit("churn_sweep");
}
