//! R2: recall and delay under membership churn, every dynamic scheme.
//! Usage: `cargo run --release -p armada-experiments --bin churn_sweep [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::churn_sweep::run(scale).emit("churn_sweep");
}
