//! A2 ablation: FISSIONE split balancing rules.
//! Usage: `cargo run --release -p armada-experiments --bin ablation_balance [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::ablations::balance::run(scale).emit("ablation_balance");
}
