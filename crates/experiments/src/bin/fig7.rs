//! Regenerates Figure 7 (query delay at different network sizes).
//! Usage: `cargo run --release -p armada-experiments --bin fig7 [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::figures::fig7::run(scale).emit("fig7");
}
