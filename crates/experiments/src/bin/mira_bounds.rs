//! Measures the §5 MIRA delay bounds.
//! Usage: `cargo run --release -p armada-experiments --bin mira_bounds [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::mira_eval::run(scale).emit("mira_bounds");
}
