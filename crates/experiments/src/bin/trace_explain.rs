//! Explain one query's cost, hop by hop — or stream a deterministic
//! sample of a whole batch as schema-validated JSON Lines.
//!
//! ```sh
//! # The causal tree for query 17 of the default 1000-query batch:
//! cargo run --release -p armada-experiments --bin trace_explain -- \
//!     --scheme pira+r3@wan@lossy-10/r2 --query 17
//!
//! # The raw event stream (one JSON object per line):
//! cargo run --release -p armada-experiments --bin trace_explain -- \
//!     --scheme pira --query 17 --format jsonl
//!
//! # A 1-in-64 hash-sampled slice of every query in the batch:
//! cargo run --release -p armada-experiments --bin trace_explain -- \
//!     --scheme pira --sample 1/64 --format jsonl
//! ```
//!
//! Every rendered query is accounting-checked first: the explain tree's
//! recursive total must reproduce the reported `delay`, `latency`, and
//! `messages` exactly, or the binary exits nonzero. `--n`, `--queries`,
//! `--seed`, and `--workload` move the batch the indices address.

use armada_experiments::arg_value;
use armada_experiments::trace_explain::{run_one, run_sampled, Format, TraceExplainConfig};

fn main() {
    let mut cfg = TraceExplainConfig::default();
    if let Some(scheme) = arg_value("scheme") {
        cfg.scheme = scheme;
    }
    if let Some(workload) = arg_value("workload") {
        cfg.workload = workload;
    }
    cfg.n = parsed_or_exit("n", cfg.n);
    cfg.queries = parsed_or_exit("queries", cfg.queries);
    cfg.seed = parsed_or_exit("seed", cfg.seed);
    let format = match arg_value("format") {
        None => Format::Text,
        Some(raw) => Format::parse(&raw).unwrap_or_else(|| {
            eprintln!("error: --format wants text, jsonl, or chrome; got {raw:?}");
            std::process::exit(2);
        }),
    };
    let sample = arg_value("sample").map(|raw| {
        raw.strip_prefix("1/")
            .and_then(|k| k.parse::<u64>().ok())
            .filter(|&k| k >= 1)
            .unwrap_or_else(|| {
                eprintln!("error: --sample wants the form 1/K (K >= 1), got {raw:?}");
                std::process::exit(2);
            })
    });
    let rendered = match (sample, arg_value("query")) {
        (Some(_), Some(_)) => {
            eprintln!("error: --sample and --query are mutually exclusive");
            std::process::exit(2);
        }
        (Some(k), None) => run_sampled(&cfg, k, format),
        (None, maybe_q) => {
            let q = match maybe_q {
                None => 0,
                Some(raw) => raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --query wants a batch index, got {raw:?}");
                    std::process::exit(2);
                }),
            };
            run_one(&cfg, q, format)
        }
    };
    match rendered {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses `--name` as the flag's type, keeping `default` when absent and
/// exiting with a usage error when unparseable.
fn parsed_or_exit<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg_value(name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: --{name} could not parse {raw:?}");
            std::process::exit(2);
        }),
    }
}
