//! Runs the scheme × workload baseline grid and persists
//! `BENCH_baseline.json` at the workspace root.
//!
//! ```sh
//! cargo run --release -p armada-experiments --bin bench_baseline            # committed scale
//! cargo run --release -p armada-experiments --bin bench_baseline -- --quick # smoke scale
//! cargo run --release -p armada-experiments --bin bench_baseline -- --quick --check-schema
//! ```
//!
//! `--check-schema` additionally compares the schema tag this binary emits
//! against the committed `BENCH_baseline.json` and exits non-zero on
//! drift — the CI bench-schema smoke job runs exactly that, so a schema
//! bump that forgets to regenerate the committed artifact fails before it
//! lands.

use armada_experiments::baseline::{self, BaselineConfig};
use armada_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let check_schema = std::env::args().any(|a| a == "--check-schema");
    let cfg = match scale {
        Scale::Full => BaselineConfig::full(),
        Scale::Quick => BaselineConfig::quick(),
    };
    eprintln!(
        "bench_baseline: N = {}, {} queries/cell, {} threads — building schemes…",
        cfg.n, cfg.queries, cfg.threads
    );
    let report = baseline::run(&cfg);
    print!("{}", report.to_table().to_markdown());
    // Only full-scale runs refresh the committed baseline; --quick smoke
    // runs land under target/ so they can never clobber the trajectory.
    let written = match scale {
        Scale::Full => report.write_json(),
        Scale::Quick => report.write_json_to(
            armada_experiments::output::output_dir().join("BENCH_baseline_quick.json"),
        ),
    };
    match written {
        Ok(path) => println!("\n[json] {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write baseline json: {e}");
            std::process::exit(1);
        }
    }
    if check_schema {
        let committed_path = baseline::baseline_path();
        let committed = match std::fs::read_to_string(&committed_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", committed_path.display());
                std::process::exit(1);
            }
        };
        let want = format!("\"schema\": \"{}\"", baseline::SCHEMA_VERSION);
        if committed.contains(&want) {
            println!("[schema] committed baseline matches {}", baseline::SCHEMA_VERSION);
        } else {
            let found = committed
                .lines()
                .find(|l| l.contains("\"schema\""))
                .unwrap_or("<no schema line>")
                .trim();
            eprintln!(
                "error: schema drift — this binary emits {:?} but {} has {}",
                baseline::SCHEMA_VERSION,
                committed_path.display(),
                found
            );
            eprintln!(
                "regenerate with: cargo run --release -p armada-experiments --bin bench_baseline"
            );
            std::process::exit(1);
        }
    }
}
