//! Runs the scheme × workload baseline grid and persists
//! `BENCH_baseline.json` at the workspace root.
//!
//! ```sh
//! cargo run --release -p armada-experiments --bin bench_baseline            # committed scale
//! cargo run --release -p armada-experiments --bin bench_baseline -- --quick # smoke scale
//! cargo run --release -p armada-experiments --bin bench_baseline -- --quick --check-schema
//! cargo run --release -p armada-experiments --bin bench_baseline -- --huge  # adds N = 10⁶
//! cargo run --release -p armada-experiments --bin bench_baseline -- \
//!     --quick --scaling-ns 10000 --gate-qps --gate-allocs                   # CI perf gate
//! ```
//!
//! Flags:
//!
//! - `--check-schema` compares the schema tag this binary emits against
//!   the committed `BENCH_baseline.json` and exits non-zero on drift —
//!   the CI bench-schema smoke job runs exactly that, so a schema bump
//!   that forgets to regenerate the committed artifact fails before it
//!   lands.
//! - `--scaling-ns a,b,c` overrides the network sizes the scaling
//!   section sweeps (the CI perf gate uses this to run one mid-size N
//!   that overlaps the committed full-scale curve).
//! - `--huge` appends `N = 10⁶` to the scaling sweep — deliberately
//!   opt-in: that point costs minutes and gigabytes, so it never runs by
//!   accident on CI or in a default regeneration.
//! - `--gate-qps` re-reads the committed baseline after the run and
//!   fails (exit 1) if any scaling cell measured here is more than 25%
//!   slower (qps) than the same `(scheme, N)` cell in the committed
//!   curve. Cells absent from the committed curve are skipped, so the
//!   gate is inert until a full-scale baseline with that N is committed.
//! - `--gate-allocs` is the same diff for the `allocs_per_query` column:
//!   fail if any scaling cell allocates more than 25% above the
//!   committed figure. It compares only cells where BOTH sides carry a
//!   number, so it is inert without `--features bench-alloc` (and
//!   against a committed baseline generated without it).
//!
//! Run with `--features bench-alloc` to fill the scaling section's
//! `allocs_per_query` column (otherwise it is `null`).

use armada_experiments::baseline::{self, BaselineConfig};
use armada_experiments::Scale;

/// Allowed fractional qps drop per scaling cell before `--gate-qps` fails.
const GATE_QPS_DROP: f64 = 0.25;

/// Allowed fractional allocations/query growth per scaling cell before
/// `--gate-allocs` fails.
const GATE_ALLOCS_GROWTH: f64 = 0.25;

fn main() {
    let scale = Scale::from_args();
    let check_schema = std::env::args().any(|a| a == "--check-schema");
    let gate_qps = std::env::args().any(|a| a == "--gate-qps");
    let gate_allocs = std::env::args().any(|a| a == "--gate-allocs");
    let huge = std::env::args().any(|a| a == "--huge");
    let mut cfg = match scale {
        Scale::Full => BaselineConfig::full(),
        Scale::Quick => BaselineConfig::quick(),
    };
    if let Some(ns) = armada_experiments::arg_list("scaling-ns") {
        cfg.scaling_ns = ns
            .iter()
            .map(|raw| match raw.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("error: --scaling-ns wants positive integers, got {raw:?}");
                    std::process::exit(2);
                }
            })
            .collect();
    }
    if huge {
        cfg.scaling_ns.push(1_000_000);
    }
    eprintln!(
        "bench_baseline: N = {}, {} queries/cell, {} threads, scaling N = {:?} — building schemes…",
        cfg.n, cfg.queries, cfg.threads, cfg.scaling_ns
    );
    let report = baseline::run(&cfg);
    print!("{}", report.to_table().to_markdown());
    // Only full-scale runs refresh the committed baseline; --quick smoke
    // runs land under target/ so they can never clobber the trajectory.
    let written = match scale {
        Scale::Full => report.write_json(),
        Scale::Quick => report.write_json_to(
            armada_experiments::output::output_dir().join("BENCH_baseline_quick.json"),
        ),
    };
    match written {
        Ok(path) => println!("\n[json] {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write baseline json: {e}");
            std::process::exit(1);
        }
    }
    // All post-run checks diff against the committed artifact.
    let committed = (check_schema || gate_qps || gate_allocs).then(|| {
        let committed_path = baseline::baseline_path();
        match std::fs::read_to_string(&committed_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", committed_path.display());
                std::process::exit(1);
            }
        }
    });
    if check_schema {
        let committed = committed.as_deref().expect("read above");
        let want = format!("\"schema\": \"{}\"", baseline::SCHEMA_VERSION);
        if committed.contains(&want) {
            println!("[schema] committed baseline matches {}", baseline::SCHEMA_VERSION);
        } else {
            let found = committed
                .lines()
                .find(|l| l.contains("\"schema\""))
                .unwrap_or("<no schema line>")
                .trim();
            eprintln!(
                "error: schema drift — this binary emits {:?} but the committed baseline has {}",
                baseline::SCHEMA_VERSION,
                found
            );
            eprintln!(
                "regenerate with: cargo run --release -p armada-experiments --bin bench_baseline"
            );
            std::process::exit(1);
        }
    }
    if gate_qps {
        let committed = committed.as_deref().expect("read above");
        let reference = committed_scaling_cells(committed);
        let mut checked = 0usize;
        let mut failed = false;
        for row in &report.scaling_rows {
            let Some(&(_, _, ref_qps, _)) =
                reference.iter().find(|(s, n, ..)| *s == row.scheme && *n == row.n)
            else {
                continue;
            };
            checked += 1;
            let floor = ref_qps * (1.0 - GATE_QPS_DROP);
            if row.qps < floor {
                failed = true;
                eprintln!(
                    "error: qps regression — {} at N = {} measured {:.0} qps, committed \
                     {:.0} qps (floor {:.0})",
                    row.scheme, row.n, row.qps, ref_qps, floor
                );
            } else {
                println!(
                    "[gate] {} N = {}: {:.0} qps vs committed {:.0} (floor {:.0}) — ok",
                    row.scheme, row.n, row.qps, ref_qps, floor
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("[gate] {checked} scaling cell(s) within 25% of committed qps");
        if checked == 0 {
            println!("[gate] note: no (scheme, N) overlap with the committed scaling curve");
        }
    }
    if gate_allocs {
        let committed = committed.as_deref().expect("read above");
        let reference = committed_scaling_cells(committed);
        let mut checked = 0usize;
        let mut failed = false;
        for row in &report.scaling_rows {
            // Allocation counts are deterministic (seeded workload, serial
            // meter), so unlike qps this diff is immune to machine noise —
            // the 25% headroom only absorbs allocator-internal drift across
            // rustc/libstd versions.
            let Some(allocs) = row.allocs_per_query else { continue };
            let Some(&(_, _, _, Some(ref_allocs))) =
                reference.iter().find(|(s, n, ..)| *s == row.scheme && *n == row.n)
            else {
                continue;
            };
            checked += 1;
            let ceiling = ref_allocs * (1.0 + GATE_ALLOCS_GROWTH);
            if allocs > ceiling {
                failed = true;
                eprintln!(
                    "error: allocation regression — {} at N = {} measured {:.1} allocs/query, \
                     committed {:.1} (ceiling {:.1})",
                    row.scheme, row.n, allocs, ref_allocs, ceiling
                );
            } else {
                println!(
                    "[gate] {} N = {}: {:.1} allocs/query vs committed {:.1} (ceiling {:.1}) — ok",
                    row.scheme, row.n, allocs, ref_allocs, ceiling
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("[gate] {checked} scaling cell(s) within 25% of committed allocs/query");
        if checked == 0 {
            println!(
                "[gate] note: no allocation overlap — run with --features bench-alloc against \
                 a baseline generated with it"
            );
        }
    }
}

/// Extracts `(scheme, n, qps, allocs_per_query)` for every row of the
/// committed baseline's `"scaling"` array. A hand-rolled line scan to
/// match the hand-rolled writer (the build has no serde); tolerant of a
/// missing section (older schema) by returning an empty list, and of a
/// `null` allocation column (baseline generated without `bench-alloc`)
/// by carrying `None`.
fn committed_scaling_cells(json: &str) -> Vec<(String, usize, f64, Option<f64>)> {
    let mut rows = Vec::new();
    let mut in_scaling = false;
    for line in json.lines() {
        let t = line.trim();
        if !in_scaling {
            in_scaling = t.starts_with("\"scaling\": [");
            continue;
        }
        if t.starts_with(']') {
            break;
        }
        if let (Some(scheme), Some(n), Some(qps)) =
            (json_str_field(t, "scheme"), json_num_field(t, "n"), json_num_field(t, "qps"))
        {
            rows.push((scheme, n as usize, qps, json_num_field(t, "allocs_per_query")));
        }
    }
    rows
}

/// The string value of `"key": "…"` on a single JSON line, if present.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// The numeric value of `"key": 123[.45]` on a single JSON line, if present.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}
