//! Runs the scheme × workload baseline grid and persists
//! `BENCH_baseline.json` at the workspace root.
//!
//! ```sh
//! cargo run --release -p armada-experiments --bin bench_baseline            # committed scale
//! cargo run --release -p armada-experiments --bin bench_baseline -- --quick # smoke scale
//! ```

use armada_experiments::baseline::{self, BaselineConfig};
use armada_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let cfg = match scale {
        Scale::Full => BaselineConfig::full(),
        Scale::Quick => BaselineConfig::quick(),
    };
    eprintln!(
        "bench_baseline: N = {}, {} queries/cell, {} threads — building schemes…",
        cfg.n, cfg.queries, cfg.threads
    );
    let report = baseline::run(&cfg);
    print!("{}", report.to_table().to_markdown());
    // Only full-scale runs refresh the committed baseline; --quick smoke
    // runs land under target/ so they can never clobber the trajectory.
    let written = match scale {
        Scale::Full => report.write_json(),
        Scale::Quick => report.write_json_to(
            armada_experiments::output::output_dir().join("BENCH_baseline_quick.json"),
        ),
    };
    match written {
        Ok(path) => println!("\n[json] {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write baseline json: {e}");
            std::process::exit(1);
        }
    }
}
