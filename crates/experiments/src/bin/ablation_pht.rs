//! A3 ablation: PHT over constant- vs logarithmic-degree substrates.
//! Usage: `cargo run --release -p armada-experiments --bin ablation_pht [--quick]`

fn main() {
    let scale = armada_experiments::Scale::from_args();
    armada_experiments::ablations::pht_substrate::run(scale).emit("ablation_pht");
}
