//! R3 — replication: recall, message overhead, and repair traffic as a
//! function of the replication factor, across every dynamic scheme and
//! every churn plan.
//!
//! The paper never asks what recall *costs to keep*: its peer-recall
//! metric (§4.3.3) measures the damage faults do, and the R2 churn sweep
//! confirmed that every scheme's recall collapses between crash events and
//! `stabilize()`. This experiment closes the loop with the replication
//! layer: each scheme runs the same epoch-driven workload under each churn
//! plan at replication factors `r ∈ {1, 2, 3, 5}` (`successor-r`
//! placement — the factor-prefix-stable discipline), and the sweep reports
//!
//! * **result recall** — the fraction of the churn-free control's answers
//!   the churned run still returns (and the worst single epoch);
//! * **MesgRatio** — replica fetches are counted in the outcome, so the
//!   message premium of recovery is visible next to the recall it buys;
//! * **repair cost** — copies placed and messages spent by
//!   [`re_replicate`](dht_api::ReplicationControl::re_replicate) after
//!   each epoch's membership events.
//!
//! Because placement is deterministic and `successor-r` owner lists are
//! prefix-stable in `r`, recall is **monotonically non-decreasing in the
//! replication factor** under *identical* churn histories — pinned by this
//! module's tests for PIRA and DCF-CAN under every cataloged plan.

use crate::output::Table;
use crate::{standard_registry, Scale};
use dht_api::{
    BuildParams, ChurnPlan, DriverReport, ParallelDriver, ReplicaPolicy, WorkloadGen,
    CHURN_PLAN_NAMES,
};
use rand::Rng;

/// Replication factors swept (total copies per record, primary included);
/// factor 1 is the unreplicated baseline.
pub const REPLICATION_FACTORS: [usize; 4] = [1, 2, 3, 5];

/// What the sweep runs: scale plus optional scheme/plan filters, mirroring
/// [`ChurnSweepConfig`](crate::churn_sweep::ChurnSweepConfig).
#[derive(Debug, Clone)]
pub struct ReplicationSweepConfig {
    /// Experiment scale (network size, epochs, queries per epoch).
    pub scale: Scale,
    /// Schemes to sweep; `None` = every dynamic scheme.
    pub schemes: Option<Vec<String>>,
    /// Churn plans to sweep; the default is the full catalog.
    pub plans: Vec<String>,
    /// Events per epoch transition (the plans' default rate keeps the
    /// comparison honest across plans).
    pub rate: usize,
    /// Worker threads for the parallel driver.
    pub threads: usize,
}

impl ReplicationSweepConfig {
    /// The default sweep at the given scale: every dynamic scheme × every
    /// cataloged plan × [`REPLICATION_FACTORS`].
    pub fn new(scale: Scale) -> Self {
        ReplicationSweepConfig {
            scale,
            schemes: None,
            plans: CHURN_PLAN_NAMES.iter().map(|s| s.to_string()).collect(),
            rate: 8,
            threads: dht_api::default_threads(),
        }
    }

    /// The scheme names this config selects, in registry order.
    pub fn scheme_names(&self) -> Vec<String> {
        match &self.schemes {
            None => crate::dynamic_single_names(),
            Some(filter) => crate::dynamic_single_names()
                .into_iter()
                .filter(|n| filter.iter().any(|f| f == n))
                .collect(),
        }
    }
}

/// One scheme × plan × factor measurement.
#[derive(Debug, Clone)]
pub struct ReplicationPoint {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Churn plan name.
    pub plan: String,
    /// Replication factor (total copies per record).
    pub factor: usize,
    /// Canonical policy name (`"none"` for factor 1).
    pub policy: String,
    /// The merged epoch-driven report (per-epoch series included).
    pub report: DriverReport,
    /// `results_returned / churn-free control results_returned`.
    pub result_recall: f64,
    /// The worst single epoch's share of the control's answers.
    pub worst_epoch_recall: f64,
    /// Replica copies placed by repair across all epochs.
    pub repair_placed: usize,
    /// Messages spent by repair across all epochs.
    pub repair_messages: u64,
    /// Live peers after the final epoch.
    pub final_peers: usize,
}

/// Runs the default sweep; see [`run_points_with`].
///
/// # Panics
///
/// Panics if a scheme fails to build or errors on a fault-free query.
pub fn run_points(scale: Scale) -> Vec<ReplicationPoint> {
    run_points_with(&ReplicationSweepConfig::new(scale))
}

/// Runs the sweep under an explicit config. Every `(scheme, plan, factor)`
/// cell rebuilds the scheme from the same seed and drives the identical
/// epoch workload, so cells differ *only* in the replication factor; the
/// control (result-recall denominator) is the scheme's churn-free run.
///
/// # Panics
///
/// As [`run_points`].
pub fn run_points_with(cfg: &ReplicationSweepConfig) -> Vec<ReplicationPoint> {
    let registry = standard_registry();
    let (n, epochs) = match cfg.scale {
        Scale::Full => (600, 6),
        Scale::Quick => (150, 4),
    };
    let queries_per_epoch = (cfg.scale.queries() / epochs).max(10);
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let workload = WorkloadGen::named("uniform", domain).expect("cataloged");
    let driver = ParallelDriver::new(queries_per_epoch).with_seed(0x4e91).with_threads(cfg.threads);

    let build = |name: &str, factor: usize| {
        let policy =
            if factor <= 1 { ReplicaPolicy::none() } else { ReplicaPolicy::successor(factor) };
        let params =
            BuildParams::new(n, domain.0, domain.1).with_object_id_len(32).with_replication(policy);
        let mut rng = simnet::rng_from_seed(0x4e91 ^ dht_api::fnv1a(name.as_bytes()));
        let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
        for h in 0..n as u64 {
            scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
        }
        scheme
    };

    let mut points = Vec::new();
    for name in cfg.scheme_names() {
        // The churn-free control: the same epoch workload with no
        // membership events (shared across plans and factors).
        let control = {
            let mut scheme = build(&name, 1);
            let plan = ChurnPlan::named("steady-churn").expect("cataloged").with_rate(0);
            driver.run_epochs(scheme.as_mut(), &workload, &plan, epochs).expect("control run")
        };
        let control_epochs: Vec<u64> = control.epochs.iter().map(|e| e.results_returned).collect();
        let control_total: u64 = control_epochs.iter().sum();

        for plan_name in &cfg.plans {
            for &factor in &REPLICATION_FACTORS {
                let mut scheme = build(&name, factor);
                let policy_name = scheme
                    .as_replicated()
                    .map_or_else(|| "none".to_string(), |c| c.policy().name());
                let plan = ChurnPlan::named(plan_name).expect("cataloged").with_rate(cfg.rate);
                let report = driver
                    .run_epochs(scheme.as_mut(), &workload, &plan, epochs)
                    .expect("epoch run");
                let result_recall = if control_total == 0 {
                    1.0
                } else {
                    report.results_returned as f64 / control_total as f64
                };
                let worst_epoch_recall = report
                    .epochs
                    .iter()
                    .map(|e| e.results_returned)
                    .zip(&control_epochs)
                    .map(|(got, &want)| if want == 0 { 1.0 } else { got as f64 / want as f64 })
                    .fold(f64::INFINITY, f64::min);
                let repair_placed: usize = report.epochs.iter().map(|e| e.repair.placed).sum();
                let repair_messages: u64 = report.epochs.iter().map(|e| e.repair.messages).sum();
                let final_peers = report.epochs.last().expect("epochs ran").peers;
                points.push(ReplicationPoint {
                    scheme: name.clone(),
                    plan: plan_name.clone(),
                    factor,
                    policy: policy_name,
                    report,
                    result_recall,
                    worst_epoch_recall,
                    repair_placed,
                    repair_messages,
                    final_peers,
                });
            }
        }
    }
    points
}

/// Runs the default sweep and renders the recall-vs-replication table.
pub fn run(scale: Scale) -> Table {
    run_with(&ReplicationSweepConfig::new(scale))
}

/// Renders the table for an explicit config.
pub fn run_with(cfg: &ReplicationSweepConfig) -> Table {
    let points = run_points_with(cfg);
    let mut t = Table::new(
        "R3 — recall vs replication factor (epoch-driven churn)",
        &[
            "scheme",
            "plan",
            "r",
            "final peers",
            "avg delay",
            "mesg ratio",
            "peer recall",
            "result recall",
            "worst epoch",
            "repair placed",
            "repair msgs",
        ],
    );
    for p in &points {
        t.push_row(vec![
            p.scheme.clone(),
            p.plan.clone(),
            p.factor.to_string(),
            p.final_peers.to_string(),
            format!("{:.2}", p.report.delay.mean),
            format!("{:.2}", p.report.mesg_ratio.mean),
            format!("{:.3}", p.report.recall.mean),
            format!("{:.3}", p.result_recall),
            format!("{:.3}", p.worst_epoch_recall),
            p.repair_placed.to_string(),
            p.repair_messages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: recall must be monotonically non-decreasing in
    /// the replication factor under *every* cataloged churn plan, for at
    /// least two schemes. Deterministic placement plus the successor
    /// policy's prefix property make this exact, not statistical.
    #[test]
    fn recall_is_monotone_in_the_replication_factor() {
        let cfg = ReplicationSweepConfig {
            schemes: Some(vec!["pira".into(), "dcf-can".into()]),
            ..ReplicationSweepConfig::new(Scale::Quick)
        };
        let points = run_points_with(&cfg);
        assert_eq!(points.len(), 2 * CHURN_PLAN_NAMES.len() * REPLICATION_FACTORS.len());
        for scheme in ["pira", "dcf-can"] {
            for plan in CHURN_PLAN_NAMES {
                let series: Vec<&ReplicationPoint> =
                    points.iter().filter(|p| p.scheme == scheme && p.plan == plan).collect();
                assert_eq!(series.len(), REPLICATION_FACTORS.len());
                for pair in series.windows(2) {
                    assert!(
                        pair[1].result_recall >= pair[0].result_recall - 1e-12,
                        "{scheme}/{plan}: recall not monotone: r={} gives {}, r={} gives {}",
                        pair[0].factor,
                        pair[0].result_recall,
                        pair[1].factor,
                        pair[1].result_recall
                    );
                    assert!(
                        pair[1].worst_epoch_recall >= pair[0].worst_epoch_recall - 1e-12,
                        "{scheme}/{plan}: worst-epoch recall not monotone"
                    );
                }
                // Replication must actually pay for itself on the
                // crash-heavy plan: r = 5 strictly beats r = 1.
                if plan == "massacre" {
                    let first = series.first().unwrap();
                    let last = series.last().unwrap();
                    assert!(
                        last.result_recall > first.result_recall,
                        "{scheme}/massacre: replication bought no recall \
                         ({} at r=1 vs {} at r=5)",
                        first.result_recall,
                        last.result_recall
                    );
                    assert!(last.repair_placed > 0, "{scheme}: crashes must trigger repair");
                    assert!(last.repair_messages > 0);
                }
                // Factor 1 is genuinely unreplicated.
                assert_eq!(series[0].policy, "none");
                assert_eq!(series[0].repair_placed, 0);
            }
        }
    }

    #[test]
    fn replication_cost_shows_up_in_the_message_metrics() {
        let cfg = ReplicationSweepConfig {
            schemes: Some(vec!["pira".into()]),
            plans: vec!["massacre".into()],
            ..ReplicationSweepConfig::new(Scale::Quick)
        };
        let points = run_points_with(&cfg);
        let r1 = points.iter().find(|p| p.factor == 1).unwrap();
        let r5 = points.iter().find(|p| p.factor == 5).unwrap();
        // Recovery fetches are counted: more copies, more recovered
        // records, more messages per query.
        assert!(
            r5.report.messages.mean > r1.report.messages.mean,
            "replica reads must cost messages: {} !> {}",
            r5.report.messages.mean,
            r1.report.messages.mean
        );
        assert!(r5.report.mesg_ratio.mean > r1.report.mesg_ratio.mean);
        // And the recovered answers are real: strictly more results.
        assert!(r5.report.results_returned > r1.report.results_returned);
    }
}
