//! Shared workload runners: the paper's range-size and network-size sweeps
//! executed against both PIRA (Armada over FISSIONE) and DCF-CAN.

use crate::paper;
use armada::SingleArmada;
use dht_can::dcf::{self, FloodMode};
use dht_can::{CanConfig, CanNet};
use fissione::FissioneConfig;
use rand::Rng;
use simnet::Summary;

/// Aggregated measurements for one sweep point.
#[derive(Debug, Clone)]
pub struct PointMetrics {
    /// Network size `N`.
    pub n_peers: usize,
    /// Queried range size (attribute units).
    pub range_size: f64,
    /// PIRA delay (hops).
    pub pira_delay: Summary,
    /// PIRA message cost.
    pub pira_messages: Summary,
    /// Ground-truth destination peers (PIRA side).
    pub destpeers: Summary,
    /// `Messages / Destpeers` per query.
    pub mesg_ratio: Summary,
    /// `(Messages − log₂N) / (Destpeers − 1)` per query.
    pub incre_ratio: Summary,
    /// DCF-CAN delay (hops).
    pub dcf_delay: Summary,
    /// DCF-CAN message cost.
    pub dcf_messages: Summary,
    /// DCF-CAN destination zones.
    pub dcf_destzones: Summary,
    /// Fraction of queries answered exactly (must be 1.0 fault-free).
    pub exact_rate: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Queries per point (the paper averages over 1000).
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// ObjectID length for FISSIONE.
    pub object_id_len: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { queries: 1000, seed: 20060704, object_id_len: paper::OBJECT_ID_LEN }
    }
}

/// Builds the two substrates at size `n` with a shared seed.
pub fn build_pair(cfg: &SweepConfig, n: usize) -> (SingleArmada, CanNet) {
    let fission_cfg = FissioneConfig {
        object_id_len: cfg.object_id_len,
        ..FissioneConfig::default()
    };
    let mut rng = simnet::rng_from_seed(cfg.seed ^ n as u64);
    let armada =
        SingleArmada::build_with(fission_cfg, n, paper::DOMAIN_LO, paper::DOMAIN_HI, &mut rng)
            .expect("paper-scale networks build");
    let can_cfg = CanConfig {
        domain_lo: paper::DOMAIN_LO,
        domain_hi: paper::DOMAIN_HI,
        ..CanConfig::default()
    };
    let can = CanNet::build(can_cfg, n, &mut rng).expect("paper-scale CAN builds");
    (armada, can)
}

/// Runs `cfg.queries` random queries of the given size against both schemes
/// on pre-built substrates.
pub fn measure_point(
    cfg: &SweepConfig,
    armada: &SingleArmada,
    can: &CanNet,
    range_size: f64,
) -> PointMetrics {
    let n = armada.net().len();
    let mut rng = simnet::rng_from_seed(cfg.seed ^ 0x5eed ^ (range_size.to_bits() ^ n as u64));
    let mut pira_delay = Vec::with_capacity(cfg.queries);
    let mut pira_messages = Vec::with_capacity(cfg.queries);
    let mut destpeers = Vec::with_capacity(cfg.queries);
    let mut mesg_ratio = Vec::with_capacity(cfg.queries);
    let mut incre_ratio = Vec::with_capacity(cfg.queries);
    let mut dcf_delay = Vec::with_capacity(cfg.queries);
    let mut dcf_messages = Vec::with_capacity(cfg.queries);
    let mut dcf_destzones = Vec::with_capacity(cfg.queries);
    let mut exact = 0usize;

    for q in 0..cfg.queries {
        let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range_size));
        let hi = lo + range_size;
        let seed = cfg.seed.wrapping_add(q as u64);

        let origin = armada.net().random_peer(&mut rng);
        let out = armada
            .pira_query(origin, lo, hi, seed)
            .expect("fault-free queries succeed");
        pira_delay.push(f64::from(out.metrics.delay));
        pira_messages.push(out.metrics.messages as f64);
        destpeers.push(out.metrics.dest_peers as f64);
        mesg_ratio.push(out.metrics.mesg_ratio());
        incre_ratio.push(out.metrics.incre_ratio(n));
        if out.metrics.exact {
            exact += 1;
        }

        let can_origin = can.random_zone(&mut rng);
        let dcf = dcf::range_query(can, can_origin, lo, hi, seed, FloodMode::Directed)
            .expect("fault-free queries succeed");
        dcf_delay.push(f64::from(dcf.delay));
        dcf_messages.push(dcf.messages as f64);
        dcf_destzones.push(dcf.dest_zones as f64);
        if !dcf.exact {
            // DCF exactness is guaranteed by flood connectivity; surface
            // violations loudly in experiments.
            panic!("DCF missed zones on [{lo}, {hi}]");
        }
    }

    PointMetrics {
        n_peers: n,
        range_size,
        pira_delay: Summary::from_samples(pira_delay),
        pira_messages: Summary::from_samples(pira_messages),
        destpeers: Summary::from_samples(destpeers),
        mesg_ratio: Summary::from_samples(mesg_ratio),
        incre_ratio: Summary::from_samples(incre_ratio),
        dcf_delay: Summary::from_samples(dcf_delay),
        dcf_messages: Summary::from_samples(dcf_messages),
        dcf_destzones: Summary::from_samples(dcf_destzones),
        exact_rate: exact as f64 / cfg.queries.max(1) as f64,
    }
}

/// Figure 5/6 workload: fixed `N`, swept range size.
pub fn range_sweep(cfg: &SweepConfig, n: usize, sizes: &[f64]) -> Vec<PointMetrics> {
    let (armada, can) = build_pair(cfg, n);
    sizes
        .iter()
        .map(|&s| measure_point(cfg, &armada, &can, s))
        .collect()
}

/// Figure 7/8 workload: fixed range size, swept `N`.
pub fn network_sweep(cfg: &SweepConfig, ns: &[usize], range_size: f64) -> Vec<PointMetrics> {
    ns.iter()
        .map(|&n| {
            let (armada, can) = build_pair(cfg, n);
            measure_point(cfg, &armada, &can, range_size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SweepConfig {
        SweepConfig { queries: 40, seed: 7, object_id_len: 32 }
    }

    #[test]
    fn range_sweep_produces_expected_shape() {
        let cfg = quick_cfg();
        let points = range_sweep(&cfg, 400, &[2.0, 100.0]);
        assert_eq!(points.len(), 2);
        let log_n = (400f64).log2();
        for p in &points {
            assert_eq!(p.exact_rate, 1.0);
            assert!(p.pira_delay.mean < log_n, "PIRA not delay-bounded");
        }
        // DCF delay grows with range size while PIRA stays flat.
        assert!(points[1].dcf_delay.mean > points[0].dcf_delay.mean);
        assert!((points[1].pira_delay.mean - points[0].pira_delay.mean).abs() < 3.0);
        // Destination peers grow with the range.
        assert!(points[1].destpeers.mean > points[0].destpeers.mean);
    }

    #[test]
    fn network_sweep_keeps_pira_logarithmic() {
        let cfg = quick_cfg();
        let points = network_sweep(&cfg, &[200, 800], 20.0);
        for p in &points {
            let log_n = (p.n_peers as f64).log2();
            assert!(p.pira_delay.mean < log_n);
            assert_eq!(p.exact_rate, 1.0);
        }
        // DCF delay grows ~√N.
        assert!(points[1].dcf_delay.mean > points[0].dcf_delay.mean);
    }
}
