//! Shared workload runners: the paper's range-size and network-size sweeps
//! executed against any set of registered schemes through the unified
//! [`dht_api`] interface (PIRA and DCF-CAN by default, matching the
//! paper's Figures 5–8).
//!
//! Since PR 2 the sweeps run through [`ParallelDriver`]: queries fan out
//! across `threads` OS threads against each pre-built scheme, and because
//! every query is derived from its index the measured figures are
//! identical for any thread count — sweep output is a function of the
//! seed alone.

use crate::paper;
use dht_api::{BuildParams, DriverReport, ParallelDriver, RangeScheme, WorkloadGen};

/// Aggregated measurements for one sweep point: one [`DriverReport`] per
/// swept scheme, keyed by registry name.
#[derive(Debug, Clone)]
pub struct PointMetrics {
    /// Network size `N`.
    pub n_peers: usize,
    /// Queried range size (attribute units).
    pub range_size: f64,
    /// Per-scheme reports, in sweep order.
    pub reports: Vec<DriverReport>,
}

impl PointMetrics {
    /// The report for a scheme by registry name.
    ///
    /// # Panics
    ///
    /// Panics if the scheme was not part of the sweep.
    pub fn report(&self, scheme: &str) -> &DriverReport {
        self.reports
            .iter()
            .find(|r| r.scheme == scheme)
            .unwrap_or_else(|| panic!("scheme {scheme:?} was not swept"))
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Queries per point (the paper averages over 1000).
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// ObjectID length for Kautz-named schemes.
    pub object_id_len: usize,
    /// Registry names of the schemes to sweep.
    pub schemes: Vec<String>,
    /// Worker threads per measurement point (results are thread-count
    /// invariant; this only tunes wall-clock time).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            queries: 1000,
            seed: 20060704,
            object_id_len: paper::OBJECT_ID_LEN,
            schemes: vec!["pira".into(), "dcf-can".into()],
            threads: dht_api::default_threads(),
        }
    }
}

/// Builds every configured scheme at size `n` from one shared seed stream.
pub fn build_schemes(cfg: &SweepConfig, n: usize) -> Vec<Box<dyn RangeScheme>> {
    let registry = crate::standard_registry();
    let params = BuildParams::new(n, paper::DOMAIN_LO, paper::DOMAIN_HI)
        .with_object_id_len(cfg.object_id_len);
    let mut rng = simnet::rng_from_seed(cfg.seed ^ n as u64);
    cfg.schemes
        .iter()
        .map(|name| {
            registry.build_single(name, &params, &mut rng).expect("paper-scale networks build")
        })
        .collect()
}

/// Runs `cfg.queries` random queries of the given size against every
/// pre-built scheme, fanned across `cfg.threads` threads by
/// [`ParallelDriver`]. Every scheme runs under the **same driver seed**,
/// so query `q` pairs completely across schemes: the same range, the same
/// origin-selection stream (each scheme maps it into its own peer space),
/// and the same scheme-internal seed — the cross-scheme comparison is
/// paired query-for-query as in the paper's harness. Exactness violations
/// (impossible fault-free) panic loudly rather than skewing the figures.
pub fn measure_point(
    cfg: &SweepConfig,
    schemes: &[Box<dyn RangeScheme>],
    range_size: f64,
) -> PointMetrics {
    let n = schemes.first().map_or(0, |s| s.node_count());
    let workload = WorkloadGen::uniform((paper::DOMAIN_LO, paper::DOMAIN_HI), range_size);
    let driver = ParallelDriver {
        queries: cfg.queries,
        seed: cfg.seed ^ 0x5eed ^ range_size.to_bits() ^ n as u64,
        threads: cfg.threads,
        shard_salt: 0,
        metrics: false,
    };
    let reports = schemes
        .iter()
        .map(|scheme| {
            let report =
                driver.run(scheme.as_ref(), &workload).expect("fault-free queries succeed");
            assert!(
                report.exact_rate == 1.0,
                "{} missed destinations on a fault-free run",
                scheme.scheme_name()
            );
            report
        })
        .collect();
    PointMetrics { n_peers: n, range_size, reports }
}

/// Figure 5/6 workload: fixed `N`, swept range size.
pub fn range_sweep(cfg: &SweepConfig, n: usize, sizes: &[f64]) -> Vec<PointMetrics> {
    let schemes = build_schemes(cfg, n);
    sizes.iter().map(|&s| measure_point(cfg, &schemes, s)).collect()
}

/// Figure 7/8 workload: fixed range size, swept `N`.
pub fn network_sweep(cfg: &SweepConfig, ns: &[usize], range_size: f64) -> Vec<PointMetrics> {
    ns.iter()
        .map(|&n| {
            let schemes = build_schemes(cfg, n);
            measure_point(cfg, &schemes, range_size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SweepConfig {
        SweepConfig { queries: 40, seed: 7, object_id_len: 32, ..SweepConfig::default() }
    }

    #[test]
    fn range_sweep_produces_expected_shape() {
        let cfg = quick_cfg();
        let points = range_sweep(&cfg, 400, &[2.0, 100.0]);
        assert_eq!(points.len(), 2);
        let log_n = (400f64).log2();
        for p in &points {
            assert_eq!(p.report("pira").exact_rate, 1.0);
            assert!(p.report("pira").delay.mean < log_n, "PIRA not delay-bounded");
        }
        // DCF delay grows with range size while PIRA stays flat.
        assert!(points[1].report("dcf-can").delay.mean > points[0].report("dcf-can").delay.mean);
        assert!(
            (points[1].report("pira").delay.mean - points[0].report("pira").delay.mean).abs() < 3.0
        );
        // Destination peers grow with the range.
        assert!(
            points[1].report("pira").dest_peers.mean > points[0].report("pira").dest_peers.mean
        );
    }

    #[test]
    fn network_sweep_keeps_pira_logarithmic() {
        let cfg = quick_cfg();
        let points = network_sweep(&cfg, &[200, 800], 20.0);
        for p in &points {
            let log_n = (p.n_peers as f64).log2();
            assert!(p.report("pira").delay.mean < log_n);
            assert_eq!(p.report("pira").exact_rate, 1.0);
        }
        // DCF delay grows ~√N.
        assert!(points[1].report("dcf-can").delay.mean > points[0].report("dcf-can").delay.mean);
    }

    #[test]
    fn sweeps_extend_to_any_registered_scheme() {
        // The point of the unified API: adding a scheme to a sweep is one
        // name in the config, no new glue.
        let cfg = SweepConfig {
            queries: 20,
            seed: 7,
            object_id_len: 32,
            schemes: vec!["pira".into(), "skipgraph".into(), "scrap".into()],
            ..SweepConfig::default()
        };
        let points = range_sweep(&cfg, 150, &[50.0]);
        assert_eq!(points[0].reports.len(), 3);
        assert!(points[0].report("skipgraph").delay.mean > 0.0);
        assert!(points[0].report("scrap").delay.mean > 0.0);
    }
}
