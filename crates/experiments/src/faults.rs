//! R1 — robustness: recall under message loss and crashed peers, driven
//! through the unified query API.
//!
//! The paper evaluates fault-free networks; this extension quantifies how
//! a scheme degrades when the overlay misbehaves (a dropped message prunes
//! a whole subtree of PIRA's descent; a crashed zone swallows a flood
//! branch). It is scheme-generic: anything whose
//! [`range_query_with_faults`](dht_api::RangeScheme::range_query_with_faults)
//! override models per-query faults is measured — discovered at runtime
//! through
//! [`supports_fault_injection`](dht_api::RangeScheme::supports_fault_injection)
//! (PIRA and both DCF-CAN variants today) — and everything is built by
//! registry name, never through a native constructor.

use crate::output::Table;
use crate::{paper, standard_registry, Scale};
use dht_api::{BuildParams, RangeScheme};
use rand::Rng;
use simnet::FaultPlan;

/// Names of every registered single-attribute scheme that models
/// per-query fault injection, discovered through the capability hook (no
/// hard-coded scheme list — a new faulty-capable scheme joins R1 by
/// registering itself).
pub fn fault_capable_names() -> Vec<String> {
    let registry = standard_registry();
    let params = BuildParams::new(40, 0.0, 1000.0).with_object_id_len(24);
    registry
        .single_names()
        .into_iter()
        .filter(|name| {
            let mut rng = simnet::rng_from_seed(0xfa17);
            let scheme = registry.build_single(name, &params, &mut rng).expect("build");
            scheme.supports_fault_injection()
        })
        .map(str::to_string)
        .collect()
}

/// Runs the fault-tolerance study.
pub fn run(scale: Scale) -> Table {
    let n = match scale {
        Scale::Full => paper::FIG56_N,
        Scale::Quick => 400,
    };
    let queries = scale.queries() / 2;
    let range = 50.0;
    let registry = standard_registry();
    let params = BuildParams::new(n, paper::DOMAIN_LO, paper::DOMAIN_HI)
        .with_object_id_len(paper::OBJECT_ID_LEN);

    let mut t = Table::new(
        format!("R1 — recall under faults (N = {n}, range = {range})"),
        &["scheme", "fault", "level", "avg peer recall", "min recall", "avg delay", "exact rate"],
    );

    for scheme_name in fault_capable_names() {
        let mut rng = simnet::rng_from_seed(0xfa17 ^ dht_api::fnv1a(scheme_name.as_bytes()));
        let scheme = registry.build_single(&scheme_name, &params, &mut rng).expect("build");

        // Message loss.
        for &p in &[0.0f64, 0.02, 0.05, 0.10, 0.20] {
            let faults = FaultPlan::with_drop_prob(p);
            let (recall, min_recall, delay, exact) =
                measure(scheme.as_ref(), &faults, queries, range, &mut rng);
            t.push_row(vec![
                scheme_name.clone(),
                "message loss".into(),
                format!("{:.0}%", p * 100.0),
                format!("{recall:.3}"),
                format!("{min_recall:.3}"),
                format!("{delay:.2}"),
                format!("{exact:.3}"),
            ]);
        }

        // Crashed peers (never the query origin).
        for &frac in &[0.01f64, 0.05, 0.10] {
            let mut faults = FaultPlan::new();
            let crash_count = ((n as f64) * frac) as usize;
            while faults.crashed_count() < crash_count {
                faults.crash(scheme.random_origin(&mut rng));
            }
            let (recall, min_recall, delay, exact) =
                measure(scheme.as_ref(), &faults, queries, range, &mut rng);
            t.push_row(vec![
                scheme_name.clone(),
                "crashed peers".into(),
                format!("{:.0}%", frac * 100.0),
                format!("{recall:.3}"),
                format!("{min_recall:.3}"),
                format!("{delay:.2}"),
                format!("{exact:.3}"),
            ]);
        }
    }
    t
}

fn measure(
    scheme: &dyn RangeScheme,
    faults: &FaultPlan,
    queries: usize,
    range: f64,
    rng: &mut rand::rngs::SmallRng,
) -> (f64, f64, f64, f64) {
    let mut recalls = Vec::with_capacity(queries);
    let mut delay = 0f64;
    let mut exact = 0usize;
    let mut ran = 0usize;
    for q in 0..queries {
        let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
        let origin = scheme.random_origin(rng);
        if faults.is_crashed(origin) {
            continue; // a crashed client issues nothing
        }
        ran += 1;
        let out = scheme
            .range_query_with_faults(origin, lo, lo + range, q as u64, faults)
            .expect("query runs");
        recalls.push(out.peer_recall());
        delay += out.delay as f64;
        if out.exact {
            exact += 1;
        }
    }
    let avg = recalls.iter().sum::<f64>() / recalls.len().max(1) as f64;
    let min = recalls.iter().copied().fold(f64::INFINITY, f64::min);
    (avg, min, delay / ran.max(1) as f64, exact as f64 / ran.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_rows_are_perfect_and_loss_degrades() {
        let discovered = fault_capable_names();
        assert_eq!(
            discovered,
            vec!["dcf-can", "dcf-can-naive", "pira"],
            "runtime discovery should find exactly the overriding schemes"
        );
        let t = run(Scale::Quick);
        // 8 rows per scheme: 5 loss levels + 3 crash fractions.
        assert_eq!(t.rows.len(), discovered.len() * 8);
        for (s, chunk) in discovered.iter().zip(t.rows.chunks(8)) {
            assert_eq!(&chunk[0][0], s);
            // Row 0 is 0% loss: recall 1, exact 1.
            assert_eq!(chunk[0][3], "1.000", "{s} fault-free recall");
            assert_eq!(chunk[0][6], "1.000", "{s} fault-free exactness");
            // 20% loss (row 4) must hurt recall, monotonically vs 2%.
            let heavy: f64 = chunk[4][3].parse().unwrap();
            let light: f64 = chunk[1][3].parse().unwrap();
            assert!(heavy < 1.0, "{s} heavy loss should hurt");
            assert!(heavy <= light, "{s} more loss should not help");
        }
    }
}
