//! R1 — robustness: PIRA recall under message loss and crashed peers.
//!
//! The paper evaluates fault-free networks; this extension quantifies how
//! the FRT descent degrades when the overlay misbehaves (a dropped message
//! prunes a whole subtree), and how FISSIONE's detour routing restores
//! exact-match lookups around crashes.

use crate::output::Table;
use crate::{paper, Scale};
use armada::SingleArmada;
use fissione::FissioneConfig;
use rand::Rng;
use simnet::FaultPlan;

/// Runs the fault-tolerance study.
pub fn run(scale: Scale) -> Table {
    let n = match scale {
        Scale::Full => paper::FIG56_N,
        Scale::Quick => 400,
    };
    let queries = scale.queries() / 2;
    let range = 50.0;
    let cfg = FissioneConfig { object_id_len: paper::OBJECT_ID_LEN, ..FissioneConfig::default() };
    let mut rng = simnet::rng_from_seed(0xfa17);
    let armada = SingleArmada::build_with(cfg, n, paper::DOMAIN_LO, paper::DOMAIN_HI, &mut rng)
        .expect("build");

    let mut t = Table::new(
        format!("R1 — PIRA recall under faults (N = {n}, range = {range})"),
        &["fault", "level", "avg peer recall", "min recall", "avg delay", "exact rate"],
    );

    // Message loss.
    for &p in &[0.0f64, 0.02, 0.05, 0.10, 0.20] {
        let faults = FaultPlan::with_drop_prob(p);
        let (recall, min_recall, delay, exact) =
            measure(&armada, &faults, queries, range, &mut rng);
        t.push_row(vec![
            "message loss".into(),
            format!("{:.0}%", p * 100.0),
            format!("{recall:.3}"),
            format!("{min_recall:.3}"),
            format!("{delay:.2}"),
            format!("{exact:.3}"),
        ]);
    }

    // Crashed peers (never the query origin).
    for &frac in &[0.01f64, 0.05, 0.10] {
        let mut faults = FaultPlan::new();
        let crash_count = ((n as f64) * frac) as usize;
        while faults.crashed_count() < crash_count {
            faults.crash(armada.net().random_peer(&mut rng));
        }
        let (recall, min_recall, delay, exact) =
            measure(&armada, &faults, queries, range, &mut rng);
        t.push_row(vec![
            "crashed peers".into(),
            format!("{:.0}%", frac * 100.0),
            format!("{recall:.3}"),
            format!("{min_recall:.3}"),
            format!("{delay:.2}"),
            format!("{exact:.3}"),
        ]);
    }
    t
}

fn measure(
    armada: &SingleArmada,
    faults: &FaultPlan,
    queries: usize,
    range: f64,
    rng: &mut rand::rngs::SmallRng,
) -> (f64, f64, f64, f64) {
    let mut recalls = Vec::with_capacity(queries);
    let mut delay = 0f64;
    let mut exact = 0usize;
    let mut ran = 0usize;
    for q in 0..queries {
        let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
        let origin = armada.net().random_peer(rng);
        if faults.is_crashed(origin) {
            continue; // a crashed client issues nothing
        }
        ran += 1;
        let out = armada
            .pira_query_with_faults(origin, lo, lo + range, q as u64, faults)
            .expect("query runs");
        recalls.push(out.metrics.peer_recall());
        delay += f64::from(out.metrics.delay);
        if out.metrics.exact {
            exact += 1;
        }
    }
    let avg = recalls.iter().sum::<f64>() / recalls.len().max(1) as f64;
    let min = recalls.iter().copied().fold(f64::INFINITY, f64::min);
    (avg, min, delay / ran.max(1) as f64, exact as f64 / ran.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_row_is_perfect_and_loss_degrades() {
        let t = run(Scale::Quick);
        // Row 0 is 0% loss: recall 1, exact 1.
        assert_eq!(t.rows[0][2], "1.000");
        assert_eq!(t.rows[0][5], "1.000");
        // 20% loss (row 4) must hurt recall.
        let heavy: f64 = t.rows[4][2].parse().unwrap();
        assert!(heavy < 1.0);
        // More loss ⇒ (weakly) worse recall.
        let light: f64 = t.rows[1][2].parse().unwrap();
        assert!(heavy <= light);
    }
}
