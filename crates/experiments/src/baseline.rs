//! The persisted performance baseline: every registered scheme × every
//! named workload, measured once and written to `BENCH_baseline.json` at
//! the workspace root.
//!
//! This is the repo's first durable perf artifact: the `bench_baseline`
//! binary runs the full scheme × workload grid through
//! [`ParallelDriver`] at a fixed network size,
//! records throughput (queries/second, wall clock) next to the simulated
//! metrics (mean/p99 delay, messages per query, MesgRatio), and persists
//! the grid as JSON so future PRs can diff their numbers against a
//! committed trajectory. The simulated metrics are deterministic per seed;
//! only the `qps` column moves with the hardware.

use crate::output::Table;
use crate::standard_registry;
use dht_api::{BuildParams, DriverReport, MultiBuildParams, ParallelDriver, WorkloadGen};
use rand::Rng;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Single-attribute workloads measured in the baseline grid.
pub const SINGLE_WORKLOADS: [&str; 5] = ["uniform", "zipf-hot", "clustered", "wide-scan", "mixed"];

/// Multi-attribute workloads measured for the rectangle schemes.
pub const MULTI_WORKLOADS: [&str; 2] = ["rect-correlated", "mixed"];

/// Baseline run configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Network size every scheme is built at.
    pub n: usize,
    /// Queries per (scheme, workload) cell.
    pub queries: usize,
    /// Master seed (simulated metrics are a pure function of it).
    pub seed: u64,
    /// Worker threads for the parallel driver.
    pub threads: usize,
    /// ObjectID length for Kautz-named schemes.
    pub object_id_len: usize,
}

impl BaselineConfig {
    /// The committed-baseline setup: `N = 1000`, the paper's 1000 queries
    /// per cell.
    pub fn full() -> Self {
        BaselineConfig {
            n: 1000,
            queries: 1000,
            seed: 0xba5e,
            threads: dht_api::default_threads(),
            object_id_len: crate::paper::OBJECT_ID_LEN,
        }
    }

    /// A reduced setup for tests and `--quick` runs.
    pub fn quick() -> Self {
        BaselineConfig { n: 250, queries: 40, object_id_len: 32, ..BaselineConfig::full() }
    }
}

/// One measured cell of the scheme × workload grid.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Query shape: `"single"` or `"rect"`.
    pub shape: &'static str,
    /// Workload name from the catalog.
    pub workload: String,
    /// Wall-clock throughput, queries per second (hardware-dependent).
    pub qps: f64,
    /// The full deterministic metric report for the cell.
    pub report: DriverReport,
}

/// A complete baseline run: configuration plus the measured grid.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// The configuration the grid ran under.
    pub config: BaselineConfig,
    /// One row per (scheme, workload) cell.
    pub rows: Vec<BaselineRow>,
}

/// Runs the full grid: every registered single-attribute scheme ×
/// [`SINGLE_WORKLOADS`], then every multi-attribute scheme ×
/// [`MULTI_WORKLOADS`] on 2-attribute squares.
///
/// # Panics
///
/// Panics if a scheme fails to build or a fault-free query errs — a
/// baseline with silently missing cells would be worse than no baseline.
pub fn run(cfg: &BaselineConfig) -> BaselineReport {
    let registry = standard_registry();
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let mut rows = Vec::new();

    for name in registry.single_names() {
        let params =
            BuildParams::new(cfg.n, domain.0, domain.1).with_object_id_len(cfg.object_id_len);
        let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()));
        let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
        for h in 0..cfg.n as u64 {
            scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
        }
        for wl_name in SINGLE_WORKLOADS {
            let workload = WorkloadGen::named(wl_name, domain).expect("cataloged");
            let driver = ParallelDriver {
                queries: cfg.queries,
                seed: cfg.seed ^ dht_api::fnv1a(wl_name.as_bytes()),
                threads: cfg.threads,
            };
            let start = Instant::now();
            let report = driver.run(scheme.as_ref(), &workload).expect("fault-free queries");
            let qps = cfg.queries as f64 / start.elapsed().as_secs_f64().max(1e-9);
            rows.push(BaselineRow {
                scheme: name.to_string(),
                shape: "single",
                workload: wl_name.to_string(),
                qps,
                report,
            });
        }
    }

    let domains = [(0.0, 100.0), (0.0, 100.0)];
    for name in registry.multi_names() {
        let params = MultiBuildParams::new(cfg.n, &domains).with_object_id_len(cfg.object_id_len);
        let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()) ^ 0xd1);
        let mut scheme = registry.build_multi(name, &params, &mut rng).expect("scheme builds");
        for h in 0..cfg.n as u64 {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            scheme.publish_point(&p, h).expect("publish");
        }
        for wl_name in MULTI_WORKLOADS {
            let workload = WorkloadGen::named(wl_name, (0.0, 100.0)).expect("cataloged");
            let driver = ParallelDriver {
                queries: cfg.queries,
                seed: cfg.seed ^ dht_api::fnv1a(wl_name.as_bytes()),
                threads: cfg.threads,
            };
            let start = Instant::now();
            let report =
                driver.run_multi(scheme.as_ref(), &domains, &workload).expect("fault-free");
            let qps = cfg.queries as f64 / start.elapsed().as_secs_f64().max(1e-9);
            rows.push(BaselineRow {
                scheme: name.to_string(),
                shape: "rect",
                workload: wl_name.to_string(),
                qps,
                report,
            });
        }
    }

    BaselineReport { config: cfg.clone(), rows }
}

impl BaselineReport {
    /// Renders the grid as a printable [`Table`].
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Bench baseline — N = {}, {} queries/cell, {} threads",
                self.config.n, self.config.queries, self.config.threads
            ),
            &[
                "scheme",
                "shape",
                "workload",
                "qps",
                "delay_mean",
                "delay_p99",
                "msgs/query",
                "mesg_ratio",
                "exact",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.scheme.clone(),
                r.shape.to_string(),
                r.workload.clone(),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.report.delay.mean),
                format!("{:.1}", r.report.delay.p99),
                format!("{:.1}", r.report.messages.mean),
                format!("{:.2}", r.report.mesg_ratio.mean),
                format!("{:.2}", r.report.exact_rate),
            ]);
        }
        t
    }

    /// Serializes the report as pretty-printed JSON (hand-rolled — the
    /// build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let c = &self.config;
        // `threads` is deliberately omitted: it provably cannot affect any
        // simulated metric (see tests/parallel_determinism.rs) and is
        // machine-local. The per-row `qps` field is the one remaining
        // machine-dependent value — filter it out when diffing regenerated
        // baselines (everything else is a pure function of the seed).
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"bench-baseline-v1\",");
        let _ = writeln!(
            s,
            "  \"config\": {{ \"n\": {}, \"queries\": {}, \"seed\": {}, \"object_id_len\": {} }},",
            c.n, c.queries, c.seed, c.object_id_len
        );
        let _ = writeln!(s, "  \"results\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"scheme\": \"{}\", \"shape\": \"{}\", \"workload\": \"{}\", \
                 \"qps\": {}, \"delay_mean\": {}, \"delay_p50\": {}, \"delay_p99\": {}, \
                 \"delay_max\": {}, \"messages_mean\": {}, \"messages_p99\": {}, \
                 \"dest_peers_mean\": {}, \"mesg_ratio_mean\": {}, \"incre_ratio_mean\": {}, \
                 \"exact_rate\": {}, \"results_returned\": {} }}{comma}",
                r.scheme,
                r.shape,
                r.workload,
                json_f64(r.qps),
                json_f64(r.report.delay.mean),
                json_f64(r.report.delay.p50),
                json_f64(r.report.delay.p99),
                json_f64(r.report.delay.max),
                json_f64(r.report.messages.mean),
                json_f64(r.report.messages.p99),
                json_f64(r.report.dest_peers.mean),
                json_f64(r.report.mesg_ratio.mean),
                json_f64(r.report.incre_ratio.mean),
                json_f64(r.report.exact_rate),
                r.report.results_returned,
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON to [`baseline_path`] and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        self.write_json_to(baseline_path())
    }

    /// Writes the JSON to an explicit path (quick/smoke runs use this to
    /// avoid clobbering the committed full-scale baseline).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json_to(&self, path: PathBuf) -> std::io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// JSON-safe float rendering (JSON has no NaN/∞; neither should a
/// baseline, but a corrupt artifact must never be written).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

/// Where the committed baseline lives: `BENCH_baseline.json` at the
/// workspace root.
pub fn baseline_path() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("BENCH_baseline.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_scheme_and_workload() {
        let report = run(&BaselineConfig::quick());
        // 9 single schemes × 5 workloads + 3 multi schemes × 2 workloads.
        let singles: Vec<_> = report.rows.iter().filter(|r| r.shape == "single").collect();
        let rects: Vec<_> = report.rows.iter().filter(|r| r.shape == "rect").collect();
        assert_eq!(singles.len(), 9 * SINGLE_WORKLOADS.len());
        assert_eq!(rects.len(), 3 * MULTI_WORKLOADS.len());
        for r in &report.rows {
            assert!(r.qps > 0.0, "{}/{} qps", r.scheme, r.workload);
            assert_eq!(r.report.queries, report.config.queries);
            assert_eq!(r.report.exact_rate, 1.0, "{}/{} inexact", r.scheme, r.workload);
        }
        // JSON sanity: parses at the bracket level and names every scheme.
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for name in ["pira", "seqwalk", "dcf-can", "skipgraph", "squid", "scrap", "mira"] {
            assert!(json.contains(&format!("\"scheme\": \"{name}\"")), "{name} missing");
        }
        assert!(json.contains("\"schema\": \"bench-baseline-v1\""));
        // The table mirrors the grid.
        assert_eq!(report.to_table().rows.len(), report.rows.len());
    }

    #[test]
    fn simulated_metrics_are_seed_deterministic() {
        let a = run(&BaselineConfig { queries: 15, n: 150, ..BaselineConfig::quick() });
        let b = run(&BaselineConfig { queries: 15, n: 150, ..BaselineConfig::quick() });
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.scheme, rb.scheme);
            assert_eq!(ra.report.delay, rb.report.delay, "{}/{}", ra.scheme, ra.workload);
            assert_eq!(ra.report.messages, rb.report.messages);
            assert_eq!(ra.report.results_returned, rb.report.results_returned);
        }
    }
}
